//! Property tests of the report statistics: `TokenLatencyStats` and
//! `DistributionStats` over arbitrary event streams.

use proptest::prelude::*;

use hermes::core::{DistributionStats, TokenLatencyStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Percentiles are monotone (p50 ≤ p95 ≤ p99 ≤ max of the samples),
    /// TTFT is the prefill latency plus the first decode step, and the mean
    /// TPOT is consistent with the summed decode latencies.
    #[test]
    fn token_latency_stats_are_consistent(
        prefill in 0.0..10.0f64,
        latencies in proptest::collection::vec(0.0..2.0f64, 1..64),
    ) {
        let stats = TokenLatencyStats::from_decode_latencies(prefill, &latencies);

        // Percentile monotonicity, bounded by the observed extremes.
        let min = latencies.iter().copied().fold(f64::INFINITY, f64::min);
        let max = latencies.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(stats.tpot_p50 <= stats.tpot_p95);
        prop_assert!(stats.tpot_p95 <= stats.tpot_p99);
        prop_assert!(stats.tpot_p99 <= max);
        prop_assert!(stats.tpot_p50 >= min);

        // TTFT is prefill + the first decode step.
        prop_assert!((stats.ttft - (prefill + latencies[0])).abs() < 1e-12);

        // Mean TPOT equals the summed decode time over the token count.
        let sum: f64 = latencies.iter().sum();
        let expected_mean = sum / latencies.len() as f64;
        prop_assert!((stats.tpot_mean - expected_mean).abs() <= 1e-12 * latencies.len() as f64);

        // The mean lies within the observed extremes.
        prop_assert!(stats.tpot_mean >= min - 1e-12 && stats.tpot_mean <= max + 1e-12);
    }

    /// With no decode tokens, TTFT degenerates to the prefill latency and
    /// every TPOT statistic is zero.
    #[test]
    fn empty_streams_degenerate_to_prefill(prefill in 0.0..10.0f64) {
        let stats = TokenLatencyStats::from_decode_latencies(prefill, &[]);
        prop_assert!((stats.ttft - prefill).abs() < 1e-12);
        prop_assert!(stats.tpot_mean == 0.0);
        prop_assert!(stats.tpot_p50 == 0.0 && stats.tpot_p95 == 0.0 && stats.tpot_p99 == 0.0);
    }

    /// The serving-side percentile folder obeys the same ordering laws.
    #[test]
    fn distribution_stats_are_monotone(
        samples in proptest::collection::vec(0.0..100.0f64, 1..64),
    ) {
        let stats = DistributionStats::from_samples(&samples);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(stats.p50 <= stats.p95);
        prop_assert!(stats.p95 <= stats.p99);
        prop_assert!(stats.p99 <= stats.max);
        prop_assert!(stats.p50 >= min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((stats.max - max).abs() < 1e-12);
        prop_assert!(stats.mean >= min - 1e-12 && stats.mean <= max + 1e-12);
    }

    /// Percentiles of a constant stream all equal the constant.
    #[test]
    fn constant_streams_have_flat_percentiles(
        value in 0.0..5.0f64,
        len in 1usize..32,
        prefill in 0.0..5.0f64,
    ) {
        let latencies = vec![value; len];
        let stats = TokenLatencyStats::from_decode_latencies(prefill, &latencies);
        prop_assert!((stats.tpot_p50 - value).abs() < 1e-12);
        prop_assert!((stats.tpot_p95 - value).abs() < 1e-12);
        prop_assert!((stats.tpot_p99 - value).abs() < 1e-12);
        prop_assert!((stats.tpot_mean - value).abs() < 1e-9);
        prop_assert!((stats.ttft - (prefill + value)).abs() < 1e-12);
    }
}
