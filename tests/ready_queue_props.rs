//! Property tests of the heap-backed ready queue against a sort-based
//! model: the drain order must match the documented rank semantics — tier
//! (or deadline) first, FCFS arrival-index tie-break — including the
//! eviction-requeue path where previously admitted requests re-enter the
//! queue between pops.

use proptest::prelude::*;

use hermes::serve::{RequestClass, SchedulingPolicy};
use hermes_serve::{ReadyQueue, ServingRequest};

/// The rank semantics under test, restated independently of the library:
/// FCFS ranks everyone equally, priority ranks by tier, EDF by absolute
/// deadline with best-effort requests last. Prefix affinity ranks by the
/// arrival index of the earliest same-prefix request — for the
/// empty-prefix requests generated here, each request's own index.
fn model_rank(scheduling: SchedulingPolicy, request: &ServingRequest) -> f64 {
    match scheduling {
        SchedulingPolicy::Fcfs => 0.0,
        SchedulingPolicy::Priority => f64::from(request.class.priority),
        SchedulingPolicy::Edf => request.absolute_deadline().unwrap_or(f64::INFINITY),
        SchedulingPolicy::PrefixAffinity => request.id as f64,
    }
}

/// The sort-based model the old scheduler implemented: re-sort the whole
/// queue by (rank, arrival index) and serve the head.
fn model_pop(queue: &mut Vec<usize>, ranks: &[f64]) -> Option<usize> {
    queue.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]).then(a.cmp(&b)));
    if queue.is_empty() {
        None
    } else {
        Some(queue.remove(0))
    }
}

fn request_of(idx: usize, tier: u8, deadline: Option<f64>, arrival: f64) -> ServingRequest {
    let mut class = RequestClass::new(tier);
    if let Some(d) = deadline {
        class = class.with_ttft_deadline(d);
    }
    ServingRequest {
        id: idx,
        arrival,
        prompt_len: 16,
        gen_len: 4,
        class,
        prefix: Vec::new(),
    }
}

fn scheduling_of(selector: usize) -> SchedulingPolicy {
    match selector {
        0 => SchedulingPolicy::Fcfs,
        1 => SchedulingPolicy::Priority,
        2 => SchedulingPolicy::Edf,
        _ => SchedulingPolicy::PrefixAffinity,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pushing a random request set and draining matches the sort-based
    /// model under every scheduling policy: rank ascending, arrival index
    /// ascending within a rank.
    #[test]
    fn drain_order_matches_sort_based_model(
        scheduling_sel in 0usize..4,
        tiers in prop::collection::vec(0u8..4, 1..24),
        deadline_sel in prop::collection::vec(0usize..3, 1..24),
    ) {
        let scheduling = scheduling_of(scheduling_sel);
        let n = tiers.len().min(deadline_sel.len());
        let requests: Vec<ServingRequest> = (0..n)
            .map(|i| {
                // Some deadlines collide on purpose, some requests are
                // best-effort (no deadline at all).
                let deadline = match deadline_sel[i] {
                    0 => None,
                    1 => Some(1.0),
                    _ => Some(0.25 * (i % 5) as f64),
                };
                request_of(i, tiers[i], deadline, 0.1 * i as f64)
            })
            .collect();
        let ranks: Vec<f64> = requests
            .iter()
            .map(|r| model_rank(scheduling, r))
            .collect();

        let mut heap = ReadyQueue::new();
        let mut model: Vec<usize> = Vec::new();
        for (i, &rank) in ranks.iter().enumerate() {
            heap.push(rank, i);
            model.push(i);
        }
        prop_assert_eq!(heap.len(), model.len());
        while let Some(expected) = model_pop(&mut model, &ranks) {
            prop_assert_eq!(heap.peek(), Some(expected));
            prop_assert_eq!(heap.pop(), Some(expected));
        }
        prop_assert!(heap.is_empty());
    }

    /// Interleaving pops with eviction-style requeues (a popped request
    /// pushed back with its unchanged rank, as preemption does) never
    /// breaks agreement with the model, which re-sorts after every
    /// mutation.
    #[test]
    fn requeue_after_eviction_matches_sort_based_model(
        scheduling_sel in 0usize..4,
        tiers in prop::collection::vec(0u8..4, 4..20),
        ops in prop::collection::vec(0usize..3, 1..40),
    ) {
        let scheduling = scheduling_of(scheduling_sel);
        let requests: Vec<ServingRequest> = tiers
            .iter()
            .enumerate()
            .map(|(i, &tier)| {
                let deadline = (tier == 0).then_some(0.5 + 0.1 * i as f64);
                request_of(i, tier, deadline, 0.1 * i as f64)
            })
            .collect();
        let ranks: Vec<f64> = requests
            .iter()
            .map(|r| model_rank(scheduling, r))
            .collect();

        let mut heap = ReadyQueue::new();
        let mut model: Vec<usize> = Vec::new();
        let mut next_arrival = 0usize;
        // "Admitted" requests eligible for an eviction requeue, newest
        // first (preemption evicts the worst-ranked, latest admission).
        let mut admitted: Vec<usize> = Vec::new();
        for op in ops {
            match op {
                // A new arrival enters the queue.
                0 if next_arrival < requests.len() => {
                    heap.push(ranks[next_arrival], next_arrival);
                    model.push(next_arrival);
                    next_arrival += 1;
                }
                // The scheduler admits the best-ranked waiter.
                1 => {
                    let expected = model_pop(&mut model, &ranks);
                    prop_assert_eq!(heap.pop(), expected);
                    if let Some(idx) = expected {
                        admitted.push(idx);
                    }
                }
                // Preemption requeues the most recent admission with its
                // original (immutable) rank.
                _ => {
                    if let Some(victim) = admitted.pop() {
                        heap.push(ranks[victim], victim);
                        model.push(victim);
                    }
                }
            }
        }
        // Drain what is left: full agreement to the end.
        while let Some(expected) = model_pop(&mut model, &ranks) {
            prop_assert_eq!(heap.pop(), Some(expected));
        }
        prop_assert!(heap.is_empty());
    }
}
