//! Property tests of the multi-replica cluster driver: a one-replica
//! cluster is the single-replica simulator bitwise, fleet-wide token
//! conservation survives scripted drain/fail/recover re-dispatch, and equal
//! inputs serialize to byte-identical reports.

use proptest::prelude::*;

use hermes::core::{ArrivalProcess, LengthDistribution, SystemConfig, SystemKind, Workload};
use hermes::model::ModelId;
use hermes::serve::{
    simulate, simulate_cluster, BatchingPolicy, ClusterSimulation, PrefillPolicy, ReplicaEvent,
    RoutingPolicy, ServingSimulation,
};

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 24;
    w.gen_len = 6;
    w
}

fn arrival_of(selector: usize, rate: f64) -> ArrivalProcess {
    match selector {
        0 => ArrivalProcess::AllAtOnce,
        1 => ArrivalProcess::Poisson { rate },
        _ => ArrivalProcess::Bursty { rate, burst: 3 },
    }
}

fn routing_of(selector: usize) -> RoutingPolicy {
    match selector {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::LeastOutstanding,
        2 => RoutingPolicy::KvPressure,
        _ => RoutingPolicy::PrefixAffinity,
    }
}

fn prefill_of(selector: usize, chunk_tokens: usize, budget: usize) -> PrefillPolicy {
    if selector == 0 {
        PrefillPolicy::StallTheWorld
    } else {
        PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        }
    }
}

proptest! {
    // Every case runs full engine simulations; keep the budget moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A one-replica cluster with no lifecycle events is the single-replica
    /// simulator, bitwise: same per-replica report, same records, under
    /// every routing policy (routing is degenerate with one target, so the
    /// policy must not perturb anything).
    #[test]
    fn one_replica_cluster_reproduces_simulate_bitwise(
        arrival_sel in 0usize..3,
        policy_sel in 0usize..2,
        prefill_sel in 0usize..2,
        chunk_tokens in 1usize..13,
        budget in 1usize..25,
        rate in 0.2f64..3.0,
        num_requests in 1usize..7,
        seed in 0u64..1_000,
        routing_sel in 0usize..4,
        heterogeneous in 0usize..2,
    ) {
        let policy = if policy_sel == 0 {
            BatchingPolicy::Continuous
        } else {
            BatchingPolicy::Static
        };
        let mut sim = ServingSimulation::new(
            template(),
            arrival_of(arrival_sel, rate),
            num_requests,
        )
        .with_arrival_seed(seed)
        .with_policy(policy)
        .with_prefill(prefill_of(prefill_sel, chunk_tokens, budget));
        if heterogeneous == 1 {
            sim = sim.with_lengths(LengthDistribution::Uniform {
                prompt_min: 8,
                prompt_max: 40,
                gen_min: 1,
                gen_max: 10,
            });
        }
        let kind = SystemKind::hermes_base();
        let config = SystemConfig::paper_default();

        let single = simulate(kind, &config, &sim).unwrap();
        let cluster = simulate_cluster(&ClusterSimulation::uniform(
            sim,
            kind,
            &config,
            1,
            routing_of(routing_sel),
        ))
        .unwrap();

        prop_assert_eq!(cluster.report.num_replicas, 1);
        prop_assert_eq!(cluster.report.replicas.len(), 1);
        prop_assert_eq!(cluster.report.replicas[0].routed, num_requests);
        prop_assert_eq!(cluster.report.replicas[0].redispatched, 0);
        // Bitwise: the replica's report and the fleet records are the
        // single-replica outcome, floats included.
        prop_assert_eq!(&cluster.report.replicas[0].report, &single.report);
        prop_assert_eq!(&cluster.records, &single.records);
        // Fleet aggregates over one replica collapse to the replica.
        prop_assert_eq!(cluster.report.completed, single.report.completed);
        prop_assert_eq!(cluster.report.generated_tokens, single.report.generated_tokens);
        prop_assert_eq!(cluster.report.makespan, single.report.makespan);
        prop_assert_eq!(cluster.report.ttft.p95, single.report.ttft.p95);
    }

    /// Fleet-wide token conservation across scripted drain, fail and
    /// recover: every offered request completes exactly once somewhere,
    /// the summed per-replica token counts equal the summed per-record
    /// generation lengths (restart-with-recompute re-prices prefill, never
    /// decode), and every record keeps its original arrival stamp.
    #[test]
    fn fleet_conserves_tokens_across_drain_and_fail(
        arrival_sel in 0usize..3,
        prefill_sel in 0usize..2,
        chunk_tokens in 1usize..13,
        budget in 1usize..25,
        rate in 0.5f64..3.0,
        num_requests in 2usize..9,
        seed in 0u64..1_000,
        routing_sel in 0usize..4,
        n_replicas in 2usize..4,
        event_sel in 0usize..3,
        event_at in 0.0f64..4.0,
        heterogeneous in 0usize..2,
    ) {
        let mut sim = ServingSimulation::new(
            template(),
            arrival_of(arrival_sel, rate),
            num_requests,
        )
        .with_arrival_seed(seed)
        .with_prefill(prefill_of(prefill_sel, chunk_tokens, budget));
        if heterogeneous == 1 {
            sim = sim.with_lengths(LengthDistribution::Uniform {
                prompt_min: 8,
                prompt_max: 40,
                gen_min: 1,
                gen_max: 10,
            });
        }
        // Replica 0 drains or fails mid-run and later recovers; the other
        // replicas absorb the handed-back work.
        let events = match event_sel {
            0 => vec![],
            1 => vec![
                ReplicaEvent::Drain { replica: 0, at: event_at },
                ReplicaEvent::Recover { replica: 0, at: event_at + 2.0 },
            ],
            _ => vec![
                ReplicaEvent::Fail { replica: 0, at: event_at },
                ReplicaEvent::Recover { replica: 0, at: event_at + 2.0 },
            ],
        };
        let cluster = ClusterSimulation::uniform(
            sim,
            SystemKind::hermes_base(),
            &SystemConfig::paper_default(),
            n_replicas,
            routing_of(routing_sel),
        )
        .with_events(events);
        let outcome = simulate_cluster(&cluster).unwrap();

        // Every request completes exactly once, fleet-wide.
        prop_assert_eq!(outcome.report.completed, num_requests);
        prop_assert_eq!(outcome.records.len(), num_requests);
        let mut ids: Vec<usize> = outcome.records.iter().map(|r| r.id).collect();
        ids.dedup();
        prop_assert_eq!(ids, (0..num_requests).collect::<Vec<_>>());
        // Token conservation: decode work is never double-counted, however
        // often a request was handed between replicas.
        let expected_tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
        prop_assert_eq!(outcome.report.generated_tokens, expected_tokens);
        let replica_tokens: usize = outcome
            .report
            .replicas
            .iter()
            .map(|r| r.report.generated_tokens)
            .sum();
        prop_assert_eq!(replica_tokens, expected_tokens);
        let replica_completed: usize = outcome
            .report
            .replicas
            .iter()
            .map(|r| r.report.completed)
            .sum();
        prop_assert_eq!(replica_completed, num_requests);
        // Dispatch accounting: every request routed at least once; only
        // drain/fail produce re-dispatches.
        let routed: usize = outcome.report.replicas.iter().map(|r| r.routed).sum();
        let redispatched: usize = outcome.report.replicas.iter().map(|r| r.redispatched).sum();
        prop_assert_eq!(routed, num_requests + redispatched);
        prop_assert_eq!(outcome.report.redispatches, redispatched);
        if event_sel == 0 {
            prop_assert_eq!(redispatched, 0);
        }
        // Records keep their original arrival stamps and ordered lifecycles
        // even after a re-dispatch moved them.
        for r in &outcome.records {
            prop_assert!(r.arrival <= r.admitted, "request {}: arrival {} > admitted {}", r.id, r.arrival, r.admitted);
            prop_assert!(r.admitted < r.first_token, "request {}: admitted {} >= first_token {}", r.id, r.admitted, r.first_token);
            prop_assert!(r.first_token <= r.completed, "request {}: first_token {} > completed {}", r.id, r.first_token, r.completed);
            prop_assert!(r.completed <= outcome.report.makespan + 1e-12);
        }
    }

    /// Equal inputs produce byte-identical serialized [`ClusterReport`]s
    /// and identical records — the property the bench sweep relies on to be
    /// reproducible at any thread count.
    #[test]
    fn cluster_runs_are_deterministic(
        arrival_sel in 0usize..3,
        rate in 0.5f64..3.0,
        num_requests in 2usize..9,
        seed in 0u64..1_000,
        routing_sel in 0usize..4,
        n_replicas in 1usize..4,
        with_drain in 0usize..2,
    ) {
        let sim = ServingSimulation::new(
            template(),
            arrival_of(arrival_sel, rate),
            num_requests,
        )
        .with_arrival_seed(seed);
        let mut cluster = ClusterSimulation::uniform(
            sim,
            SystemKind::hermes_base(),
            &SystemConfig::paper_default(),
            n_replicas,
            routing_of(routing_sel),
        );
        if with_drain == 1 && n_replicas > 1 {
            cluster = cluster.with_events(vec![
                ReplicaEvent::Drain { replica: 0, at: 1.0 },
                ReplicaEvent::Recover { replica: 0, at: 3.0 },
            ]);
        }
        let a = simulate_cluster(&cluster).unwrap();
        let b = simulate_cluster(&cluster).unwrap();
        let json_a = serde_json::to_string(&a.report).unwrap();
        let json_b = serde_json::to_string(&b.report).unwrap();
        prop_assert_eq!(json_a, json_b);
        prop_assert_eq!(&a.records, &b.records);
    }
}
