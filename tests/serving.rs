//! Integration tests of the open-loop serving simulator: equivalence with
//! the closed-loop fixed-batch reports, bitwise determinism, and the
//! continuous-vs-static batching behaviour under load.

use hermes::core::{
    try_run_system, ArrivalProcess, HermesError, PrioritySpec, RequestClass, SystemConfig,
    SystemKind, Workload,
};
use hermes::model::ModelId;
use hermes::serve::{
    request_kv_bytes, simulate, AdmissionConfig, BatchingPolicy, LengthDistribution,
    PreemptionPolicy, PrefillPolicy, PrefixCacheMode, PromptSpec, SchedulingPolicy,
    ServingSimulation, DEFAULT_BLOCK_TOKENS,
};

fn quick(model: ModelId, batch: usize) -> Workload {
    let mut w = Workload::paper_default(model).with_batch(batch);
    w.gen_len = 10;
    w.prompt_len = 32;
    w
}

/// Every system kind of the evaluation, on a model they all support.
fn all_kinds() -> Vec<SystemKind> {
    let mut kinds = SystemKind::figure9_lineup();
    kinds.push(SystemKind::TensorRtLlm { num_gpus: 5 });
    kinds
}

fn assert_close(a: f64, b: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!(
        (a - b).abs() / scale < 1e-9,
        "{what}: serving {a} vs closed-loop {b}"
    );
}

/// The equivalence regression of the refactor: with all-at-once arrivals,
/// no admission caps and static batching, the serving simulator must
/// reproduce the closed-loop fixed-batch `InferenceReport` numbers for
/// every system.
#[test]
fn static_all_at_once_reproduces_fixed_batch_reports() {
    let config = SystemConfig::paper_default();
    let batch = 3usize;
    let w = quick(ModelId::Opt30B, batch);
    for kind in all_kinds() {
        let closed = try_run_system(kind, &w, &config).unwrap();
        let sim = ServingSimulation::new(w.clone(), ArrivalProcess::AllAtOnce, batch)
            .with_policy(BatchingPolicy::Static);
        let outcome = simulate(kind, &config, &sim).unwrap();
        let name = kind.name();

        assert_eq!(outcome.report.system, closed.system, "{name}");
        assert_eq!(
            outcome.report.generated_tokens,
            w.total_generated_tokens(),
            "{name}"
        );
        assert_close(
            outcome.report.breakdown.total(),
            closed.breakdown.total(),
            &format!("{name} total"),
        );
        assert_close(
            outcome.report.breakdown.prefill,
            closed.breakdown.prefill,
            &format!("{name} prefill"),
        );
        assert_close(
            outcome.report.breakdown.fc,
            closed.breakdown.fc,
            &format!("{name} fc"),
        );
        assert_close(
            outcome.report.breakdown.attention,
            closed.breakdown.attention,
            &format!("{name} attention"),
        );
        assert_close(
            outcome.report.breakdown.communication,
            closed.breakdown.communication,
            &format!("{name} communication"),
        );
        assert_close(
            outcome.report.makespan,
            closed.breakdown.total(),
            &format!("{name} makespan"),
        );
        assert_close(
            outcome.report.dimm_imbalance,
            closed.dimm_imbalance,
            &format!("{name} imbalance"),
        );
        // Every request arrives at t=0 and rides the same batch, so each
        // request's TTFT is the closed-loop TTFT.
        assert_close(
            outcome.report.ttft.mean,
            closed.latency_stats.ttft,
            &format!("{name} ttft"),
        );
        assert_close(
            outcome.report.ttft.p99,
            closed.latency_stats.ttft,
            &format!("{name} ttft p99"),
        );
    }
}

/// The serving event stream is bitwise deterministic: equal seeds produce
/// identical records and reports, different seeds differ.
#[test]
fn serving_outcomes_are_bitwise_deterministic_for_equal_seeds() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt30B, 1);
    for kind in [SystemKind::hermes(), SystemKind::DejaVu] {
        let sim = ServingSimulation::new(w.clone(), ArrivalProcess::Poisson { rate: 1.0 }, 8);
        let a = simulate(kind, &config, &sim).unwrap();
        let b = simulate(kind, &config, &sim).unwrap();
        assert_eq!(a.records, b.records, "{}", kind.name());
        assert_eq!(a.report, b.report, "{}", kind.name());

        let other_seed = simulate(kind, &config, &sim.clone().with_arrival_seed(99)).unwrap();
        assert_ne!(
            a.records,
            other_seed.records,
            "{}: different arrival seeds must change the trace",
            kind.name()
        );
    }
}

/// At moderate offered load, continuous batching admits arrivals at token
/// boundaries instead of making them wait for the whole running batch, so
/// tail TTFT improves over static batching.
#[test]
fn continuous_batching_beats_static_on_tail_ttft() {
    let config = SystemConfig::paper_default();
    let mut w = quick(ModelId::Opt30B, 1);
    w.gen_len = 24;
    // Moderate load: several arrivals land while earlier requests decode.
    let sim = ServingSimulation::new(w, ArrivalProcess::Poisson { rate: 0.6 }, 16);
    let continuous = simulate(SystemKind::hermes(), &config, &sim).unwrap();
    let static_ = simulate(
        SystemKind::hermes(),
        &config,
        &sim.clone().with_policy(BatchingPolicy::Static),
    )
    .unwrap();
    assert!(
        continuous.report.ttft.p95 < static_.report.ttft.p95,
        "continuous p95 TTFT {:.3}s vs static {:.3}s",
        continuous.report.ttft.p95,
        static_.report.ttft.p95
    );
    assert!(
        continuous.report.queue_delay.mean <= static_.report.queue_delay.mean,
        "continuous mean queue delay {:.3}s vs static {:.3}s",
        continuous.report.queue_delay.mean,
        static_.report.queue_delay.mean
    );
    assert_eq!(continuous.report.completed, 16);
    assert_eq!(static_.report.completed, 16);
}

/// Higher offered load increases queueing; the per-request records stay
/// consistent (arrival ≤ admission ≤ first token ≤ completion).
#[test]
fn records_are_consistent_and_load_increases_queueing() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt30B, 1);
    let at = |rate: f64| {
        let sim = ServingSimulation::new(w.clone(), ArrivalProcess::Poisson { rate }, 12)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(4));
        simulate(SystemKind::hermes(), &config, &sim).unwrap()
    };
    let light = at(0.05);
    let heavy = at(5.0);
    for outcome in [&light, &heavy] {
        for r in &outcome.records {
            assert!(r.arrival <= r.admitted);
            assert!(r.admitted < r.first_token);
            assert!(r.first_token <= r.completed);
        }
    }
    assert!(
        heavy.report.queue_delay.mean > light.report.queue_delay.mean,
        "heavy {:.3}s vs light {:.3}s",
        heavy.report.queue_delay.mean,
        light.report.queue_delay.mean
    );
}

/// Bursty arrivals stress the queue harder than Poisson at the same offered
/// load.
#[test]
fn bursts_inflate_tail_queueing_at_equal_load() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt30B, 1);
    let run = |arrival: ArrivalProcess| {
        let sim = ServingSimulation::new(w.clone(), arrival, 16)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(2));
        simulate(SystemKind::hermes_base(), &config, &sim)
            .unwrap()
            .report
    };
    let poisson = run(ArrivalProcess::Poisson { rate: 0.4 });
    let bursty = run(ArrivalProcess::Bursty {
        rate: 0.4,
        burst: 8,
    });
    assert!(
        bursty.queue_delay.p95 > poisson.queue_delay.p95,
        "bursty p95 queue delay {:.3}s vs poisson {:.3}s",
        bursty.queue_delay.p95,
        poisson.queue_delay.p95
    );
}

/// The headline fix of the chunked-prefill refactor: under Poisson load,
/// splitting late joiners' prompts into chunks bounds the prefill slice any
/// in-flight decode token absorbs, so the p95 per-token latency (TPOT)
/// across requests strictly improves over stall-the-world prefill — at
/// exactly equal total work (same requests, same generated tokens, and the
/// chunks of each prompt amortize to its one-shot prefill cost).
#[test]
fn chunked_prefill_strictly_reduces_p95_tpot_under_load() {
    let config = SystemConfig::paper_default();
    let mut w = Workload::paper_default(ModelId::Opt30B);
    w.prompt_len = 64;
    w.gen_len = 24;
    let sim = ServingSimulation::new(w, ArrivalProcess::Poisson { rate: 0.6 }, 16);
    let stalled = simulate(SystemKind::hermes(), &config, &sim).unwrap();
    let chunked = simulate(
        SystemKind::hermes(),
        &config,
        &sim.clone().with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 8,
        }),
    )
    .unwrap();

    // Equal total work: same request set, every token generated, and the
    // same total prefill seconds (chunks amortize to the one-shot cost).
    assert_eq!(
        chunked.report.generated_tokens,
        stalled.report.generated_tokens
    );
    assert!(
        (chunked.report.breakdown.prefill - stalled.report.breakdown.prefill).abs() < 1e-9,
        "chunked prefill total {:.4}s vs stalled {:.4}s",
        chunked.report.breakdown.prefill,
        stalled.report.breakdown.prefill
    );

    // The fix itself: in-flight tail TPOT strictly improves.
    assert!(
        chunked.report.tpot.p95 < stalled.report.tpot.p95,
        "chunked p95 TPOT {:.4}s vs stall-the-world {:.4}s",
        chunked.report.tpot.p95,
        stalled.report.tpot.p95
    );
    assert!(
        chunked.report.tpot.mean < stalled.report.tpot.mean,
        "chunked mean TPOT {:.4}s vs stall-the-world {:.4}s",
        chunked.report.tpot.mean,
        stalled.report.tpot.mean
    );
    // The price is paid where it belongs: the joiner's own first token waits
    // for its chunked prompt, so TTFT does not improve.
    assert!(chunked.report.ttft.p95 >= stalled.report.ttft.p95);
    assert_eq!(chunked.report.prefill_policy, "chunked");
    assert_eq!(stalled.report.prefill_policy, "stall-the-world");
}

/// Heterogeneous request lengths flow end to end: per-request records carry
/// their own lengths, single-token requests are excluded from TPOT, and the
/// simulation completes everything under both prefill policies.
#[test]
fn heterogeneous_lengths_serve_under_both_prefill_policies() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt30B, 1);
    let sim = ServingSimulation::new(w, ArrivalProcess::Poisson { rate: 0.8 }, 12).with_lengths(
        LengthDistribution::Uniform {
            prompt_min: 16,
            prompt_max: 96,
            gen_min: 1,
            gen_max: 24,
        },
    );
    for prefill in [
        PrefillPolicy::StallTheWorld,
        PrefillPolicy::Chunked {
            chunk_tokens: 16,
            budget: 32,
        },
    ] {
        let outcome = simulate(
            SystemKind::hermes(),
            &config,
            &sim.clone().with_prefill(prefill),
        )
        .unwrap();
        assert_eq!(outcome.report.completed, 12, "{}", prefill.name());
        let expected_tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
        assert_eq!(
            outcome.report.generated_tokens,
            expected_tokens,
            "{}",
            prefill.name()
        );
        // The sampled lengths really vary.
        assert!(outcome
            .records
            .iter()
            .any(|r| r.prompt_len != outcome.records[0].prompt_len));
        for r in &outcome.records {
            assert!((16..=96).contains(&r.prompt_len));
            assert!((1..=24).contains(&r.gen_len));
            assert!(r.arrival <= r.admitted);
            assert!(r.admitted < r.first_token);
            assert!(r.first_token <= r.completed);
        }
    }
}

/// The headline claim of the priority-scheduling PR: under bursty overload
/// with a KV-memory cap, priority scheduling with KV-pressure preemption
/// strictly reduces the high class's p95 TTFT versus FCFS — and does it
/// without starving anyone (every request of every class still completes).
#[test]
fn priority_preemption_cuts_high_class_tail_ttft_under_bursty_overload() {
    let config = SystemConfig::paper_default();
    let mut w = quick(ModelId::Opt30B, 1);
    w.gen_len = 16;
    // Interactive tier-0 requests with a TTFT SLO interleaved with
    // best-effort tier-2 bulk requests.
    let classes = PrioritySpec::Cycle {
        classes: vec![
            RequestClass::new(0).with_ttft_deadline(3.0),
            RequestClass::new(2),
        ],
    };
    // Two KV seats under an 8-deep burst: most of each burst queues, and
    // the second burst lands while the first's bulk requests still hold
    // seats — the overlap that makes preemption fire.
    let kv_cap = request_kv_bytes(&w, w.prompt_len, w.gen_len) * 2;
    let sim = ServingSimulation::new(
        w,
        ArrivalProcess::Bursty {
            rate: 1.0,
            burst: 8,
        },
        16,
    )
    .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(kv_cap))
    .with_classes(classes);

    let fcfs = simulate(SystemKind::hermes(), &config, &sim).unwrap();
    let priority = simulate(
        SystemKind::hermes(),
        &config,
        &sim.clone()
            .with_scheduling(SchedulingPolicy::Priority)
            .with_preemption(PreemptionPolicy::EvictAndRefill),
    )
    .unwrap();
    let edf = simulate(
        SystemKind::hermes(),
        &config,
        &sim.clone()
            .with_scheduling(SchedulingPolicy::Edf)
            .with_preemption(PreemptionPolicy::EvictAndRefill),
    )
    .unwrap();

    // Nobody starves: every request of every class completes everywhere.
    for (outcome, name) in [(&fcfs, "fcfs"), (&priority, "priority"), (&edf, "edf")] {
        assert_eq!(outcome.report.completed, 16, "{name}");
        for class in &outcome.report.per_class {
            assert_eq!(
                class.num_requests, 8,
                "{name}: tier {} offered",
                class.priority
            );
        }
        let tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
        assert_eq!(outcome.report.generated_tokens, tokens, "{name}");
    }

    // The point of the PR: the high class's tail TTFT strictly improves,
    // and the scenario genuinely exercises preemption.
    let fcfs_high = fcfs.report.class(0).unwrap();
    let priority_high = priority.report.class(0).unwrap();
    assert!(priority.report.preemptions > 0, "preemption never fired");
    assert!(
        priority_high.ttft.p95 < fcfs_high.ttft.p95,
        "priority high-class p95 TTFT {:.3}s vs FCFS {:.3}s",
        priority_high.ttft.p95,
        fcfs_high.ttft.p95
    );
    // SLO attainment of the deadline-carrying class never degrades.
    assert!(
        priority_high.slo_attainment().unwrap() >= fcfs_high.slo_attainment().unwrap(),
        "priority SLO attainment {:?} vs FCFS {:?}",
        priority_high.slo_attainment(),
        fcfs_high.slo_attainment()
    );
    // EDF also beats FCFS for the deadline-carrying class (tier-0 requests
    // carry the only deadlines, so EDF serves them first).
    let edf_high = edf.report.class(0).unwrap();
    assert!(
        edf_high.ttft.p95 < fcfs_high.ttft.p95,
        "edf high-class p95 TTFT {:.3}s vs FCFS {:.3}s",
        edf_high.ttft.p95,
        fcfs_high.ttft.p95
    );
    assert_eq!(priority.report.scheduling, "priority");
    assert_eq!(edf.report.scheduling, "edf");
    assert_eq!(fcfs.report.scheduling, "fcfs");
}

/// The headline claim of the paged-KV PR: on the same bursty-overload,
/// KV-capped scenario as the priority-preemption test above, swap-out
/// preemption strictly beats evict-and-refill on the *victim* class's tail
/// end-to-end latency — paging a victim's KV to the host/NDP swap tier and
/// back is priced as one PCIe transfer each way, while evict-and-refill
/// recomputes the victim's whole context — without costing the high class
/// its SLO.
#[test]
fn swap_out_beats_evict_and_refill_for_victims_under_bursty_overload() {
    let config = SystemConfig::paper_default();
    let mut w = quick(ModelId::Opt30B, 1);
    w.gen_len = 16;
    let classes = PrioritySpec::Cycle {
        classes: vec![
            RequestClass::new(0).with_ttft_deadline(3.0),
            RequestClass::new(2),
        ],
    };
    let kv_cap = request_kv_bytes(&w, w.prompt_len, w.gen_len) * 2;
    let sim = ServingSimulation::new(
        w,
        ArrivalProcess::Bursty {
            rate: 1.0,
            burst: 8,
        },
        16,
    )
    .with_admission(
        AdmissionConfig::unlimited()
            .with_kv_memory_bytes(kv_cap)
            .with_paged_kv(DEFAULT_BLOCK_TOKENS),
    )
    .with_classes(classes)
    .with_scheduling(SchedulingPolicy::Priority);

    let refill = simulate(
        SystemKind::hermes(),
        &config,
        &sim.clone()
            .with_preemption(PreemptionPolicy::EvictAndRefill),
    )
    .unwrap();
    let swap = simulate(
        SystemKind::hermes(),
        &config,
        &sim.clone().with_preemption(PreemptionPolicy::SwapOut),
    )
    .unwrap();

    // Both runs complete everything and genuinely preempt.
    for (outcome, name) in [(&refill, "evict-and-refill"), (&swap, "swap-out")] {
        assert_eq!(outcome.report.completed, 16, "{name}");
        assert!(
            outcome.report.preemptions > 0,
            "{name}: preemption never fired"
        );
        let kv = outcome.report.kv.as_ref().expect("paged pool report");
        assert!(kv.peak_blocks > 0, "{name}");
        assert!((0.0..=1.0).contains(&kv.fragmentation), "{name}: {kv:?}");
        assert!(
            kv.peak_utilization.unwrap() <= 1.0 + 1e-12,
            "{name}: pool overcommitted: {kv:?}"
        );
    }

    // The point of the PR: the preempted best-effort class's tail e2e
    // strictly improves — swapped victims resume without recompute.
    let refill_victims = refill.report.class(2).unwrap();
    let swap_victims = swap.report.class(2).unwrap();
    assert!(
        swap_victims.e2e.p95 < refill_victims.e2e.p95,
        "swap-out victim p95 e2e {:.3}s vs evict-and-refill {:.3}s",
        swap_victims.e2e.p95,
        refill_victims.e2e.p95
    );
    // And it costs the interactive class nothing: tier 0 keeps a perfect
    // TTFT SLO under both policies.
    assert_eq!(refill.report.class(0).unwrap().slo_attainment(), Some(1.0));
    assert_eq!(swap.report.class(0).unwrap().slo_attainment(), Some(1.0));

    // The swap tier is only reported under swap-out, and its traffic
    // balances: everything paged out is paged back in by completion time.
    assert!(refill.report.swap.is_none());
    let tier = swap.report.swap.as_ref().expect("swap tier report");
    assert_eq!(tier.swap_outs, tier.swap_ins);
    assert_eq!(tier.swapped_out_bytes, tier.swapped_in_bytes);
    assert!(tier.swap_outs > 0 && tier.seconds > 0.0);
    assert_eq!(swap.report.preemption_policy, "swap-out");
}

/// The headline claim of the prefix-cache PR: under a shared-prompt load
/// whose cost is dominated by a long shared prefill, warming the radix
/// prefix cache at least halves median TTFT — every follower maps the
/// leader's cached prefix copy-free and skips the prefill pass (offloaded
/// prefill streams the non-resident weights over PCIe, so the whole pass
/// is the unit of saving) — at a hit rate above 0.9, without changing a
/// single generated token.
#[test]
fn prefix_cache_halves_ttft_on_shared_prompt_load() {
    let config = SystemConfig::paper_default();
    let mut w = quick(ModelId::Opt30B, 1);
    // Prefill-dominated requests: the whole 512-token prompt (a whole
    // number of KV blocks) is one shared run — the repeatedly-queried
    // shared-document shape — then a short generation.
    w.prompt_len = 512;
    w.gen_len = 4;
    let sim = ServingSimulation::new(w, ArrivalProcess::Poisson { rate: 0.2 }, 16)
        .with_admission(
            AdmissionConfig::unlimited()
                .with_max_batch(8)
                .with_paged_kv(DEFAULT_BLOCK_TOKENS),
        )
        .with_prompts(PromptSpec::SharedGroups {
            groups: 1,
            prefix_len: 512,
        });

    let cold = simulate(SystemKind::hermes(), &config, &sim).unwrap();
    let warm = simulate(
        SystemKind::hermes(),
        &config,
        &sim.clone().with_prefix_cache(PrefixCacheMode::Lru),
    )
    .unwrap();

    // Token conservation: the cache skips *prefill* work only; both runs
    // complete every request and generate exactly the same tokens.
    for (outcome, name) in [(&cold, "cold"), (&warm, "warm")] {
        assert_eq!(outcome.report.completed, 16, "{name}");
        let tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
        assert_eq!(outcome.report.generated_tokens, tokens, "{name}");
    }
    assert_eq!(cold.report.generated_tokens, warm.report.generated_tokens);

    // The cold run reports no cache section; the warm run's section adds up.
    assert!(cold.report.prefix.is_none());
    let prefix = warm.report.prefix.as_ref().expect("prefix cache report");
    assert!(
        prefix.hit_rate > 0.9,
        "hit rate {:.3} on a single shared prefix",
        prefix.hit_rate
    );
    // The leader misses and inserts; every follower reuses the full
    // 512-token shared run.
    assert_eq!(prefix.reused_prefill_tokens, 15 * 512, "{prefix:?}");
    // With an unbounded pool nothing is preempted, so prefill work is
    // exactly the prompts: every prompt token is either reused or
    // recomputed.
    assert_eq!(
        prefix.reused_prefill_tokens + prefix.recomputed_prefill_tokens,
        16 * 512,
        "{prefix:?}"
    );

    // The point of the PR: at least a 2x drop in median TTFT.
    assert!(
        warm.report.ttft.p50 * 2.0 <= cold.report.ttft.p50,
        "warm TTFT p50 {:.3}s vs cold {:.3}s",
        warm.report.ttft.p50,
        cold.report.ttft.p50
    );
    // And the split shows where it comes from: cache hitters beat the
    // missing leader.
    assert!(prefix.ttft_hit.p50 < prefix.ttft_miss.p50, "{prefix:?}");
}

/// Serving propagates engine validation: unsupported models and invalid
/// inputs fail exactly like the closed-loop driver.
#[test]
fn serving_validates_like_the_closed_loop_driver() {
    let config = SystemConfig::paper_default();
    let llama = quick(ModelId::Llama2_13B, 1);
    let sim = ServingSimulation::new(llama, ArrivalProcess::AllAtOnce, 2);
    assert!(matches!(
        simulate(SystemKind::FlexGen, &config, &sim),
        Err(HermesError::ModelNotSupported { .. })
    ));
    let mut invalid = quick(ModelId::Opt13B, 1);
    invalid.gen_len = 0;
    let sim = ServingSimulation::new(invalid, ArrivalProcess::AllAtOnce, 2);
    assert!(matches!(
        simulate(SystemKind::hermes(), &config, &sim),
        Err(HermesError::InvalidWorkload(_))
    ));
}
