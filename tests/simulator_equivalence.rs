//! Differential tests of the heap-based simulator against the retained
//! sort-based reference scheduler (`hermes_serve::reference`).
//!
//! The PR that introduced the event-heap hot loop (indexed ready queue,
//! incremental batch accounting, lazy finish events) must not change
//! semantics at all: for every scenario the production [`simulate`] and the
//! reference oracle must produce **bitwise-identical** [`ServingOutcome`]s —
//! every clock stamp, every percentile, every preemption count. Each check
//! asserts both structural equality and equality of the serialized JSON, so
//! even a field the `PartialEq` impl might one day skip cannot drift.
//!
//! Coverage: {Fcfs, Priority, Edf, PrefixAffinity} × {None, EvictAndRefill,
//! SwapOut} × {StallTheWorld, Chunked} × {AllAtOnce, Poisson, Bursty} ×
//! {Reserve, Paged} × {Unique, SharedGroups prompts} × {Disabled, Lru
//! prefix cache} via the fixed scenarios below plus proptest-driven random
//! configurations.

use proptest::prelude::*;

use hermes::core::{
    ArrivalProcess, LengthDistribution, PrioritySpec, PromptSpec, RequestClass, SystemConfig,
    SystemKind, Workload,
};
use hermes::model::ModelId;
use hermes_serve::reference::simulate_reference;
use hermes_serve::{
    request_kv_bytes, simulate, AdmissionConfig, BatchingPolicy, PreemptionPolicy, PrefillPolicy,
    PrefixCacheMode, SchedulingPolicy, ServingSimulation,
};

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 24;
    w.gen_len = 6;
    w
}

/// Interactive deadline-carrying tier-0 requests interleaved with
/// best-effort tier-2 bulk — the class mix that exercises priority ranks,
/// EDF deadlines and preemption victims all at once.
fn mixed_classes() -> PrioritySpec {
    PrioritySpec::Cycle {
        classes: vec![
            RequestClass::new(0).with_ttft_deadline(2.0),
            RequestClass::new(2),
        ],
    }
}

/// Assert the production and reference schedulers produce bitwise-identical
/// outcomes (or identical errors) for `sim` on every paper system.
fn assert_equivalent(sim: &ServingSimulation) {
    let config = SystemConfig::paper_default();
    for kind in [SystemKind::hermes(), SystemKind::hermes_base()] {
        let fast = simulate(kind, &config, sim);
        let slow = simulate_reference(kind, &config, sim);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                assert_eq!(
                    fast, slow,
                    "heap and reference schedulers diverged on {kind:?}: {sim:?}"
                );
                let fast_json = serde_json::to_string(&fast).unwrap();
                let slow_json = serde_json::to_string(&slow).unwrap();
                assert_eq!(
                    fast_json, slow_json,
                    "serialized outcomes diverged on {kind:?}"
                );
            }
            (Err(fast), Err(slow)) => {
                assert_eq!(fast.to_string(), slow.to_string(), "errors diverged");
            }
            (fast, slow) => {
                panic!("one scheduler failed where the other succeeded: {fast:?} vs {slow:?}");
            }
        }
    }
}

/// KV budget that fits exactly `seats` worst-case requests of the uniform
/// length range used below, so admission stays feasible but tight.
fn tight_kv(seats: u64) -> AdmissionConfig {
    AdmissionConfig::unlimited().with_kv_memory_bytes(request_kv_bytes(&template(), 40, 10) * seats)
}

fn uniform_lengths() -> LengthDistribution {
    LengthDistribution::Uniform {
        prompt_min: 8,
        prompt_max: 40,
        gen_min: 1,
        gen_max: 10,
    }
}

#[test]
fn fcfs_stall_the_world_all_at_once() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 12);
    assert_equivalent(&sim);
}

#[test]
fn fcfs_chunked_poisson_with_heterogeneous_lengths() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 1.5 }, 16)
        .with_arrival_seed(7)
        .with_lengths(uniform_lengths())
        .with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 16,
        });
    assert_equivalent(&sim);
}

#[test]
fn priority_eviction_stall_the_world_bursty() {
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Bursty {
            rate: 2.0,
            burst: 3,
        },
        14,
    )
    .with_arrival_seed(21)
    .with_admission(tight_kv(2))
    .with_classes(mixed_classes())
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::EvictAndRefill);
    assert_equivalent(&sim);
}

#[test]
fn priority_eviction_chunked_poisson() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.5 }, 14)
        .with_arrival_seed(3)
        .with_admission(tight_kv(2))
        .with_classes(mixed_classes())
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill)
        .with_lengths(uniform_lengths())
        .with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 6,
            budget: 12,
        });
    assert_equivalent(&sim);
}

#[test]
fn edf_eviction_chunked_bursty() {
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Bursty {
            rate: 1.8,
            burst: 4,
        },
        14,
    )
    .with_arrival_seed(11)
    .with_admission(tight_kv(3))
    .with_classes(mixed_classes())
    .with_scheduling(SchedulingPolicy::Edf)
    .with_preemption(PreemptionPolicy::EvictAndRefill)
    .with_prefill(PrefillPolicy::Chunked {
        chunk_tokens: 8,
        budget: 8,
    });
    assert_equivalent(&sim);
}

#[test]
fn edf_static_batching_poisson() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.8 }, 10)
        .with_arrival_seed(5)
        .with_policy(BatchingPolicy::Static)
        .with_classes(mixed_classes())
        .with_scheduling(SchedulingPolicy::Edf);
    assert_equivalent(&sim);
}

#[test]
fn priority_swap_out_paged_bursty() {
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Bursty {
            rate: 2.0,
            burst: 3,
        },
        14,
    )
    .with_arrival_seed(21)
    .with_admission(tight_kv(2).with_paged_kv(16))
    .with_classes(mixed_classes())
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::SwapOut);
    assert_equivalent(&sim);
}

#[test]
fn priority_swap_out_paged_chunked_poisson() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.5 }, 14)
        .with_arrival_seed(3)
        .with_admission(tight_kv(2).with_paged_kv(8))
        .with_classes(mixed_classes())
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::SwapOut)
        .with_lengths(uniform_lengths())
        .with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 6,
            budget: 12,
        });
    assert_equivalent(&sim);
}

#[test]
fn edf_paged_eviction_chunked_bursty() {
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Bursty {
            rate: 1.8,
            burst: 4,
        },
        14,
    )
    .with_arrival_seed(11)
    .with_admission(tight_kv(3).with_paged_kv(4))
    .with_classes(mixed_classes())
    .with_scheduling(SchedulingPolicy::Edf)
    .with_preemption(PreemptionPolicy::EvictAndRefill)
    .with_prefill(PrefillPolicy::Chunked {
        chunk_tokens: 8,
        budget: 8,
    });
    assert_equivalent(&sim);
}

#[test]
fn prefix_cache_shared_groups_poisson() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 1.5 }, 16)
        .with_arrival_seed(7)
        .with_admission(AdmissionConfig::unlimited().with_paged_kv(8))
        .with_prompts(PromptSpec::SharedGroups {
            groups: 2,
            prefix_len: 16,
        })
        .with_prefix_cache(PrefixCacheMode::Lru);
    assert_equivalent(&sim);
}

#[test]
fn prefix_cache_affinity_chunked_heterogeneous() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.0 }, 16)
        .with_arrival_seed(19)
        .with_admission(AdmissionConfig::unlimited().with_paged_kv(4))
        .with_lengths(uniform_lengths())
        .with_prompts(PromptSpec::SharedGroups {
            groups: 3,
            prefix_len: 12,
        })
        .with_prefix_cache(PrefixCacheMode::Lru)
        .with_scheduling(SchedulingPolicy::PrefixAffinity)
        .with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 16,
        });
    assert_equivalent(&sim);
}

#[test]
fn prefix_cache_tight_pool_swap_out_bursty() {
    // A bounded paged pool under bursty overload: admission must evict
    // cached prefixes and swap out victims while the cache keeps leases on
    // the survivors — the hardest ordering to keep bitwise-aligned.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Bursty {
            rate: 2.0,
            burst: 3,
        },
        14,
    )
    .with_arrival_seed(21)
    .with_admission(tight_kv(2).with_paged_kv(16))
    .with_classes(mixed_classes())
    .with_prompts(PromptSpec::SharedGroups {
        groups: 2,
        prefix_len: 16,
    })
    .with_prefix_cache(PrefixCacheMode::Lru)
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::SwapOut);
    assert_equivalent(&sim);
}

#[test]
fn prefix_cache_tight_pool_evict_and_refill_chunked() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.5 }, 14)
        .with_arrival_seed(3)
        .with_admission(tight_kv(2).with_paged_kv(8))
        .with_classes(mixed_classes())
        .with_lengths(uniform_lengths())
        .with_prompts(PromptSpec::SharedGroups {
            groups: 2,
            prefix_len: 10,
        })
        .with_prefix_cache(PrefixCacheMode::Lru)
        .with_scheduling(SchedulingPolicy::PrefixAffinity)
        .with_preemption(PreemptionPolicy::EvictAndRefill)
        .with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 6,
            budget: 12,
        });
    assert_equivalent(&sim);
}

#[test]
fn prefix_affinity_without_cache() {
    // Prefix-affinity scheduling is legal without a cache (it only reorders
    // the ready queue); both loops must rank identically.
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 1.0 }, 12)
        .with_arrival_seed(5)
        .with_prompts(PromptSpec::SharedGroups {
            groups: 2,
            prefix_len: 16,
        })
        .with_scheduling(SchedulingPolicy::PrefixAffinity);
    assert_equivalent(&sim);
}

#[test]
fn max_batch_cap_with_priority_eviction() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 3.0 }, 12)
        .with_arrival_seed(13)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(3))
        .with_classes(mixed_classes())
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill);
    assert_equivalent(&sim);
}

fn arrival_of(selector: usize, rate: f64) -> ArrivalProcess {
    match selector {
        0 => ArrivalProcess::AllAtOnce,
        1 => ArrivalProcess::Poisson { rate },
        _ => ArrivalProcess::Bursty { rate, burst: 3 },
    }
}

fn scheduling_of(selector: usize) -> SchedulingPolicy {
    match selector {
        0 => SchedulingPolicy::Fcfs,
        1 => SchedulingPolicy::Priority,
        2 => SchedulingPolicy::Edf,
        _ => SchedulingPolicy::PrefixAffinity,
    }
}

proptest! {
    // Every case runs two full simulations per system; keep the budget
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random scenarios across the whole policy grid: the heap-based and
    /// sort-based schedulers must agree bitwise.
    #[test]
    fn heap_and_reference_schedulers_agree_bitwise(
        arrival_sel in 0usize..3,
        scheduling_sel in 0usize..4,
        policy_sel in 0usize..2,
        prefill_sel in 0usize..2,
        preempt in 0usize..3,
        chunk_tokens in 1usize..13,
        budget in 1usize..25,
        rate in 0.2f64..3.0,
        num_requests in 1usize..10,
        seed in 0u64..1_000,
        seats in 2u64..5,
        capped in 0usize..2,
        heterogeneous in 0usize..2,
        paged in 0usize..2,
        block_tokens in 1usize..9,
        prompt_sel in 0usize..3,
        prefix_len in 1usize..20,
        cached in 0usize..2,
    ) {
        let mut sim = ServingSimulation::new(
            template(),
            arrival_of(arrival_sel, rate),
            num_requests,
        )
        .with_arrival_seed(seed)
        .with_classes(mixed_classes())
        .with_scheduling(scheduling_of(scheduling_sel))
        .with_prefill(if prefill_sel == 0 {
            PrefillPolicy::StallTheWorld
        } else {
            PrefillPolicy::Chunked { chunk_tokens, budget }
        });
        if policy_sel == 1 {
            sim = sim.with_policy(BatchingPolicy::Static);
        }
        if preempt == 1 {
            sim = sim.with_preemption(PreemptionPolicy::EvictAndRefill);
        } else if preempt == 2 {
            sim = sim.with_preemption(PreemptionPolicy::SwapOut);
        }
        let mut admission = if capped == 1 {
            tight_kv(seats)
        } else {
            AdmissionConfig::unlimited()
        };
        if paged == 1 {
            // Bounded + paged + no preemption is rejected up front; both
            // schedulers must reject it with the identical error.
            admission = admission.with_paged_kv(block_tokens);
        }
        sim = sim.with_admission(admission);
        if heterogeneous == 1 {
            sim = sim.with_lengths(uniform_lengths());
        }
        if prompt_sel > 0 {
            sim = sim.with_prompts(PromptSpec::SharedGroups {
                groups: prompt_sel,
                prefix_len,
            });
        }
        if cached == 1 && paged == 1 {
            // The cache requires paged accounting; cached == 1 without it
            // would be rejected identically by both loops but would waste
            // the case on a validation error.
            sim = sim.with_prefix_cache(PrefixCacheMode::Lru);
        }
        assert_equivalent(&sim);
    }
}
