//! Serde round-trips of the public report types, exercised through JSON so
//! the vendored serde stubs and real serde stay interchangeable: the same
//! derives and `serde_json::{to_string, from_str}` calls compile and pass
//! against either implementation.

use hermes::core::{
    try_run_system, ArrivalProcess, HermesError, Phase, SystemConfig, SystemKind, TokenEvent,
    Workload,
};
use hermes::model::ModelId;
use hermes::serve::{simulate, ServingSimulation};

fn quick(model: ModelId) -> Workload {
    let mut w = Workload::paper_default(model);
    w.gen_len = 6;
    w.prompt_len = 32;
    w
}

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn workload_round_trips() {
    let w = quick(ModelId::Llama2_70B);
    let back = roundtrip(&w);
    assert_eq!(back, w);
    // Enum fields survive: the model id and dataset are externally tagged.
    let json = serde_json::to_string(&w).unwrap();
    assert!(json.contains("\"prompt_len\":32"), "{json}");
}

#[test]
fn arrival_specs_round_trip_with_external_tagging() {
    for spec in [
        ArrivalProcess::AllAtOnce,
        ArrivalProcess::Poisson { rate: 2.5 },
        ArrivalProcess::Bursty {
            rate: 1.25,
            burst: 8,
        },
        ArrivalProcess::Trace {
            times: vec![0.0, 0.5, 3.25],
        },
    ] {
        assert_eq!(roundtrip(&spec), spec);
    }
    // Unit variants are bare strings, payload variants single-entry maps —
    // serde's externally-tagged default, so real serde parses the same text.
    assert_eq!(
        serde_json::to_string(&ArrivalProcess::AllAtOnce).unwrap(),
        "\"AllAtOnce\""
    );
    assert_eq!(
        serde_json::to_string(&ArrivalProcess::Poisson { rate: 2.0 }).unwrap(),
        "{\"Poisson\":{\"rate\":2.0}}"
    );
}

#[test]
fn inference_report_round_trips() {
    let config = SystemConfig::paper_default();
    for kind in [SystemKind::hermes(), SystemKind::Accelerate] {
        let report = try_run_system(kind, &quick(ModelId::Opt13B), &config).unwrap();
        let back = roundtrip(&report);
        assert_eq!(back, report, "{}", kind.name());
        assert_eq!(back.tokens_per_second(), report.tokens_per_second());
    }
}

#[test]
fn token_events_round_trip() {
    let config = SystemConfig::paper_default();
    let engine = SystemKind::hermes().engine(&config);
    let mut session = engine.start(&quick(ModelId::Opt13B)).unwrap();
    let mut events = vec![session.prefill().unwrap()];
    while let Some(event) = session.step().unwrap() {
        events.push(event);
    }
    let back: Vec<TokenEvent> = roundtrip(&events);
    assert_eq!(back, events);
    assert_eq!(back[0].phase, Phase::Prefill);
}

#[test]
fn serving_report_and_records_round_trip() {
    let config = SystemConfig::paper_default();
    let sim = ServingSimulation::new(
        quick(ModelId::Opt13B),
        ArrivalProcess::Poisson { rate: 1.0 },
        5,
    );
    let outcome = simulate(SystemKind::hermes(), &config, &sim).unwrap();
    let report_back = roundtrip(&outcome.report);
    assert_eq!(report_back, outcome.report);
    assert_eq!(report_back.goodput_rps(), outcome.report.goodput_rps());
    let records_back = roundtrip(&outcome.records);
    assert_eq!(records_back, outcome.records);
    // The whole outcome round-trips as one document too.
    assert_eq!(roundtrip(&outcome), outcome);
}

#[test]
fn errors_round_trip() {
    for error in [
        HermesError::InvalidWorkload("batch must be at least 1".into()),
        HermesError::InsufficientMemory {
            required: 10,
            available: 5,
        },
        HermesError::ModelNotSupported {
            system: "FlexGen".into(),
        },
    ] {
        assert_eq!(roundtrip(&error), error);
    }
}

#[test]
fn system_kinds_round_trip() {
    for kind in [
        SystemKind::Accelerate,
        SystemKind::hermes(),
        SystemKind::hermes_host(),
        SystemKind::TensorRtLlm { num_gpus: 5 },
    ] {
        assert_eq!(roundtrip(&kind), kind);
    }
}

#[test]
fn shape_mismatches_fail_cleanly() {
    assert!(serde_json::from_str::<Workload>("{\"model\":\"Opt13B\"}").is_err());
    assert!(serde_json::from_str::<ArrivalProcess>("\"NoSuchVariant\"").is_err());
    assert!(serde_json::from_str::<TokenEvent>("[1,2,3]").is_err());
}
