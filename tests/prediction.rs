//! Integration tests of the lightweight predictor against the synthetic
//! activation traces (the claims of Section IV-C).

use hermes_model::{Block, ModelConfig, ModelId};
use hermes_predictor::{HermesPredictor, MlpPredictorModel, PredictorConfig, PredictorEval};
use hermes_sparsity::{SparsityProfile, TraceGenerator};

fn small_model() -> ModelConfig {
    let mut cfg = ModelConfig::from_id(ModelId::Llama2_7B);
    cfg.num_layers = 4;
    cfg.hidden_size = 128;
    cfg.ffn_hidden = 384;
    cfg.num_heads = 8;
    cfg.num_kv_heads = 8;
    cfg
}

fn trained(seed: u64) -> (ModelConfig, TraceGenerator, HermesPredictor) {
    let cfg = small_model();
    let profile = SparsityProfile::for_model(&cfg);
    let mut gen = TraceGenerator::new(&cfg, &profile, seed);
    let prefill = gen.generate(48);
    let mut p = HermesPredictor::new(&cfg, PredictorConfig::default());
    p.initialize_from_prefill(&prefill);
    p.correlation_mut().sample_from_trace(&prefill, 8);
    (cfg, gen, p)
}

#[test]
fn combined_predictor_reaches_high_accuracy() {
    let (_, mut gen, mut p) = trained(1);
    let eval = PredictorEval::evaluate(&mut p, &gen.generate(64));
    // The paper reports ~98% accuracy; the synthetic traces (which are
    // harder to predict than real traces in the attention block) land a few
    // points below that.
    assert!(eval.accuracy > 0.85, "accuracy {:.3}", eval.accuracy);
    assert!(eval.recall > 0.60, "recall {:.3}", eval.recall);
}

#[test]
fn combined_beats_token_only_and_layer_only() {
    let evaluate = |config: PredictorConfig| {
        let cfg = small_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 3);
        let prefill = gen.generate(48);
        let mut p = HermesPredictor::new(&cfg, config);
        p.initialize_from_prefill(&prefill);
        p.correlation_mut().sample_from_trace(&prefill, 8);
        PredictorEval::evaluate(&mut p, &gen.generate(48))
    };
    let combined = evaluate(PredictorConfig::default());
    let token_only = evaluate(PredictorConfig::token_only());
    let layer_only = evaluate(PredictorConfig::layer_only());
    assert!(combined.accuracy + 0.02 >= token_only.accuracy);
    assert!(combined.accuracy + 0.02 >= layer_only.accuracy);
    // The combined rule trades a little recall for much better precision
    // than the liberal token-only rule.
    assert!(combined.precision + 0.02 >= token_only.precision);
}

#[test]
fn predictor_state_is_tiny_compared_to_mlp_baseline() {
    let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
    let hermes = HermesPredictor::new(&cfg, PredictorConfig::default());
    let mlp = MlpPredictorModel::default();
    // State table matches the paper's 232 KB figure and the whole predictor
    // is orders of magnitude below the ~2 GB MLP predictors.
    let state_kb = hermes.states().storage_bytes() as f64 / 1024.0;
    assert!(
        (200.0..260.0).contains(&state_kb),
        "state table {state_kb:.0} KB"
    );
    assert!(mlp.storage_bytes(&cfg) > 300 * hermes.storage_bytes());
}

#[test]
fn hot_set_follows_activity_shift() {
    // After observing a stretch of tokens, neurons that fire frequently must
    // be classified hot, and rarely-firing ones cold.
    let (cfg, mut gen, mut p) = trained(9);
    let trace = gen.generate(32);
    for tok in &trace {
        p.observe(tok);
    }
    let freqs = hermes_sparsity::NeuronFrequencies::measure(&trace);
    let layer = 2;
    let ranked = freqs.ranked(layer, Block::Mlp);
    let hottest = ranked[0] as usize;
    let coldest = *ranked.last().unwrap() as usize;
    assert!(p.is_hot(layer, Block::Mlp, hottest));
    assert!(!p.is_hot(layer, Block::Mlp, coldest));
    let _ = cfg;
}
