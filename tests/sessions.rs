//! Integration tests of the step-wise session API: step/run equivalence for
//! every system, determinism of the event stream, the session protocol, and
//! the unified error type on invalid inputs.

use hermes_core::{
    run_session, try_run_system, HermesError, InferenceReport, Phase, SystemConfig, SystemKind,
    TokenEvent, Workload,
};
use hermes_model::ModelId;

fn quick(model: ModelId, batch: usize) -> Workload {
    let mut w = Workload::paper_default(model).with_batch(batch);
    w.gen_len = 10;
    w.prompt_len = 32;
    w
}

/// Every system kind of the evaluation, on a model they all support.
fn all_kinds() -> Vec<SystemKind> {
    let mut kinds = SystemKind::figure9_lineup();
    kinds.push(SystemKind::TensorRtLlm { num_gpus: 5 });
    kinds
}

fn drive_manually(
    kind: SystemKind,
    w: &Workload,
    config: &SystemConfig,
) -> (Vec<TokenEvent>, InferenceReport) {
    let engine = kind.engine(config);
    let mut session = engine.start(w).unwrap();
    let mut events = vec![session.prefill().unwrap()];
    while let Some(event) = session.step().unwrap() {
        events.push(event);
    }
    (events, session.report())
}

fn assert_close(a: f64, b: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!(
        (a - b).abs() / scale < 1e-9,
        "{what}: step-wise {a} vs one-shot {b}"
    );
}

#[test]
fn step_wise_equals_one_shot_for_every_system() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt30B, 2);
    for kind in all_kinds() {
        let (events, report) = drive_manually(kind, &w, &config);
        let oneshot = try_run_system(kind, &w, &config).unwrap();
        let name = kind.name();

        assert_eq!(report.system, oneshot.system, "{name}");
        assert_close(
            report.breakdown.total(),
            oneshot.breakdown.total(),
            &format!("{name} total"),
        );
        assert_close(
            report.breakdown.fc,
            oneshot.breakdown.fc,
            &format!("{name} fc"),
        );
        assert_close(
            report.breakdown.attention,
            oneshot.breakdown.attention,
            &format!("{name} attention"),
        );
        assert_close(
            report.tokens_per_second(),
            oneshot.tokens_per_second(),
            &format!("{name} tokens/s"),
        );
        assert_close(
            report.dimm_imbalance,
            oneshot.dimm_imbalance,
            &format!("{name} imbalance"),
        );
        assert_close(
            report.latency_stats.ttft,
            oneshot.latency_stats.ttft,
            &format!("{name} ttft"),
        );
        assert_close(
            report.latency_stats.tpot_p99,
            oneshot.latency_stats.tpot_p99,
            &format!("{name} p99"),
        );

        // The folded event stream is the report: summing the per-event
        // latencies reproduces the aggregate breakdown.
        let folded: f64 = events.iter().map(|e| e.latency.total()).sum();
        assert_close(folded, report.breakdown.total(), &format!("{name} folded"));
    }
}

#[test]
fn event_streams_are_deterministic_for_equal_seeds() {
    let config = SystemConfig::paper_default();
    for kind in [
        SystemKind::hermes(),
        SystemKind::hermes_host(),
        SystemKind::hermes_base(),
        SystemKind::DejaVu,
    ] {
        let w = quick(ModelId::Opt30B, 1);
        let (a, report_a) = drive_manually(kind, &w, &config);
        let (b, report_b) = drive_manually(kind, &w, &config);
        // Bitwise-identical events: same seed, same stream.
        assert_eq!(a, b, "{}", kind.name());
        assert_eq!(report_a, report_b, "{}", kind.name());
    }
    // A different seed produces a different Hermes stream (the event stream
    // really reflects the sampled activations, not a replayed constant).
    let w = quick(ModelId::Opt30B, 1);
    let (a, _) = drive_manually(SystemKind::hermes(), &w, &config);
    let (c, _) = drive_manually(SystemKind::hermes(), &w.clone().with_seed(1234), &config);
    assert_ne!(a, c);
}

#[test]
fn event_stream_shape_matches_workload() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt13B, 1);
    let (events, report) = drive_manually(SystemKind::hermes(), &w, &config);
    assert_eq!(events.len(), w.gen_len + 1);
    assert_eq!(events[0].phase, Phase::Prefill);
    for (i, event) in events[1..].iter().enumerate() {
        assert_eq!(event.phase, Phase::Decode);
        assert_eq!(event.index, i);
        assert!(event.latency.total() > 0.0);
        assert!(event.dimm_imbalance >= 1.0);
        assert!(event.hot_neuron_bytes > 0);
        assert!(event.hot_coverage > 0.0);
    }
    // TTFT is the prefill plus the first decode step.
    assert_close(
        report.latency_stats.ttft,
        events[0].latency.total() + events[1].latency.total(),
        "ttft",
    );
}

#[test]
fn session_protocol_is_enforced() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt13B, 1);
    let engine = SystemKind::hermes().engine(&config);
    let mut session = engine.start(&w).unwrap();
    assert!(matches!(session.step(), Err(HermesError::SessionState(_))));
    session.prefill().unwrap();
    assert!(matches!(
        session.prefill(),
        Err(HermesError::SessionState(_))
    ));
    // run_session resumes a partially driven session and completes it.
    session.step().unwrap();
    let report = run_session(session.as_mut()).unwrap();
    let oneshot = try_run_system(SystemKind::hermes(), &w, &config).unwrap();
    assert_close(
        report.breakdown.total(),
        oneshot.breakdown.total(),
        "resumed total",
    );
}

#[test]
fn invalid_inputs_are_reported_through_hermes_error() {
    let config = SystemConfig::paper_default();
    // Batch 0 is an invalid workload for every system kind.
    let mut w = quick(ModelId::Opt13B, 1);
    w.batch = 0;
    for kind in all_kinds() {
        assert!(
            matches!(
                try_run_system(kind, &w, &config),
                Err(HermesError::InvalidWorkload(_))
            ),
            "{}",
            kind.name()
        );
    }
    // Zero DIMMs is an invalid configuration.
    let w = quick(ModelId::Opt13B, 1);
    let mut bad = SystemConfig::paper_default();
    bad.num_dimms = 0;
    assert!(matches!(
        try_run_system(SystemKind::hermes(), &w, &bad),
        Err(HermesError::InvalidConfig(_))
    ));
    // The session path rejects the same config for every kind — including
    // TensorRT-LLM, which ignores the host platform for simulation but
    // still validates it, so step-wise and one-shot agree on inputs.
    for kind in all_kinds() {
        assert!(
            matches!(
                kind.engine(&bad).start(&w),
                Err(HermesError::InvalidConfig(_))
            ),
            "{}",
            kind.name()
        );
    }
    // Memory and model-family failures keep their structured variants.
    assert!(matches!(
        try_run_system(
            SystemKind::hermes(),
            &quick(ModelId::Llama2_70B, 1),
            &SystemConfig::paper_default().with_num_dimms(2)
        ),
        Err(HermesError::InsufficientMemory { .. })
    ));
    assert!(matches!(
        try_run_system(SystemKind::FlexGen, &quick(ModelId::Falcon40B, 1), &config),
        Err(HermesError::ModelNotSupported { .. })
    ));
}

#[test]
fn latency_percentiles_are_ordered_and_positive() {
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt30B, 1);
    for kind in all_kinds() {
        let report = try_run_system(kind, &w, &config).unwrap();
        let stats = report.latency_stats;
        let name = kind.name();
        assert!(stats.ttft > 0.0, "{name} ttft");
        assert!(stats.tpot_mean > 0.0, "{name} tpot");
        assert!(stats.tpot_p50 > 0.0, "{name} p50");
        assert!(stats.tpot_p95 >= stats.tpot_p50, "{name} p95 >= p50");
        assert!(stats.tpot_p99 >= stats.tpot_p95, "{name} p99 >= p95");
        // The mean sits inside the observed range.
        assert!(stats.tpot_mean <= stats.tpot_p99 * 1.0000001, "{name} mean");
        // TTFT includes the prompting phase.
        assert!(
            stats.ttft >= report.breakdown.prefill,
            "{name} ttft/prefill"
        );
    }
}
