//! Integration tests of the scaling behaviours behind Figs. 11, 14, 15, 16.

use hermes_core::{try_run_system, SystemConfig, SystemKind, Workload};
use hermes_gpu::GpuDevice;
use hermes_model::ModelId;
use proptest::prelude::*;

fn quick(model: ModelId, batch: usize) -> Workload {
    let mut w = Workload::paper_default(model).with_batch(batch);
    w.gen_len = 10;
    w.prompt_len = 32;
    w
}

fn hermes_tps(w: &Workload, config: &SystemConfig) -> f64 {
    try_run_system(SystemKind::hermes(), w, config)
        .unwrap()
        .tokens_per_second()
}

#[test]
fn batch_scaling_is_monotone_for_hermes() {
    // Fig. 11: Hermes keeps improving from batch 1 to 16.
    let config = SystemConfig::paper_default();
    let mut last = 0.0;
    for batch in [1usize, 2, 4, 8, 16] {
        let tps = hermes_tps(&quick(ModelId::Opt66B, batch), &config);
        assert!(tps > last, "batch {batch}: {tps:.2} <= {last:.2}");
        last = tps;
    }
}

#[test]
fn dimm_scaling_saturates() {
    // Fig. 14: more DIMMs help until the GPU becomes the bottleneck, after
    // which the gains flatten out.
    let w = quick(ModelId::Opt30B, 1);
    let tps: Vec<f64> = [2usize, 4, 8, 16]
        .iter()
        .map(|&d| hermes_tps(&w, &SystemConfig::paper_default().with_num_dimms(d)))
        .collect();
    assert!(tps[1] > tps[0]);
    assert!(tps[2] >= tps[1] * 0.99);
    let early_gain = tps[1] / tps[0];
    let late_gain = tps[3] / tps[2];
    assert!(
        late_gain < early_gain,
        "scaling should flatten: early {early_gain:.2} late {late_gain:.2}"
    );
}

#[test]
fn small_models_need_fewer_dimms_than_large_ones() {
    // Fig. 14's "N.P." entries: Falcon-40B needs at least 4 DIMMs.
    let config = SystemConfig::paper_default().with_num_dimms(2);
    assert!(try_run_system(SystemKind::hermes(), &quick(ModelId::Opt13B, 1), &config).is_ok());
    assert!(try_run_system(SystemKind::hermes(), &quick(ModelId::Falcon40B, 1), &config).is_err());
}

#[test]
fn gpu_sensitivity_ordering() {
    // Fig. 15: RTX 4090 >= RTX 3090 >= Tesla T4.
    let w = quick(ModelId::Opt30B, 4);
    let tps: Vec<f64> = GpuDevice::consumer_lineup()
        .into_iter()
        .map(|gpu| hermes_tps(&w, &SystemConfig::paper_default().with_gpu(gpu)))
        .collect();
    assert!(tps[2] >= tps[1], "4090 {:.2} vs 3090 {:.2}", tps[2], tps[1]);
    assert!(tps[1] >= tps[0], "3090 {:.2} vs T4 {:.2}", tps[1], tps[0]);
}

#[test]
fn gemv_multipliers_matter_more_at_large_batch() {
    // Fig. 16: extra multipliers barely help at batch 1 but keep helping at
    // batch 16 (where the GEMV units are compute-bound).
    let gain = |batch: usize| {
        let w = quick(ModelId::Opt13B, batch);
        let small = hermes_tps(&w, &SystemConfig::paper_default().with_gemv_multipliers(32));
        let large = hermes_tps(
            &w,
            &SystemConfig::paper_default().with_gemv_multipliers(512),
        );
        large / small
    };
    let gain_b1 = gain(1);
    let gain_b16 = gain(16);
    assert!(
        gain_b16 >= gain_b1,
        "b16 gain {gain_b16:.2} vs b1 gain {gain_b1:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Throughput is always positive and finite for supported combinations,
    /// and the latency breakdown components are non-negative.
    #[test]
    fn reports_are_well_formed(batch in 1usize..8, gen_len in 2usize..12) {
        let mut w = Workload::paper_default(ModelId::Opt13B).with_batch(batch);
        w.gen_len = gen_len;
        w.prompt_len = 16;
        let config = SystemConfig::paper_default();
        let report = try_run_system(SystemKind::hermes(), &w, &config).unwrap();
        prop_assert!(report.tokens_per_second().is_finite());
        prop_assert!(report.tokens_per_second() > 0.0);
        let b = report.breakdown;
        for part in [b.fc, b.attention, b.predictor, b.prefill, b.communication, b.migration, b.others] {
            prop_assert!(part >= 0.0);
        }
        prop_assert!(b.decode_total() > 0.0);
    }

    /// More generated tokens can only increase the total runtime.
    #[test]
    fn runtime_monotone_in_generation_length(extra in 1usize..8) {
        let config = SystemConfig::paper_default();
        let mut short = Workload::paper_default(ModelId::Opt13B);
        short.gen_len = 4;
        short.prompt_len = 16;
        let mut long = short.clone();
        long.gen_len = 4 + extra;
        let t_short = try_run_system(SystemKind::hermes(), &short, &config).unwrap().breakdown.total();
        let t_long = try_run_system(SystemKind::hermes(), &long, &config).unwrap().breakdown.total();
        prop_assert!(t_long > t_short);
    }
}
