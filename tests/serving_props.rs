//! Property tests of the serving simulator's lifecycle invariants, across
//! batching policies, prefill policies, arrival processes, chunk sizes and
//! length distributions.

use proptest::prelude::*;

use hermes::core::{ArrivalProcess, LengthDistribution, SystemConfig, SystemKind, Workload};
use hermes::model::ModelId;
use hermes::serve::{simulate, BatchingPolicy, PrefillPolicy, ServingSimulation};

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 24;
    w.gen_len = 6;
    w
}

fn arrival_of(selector: usize, rate: f64) -> ArrivalProcess {
    match selector {
        0 => ArrivalProcess::AllAtOnce,
        1 => ArrivalProcess::Poisson { rate },
        _ => ArrivalProcess::Bursty { rate, burst: 3 },
    }
}

fn prefill_of(selector: usize, chunk_tokens: usize, budget: usize) -> PrefillPolicy {
    if selector == 0 {
        PrefillPolicy::StallTheWorld
    } else {
        PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        }
    }
}

fn policy_of(selector: usize) -> BatchingPolicy {
    if selector == 0 {
        BatchingPolicy::Continuous
    } else {
        BatchingPolicy::Static
    }
}

proptest! {
    // Every case runs full engine simulations; keep the budget moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every sampled scenario: each record's lifecycle is ordered
    /// (arrival ≤ admitted < first token ≤ completed ≤ makespan), every
    /// offered request completes, and the report's token count equals the
    /// sum of per-request generation lengths.
    #[test]
    fn lifecycle_invariants_hold_across_scenarios(
        arrival_sel in 0usize..3,
        policy_sel in 0usize..2,
        prefill_sel in 0usize..2,
        chunk_tokens in 1usize..13,
        budget in 1usize..25,
        rate in 0.2f64..3.0,
        num_requests in 1usize..7,
        seed in 0u64..1_000,
        heterogeneous in 0usize..2,
    ) {
        let mut sim = ServingSimulation::new(
            template(),
            arrival_of(arrival_sel, rate),
            num_requests,
        )
        .with_arrival_seed(seed)
        .with_policy(policy_of(policy_sel))
        .with_prefill(prefill_of(prefill_sel, chunk_tokens, budget));
        if heterogeneous == 1 {
            sim = sim.with_lengths(LengthDistribution::Uniform {
                prompt_min: 8,
                prompt_max: 40,
                gen_min: 1,
                gen_max: 10,
            });
        }
        let outcome = simulate(
            SystemKind::hermes_base(),
            &SystemConfig::paper_default(),
            &sim,
        )
        .unwrap();

        prop_assert_eq!(outcome.report.completed, num_requests);
        prop_assert_eq!(outcome.records.len(), num_requests);
        let expected_tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
        prop_assert_eq!(outcome.report.generated_tokens, expected_tokens);
        for r in &outcome.records {
            prop_assert!(r.arrival <= r.admitted, "request {}: arrival {} > admitted {}", r.id, r.arrival, r.admitted);
            prop_assert!(r.admitted < r.first_token, "request {}: admitted {} >= first_token {}", r.id, r.admitted, r.first_token);
            prop_assert!(r.first_token <= r.completed, "request {}: first_token {} > completed {}", r.id, r.first_token, r.completed);
            prop_assert!(r.completed <= outcome.report.makespan + 1e-12);
        }
    }

    /// Offering more requests (a strictly larger workload on an identical
    /// arrival prefix — Poisson times for `n` and `n + 2` share their first
    /// `n` draws from the seeded stream) never shrinks the makespan.
    #[test]
    fn makespan_is_monotone_in_offered_load(
        rate in 0.3f64..2.0,
        seed in 0u64..500,
        num_requests in 2usize..6,
        policy_sel in 0usize..2,
        prefill_sel in 0usize..2,
    ) {
        let config = SystemConfig::paper_default();
        let at = |n: usize| {
            let sim = ServingSimulation::new(
                template(),
                ArrivalProcess::Poisson { rate },
                n,
            )
            .with_arrival_seed(seed)
            .with_policy(policy_of(policy_sel))
            .with_prefill(prefill_of(prefill_sel, 8, 8));
            simulate(SystemKind::hermes_base(), &config, &sim)
                .unwrap()
                .report
                .makespan
        };
        let base = at(num_requests);
        let more = at(num_requests + 2);
        prop_assert!(
            more >= base - 1e-9,
            "makespan shrank from {base} to {more} when offering 2 more requests"
        );
    }
}
