//! Property tests of the serving simulator's lifecycle invariants, across
//! batching policies, prefill policies, arrival processes, chunk sizes and
//! length distributions.

use proptest::prelude::*;

use hermes::core::{
    ArrivalProcess, LengthDistribution, PrioritySpec, RequestClass, SystemConfig, SystemKind,
    Workload,
};
use hermes::model::ModelId;
use hermes::serve::{
    request_kv_bytes, simulate, AdmissionConfig, BatchingPolicy, PreemptionPolicy, PrefillPolicy,
    SchedulingPolicy, ServingSimulation,
};

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 24;
    w.gen_len = 6;
    w
}

fn arrival_of(selector: usize, rate: f64) -> ArrivalProcess {
    match selector {
        0 => ArrivalProcess::AllAtOnce,
        1 => ArrivalProcess::Poisson { rate },
        _ => ArrivalProcess::Bursty { rate, burst: 3 },
    }
}

fn prefill_of(selector: usize, chunk_tokens: usize, budget: usize) -> PrefillPolicy {
    if selector == 0 {
        PrefillPolicy::StallTheWorld
    } else {
        PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        }
    }
}

fn policy_of(selector: usize) -> BatchingPolicy {
    if selector == 0 {
        BatchingPolicy::Continuous
    } else {
        BatchingPolicy::Static
    }
}

proptest! {
    // Every case runs full engine simulations; keep the budget moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every sampled scenario: each record's lifecycle is ordered
    /// (arrival ≤ admitted < first token ≤ completed ≤ makespan), every
    /// offered request completes, and the report's token count equals the
    /// sum of per-request generation lengths.
    #[test]
    fn lifecycle_invariants_hold_across_scenarios(
        arrival_sel in 0usize..3,
        policy_sel in 0usize..2,
        prefill_sel in 0usize..2,
        chunk_tokens in 1usize..13,
        budget in 1usize..25,
        rate in 0.2f64..3.0,
        num_requests in 1usize..7,
        seed in 0u64..1_000,
        heterogeneous in 0usize..2,
    ) {
        let mut sim = ServingSimulation::new(
            template(),
            arrival_of(arrival_sel, rate),
            num_requests,
        )
        .with_arrival_seed(seed)
        .with_policy(policy_of(policy_sel))
        .with_prefill(prefill_of(prefill_sel, chunk_tokens, budget));
        if heterogeneous == 1 {
            sim = sim.with_lengths(LengthDistribution::Uniform {
                prompt_min: 8,
                prompt_max: 40,
                gen_min: 1,
                gen_max: 10,
            });
        }
        let outcome = simulate(
            SystemKind::hermes_base(),
            &SystemConfig::paper_default(),
            &sim,
        )
        .unwrap();

        prop_assert_eq!(outcome.report.completed, num_requests);
        prop_assert_eq!(outcome.records.len(), num_requests);
        let expected_tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
        prop_assert_eq!(outcome.report.generated_tokens, expected_tokens);
        for r in &outcome.records {
            prop_assert!(r.arrival <= r.admitted, "request {}: arrival {} > admitted {}", r.id, r.arrival, r.admitted);
            prop_assert!(r.admitted < r.first_token, "request {}: admitted {} >= first_token {}", r.id, r.admitted, r.first_token);
            prop_assert!(r.first_token <= r.completed, "request {}: first_token {} > completed {}", r.id, r.first_token, r.completed);
            prop_assert!(r.completed <= outcome.report.makespan + 1e-12);
        }
    }

    /// Preemption invariants: under `EvictAndRefill` with priority or EDF
    /// scheduling and a tight KV cap, every offered request still completes
    /// (preempted ones included), token conservation holds exactly (restart
    /// with recompute re-prices prefill, never decode), each record's
    /// lifecycle stays ordered, and within a priority tier first admissions
    /// preserve FCFS (arrival) order.
    #[test]
    fn preemption_invariants_hold_under_evict_and_refill(
        arrival_sel in 0usize..3,
        prefill_sel in 0usize..2,
        chunk_tokens in 1usize..13,
        budget in 1usize..25,
        rate in 0.2f64..3.0,
        num_requests in 1usize..7,
        seed in 0u64..1_000,
        seats in 1u64..4,
        edf in 0usize..2,
        heterogeneous in 0usize..2,
    ) {
        let scheduling = if edf == 1 { SchedulingPolicy::Edf } else { SchedulingPolicy::Priority };
        // Interactive tier-0 requests with a TTFT deadline interleaved with
        // best-effort tier-2 bulk (deadlines grow with arrival order, so
        // EDF's per-tier order is FCFS too).
        let classes = PrioritySpec::Cycle {
            classes: vec![
                RequestClass::new(0).with_ttft_deadline(2.0),
                RequestClass::new(2),
            ],
        };
        // The cap fits `seats` copies of the largest possible request, so
        // the scenario is always feasible but preemption-prone.
        let worst_kv = request_kv_bytes(&template(), 40, 10);
        let mut sim = ServingSimulation::new(
            template(),
            arrival_of(arrival_sel, rate),
            num_requests,
        )
        .with_arrival_seed(seed)
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(worst_kv * seats))
        .with_classes(classes)
        .with_scheduling(scheduling)
        .with_preemption(PreemptionPolicy::EvictAndRefill)
        .with_prefill(prefill_of(prefill_sel, chunk_tokens, budget));
        if heterogeneous == 1 {
            sim = sim.with_lengths(LengthDistribution::Uniform {
                prompt_min: 8,
                prompt_max: 40,
                gen_min: 1,
                gen_max: 10,
            });
        }
        let outcome = simulate(
            SystemKind::hermes_base(),
            &SystemConfig::paper_default(),
            &sim,
        )
        .unwrap();

        // Everyone completes — preemption must never starve a request.
        prop_assert_eq!(outcome.report.completed, num_requests);
        // Token conservation: every token generated exactly once, however
        // often its request was evicted and resumed.
        let expected_tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
        prop_assert_eq!(outcome.report.generated_tokens, expected_tokens);
        let record_preemptions: usize = outcome.records.iter().map(|r| r.preemptions).sum();
        prop_assert_eq!(outcome.report.preemptions, record_preemptions);
        for r in &outcome.records {
            prop_assert!(r.arrival <= r.admitted, "request {}: arrival {} > admitted {}", r.id, r.arrival, r.admitted);
            prop_assert!(r.admitted < r.first_token, "request {}: admitted {} >= first_token {}", r.id, r.admitted, r.first_token);
            prop_assert!(r.first_token <= r.completed, "request {}: first_token {} > completed {}", r.id, r.first_token, r.completed);
            prop_assert!(r.completed <= outcome.report.makespan + 1e-12);
        }
        // Per-class FCFS: within a tier, first admissions follow arrival
        // order (preemption requeues never reorder a tier).
        for tier in [0u8, 2u8] {
            let mut last = f64::NEG_INFINITY;
            for r in outcome.records.iter().filter(|r| r.class.priority == tier) {
                prop_assert!(
                    r.admitted >= last - 1e-12,
                    "tier {}: request {} first-admitted at {} after a later peer at {}",
                    tier, r.id, r.admitted, last
                );
                last = r.admitted;
            }
        }
        // The per-class report partitions the offered requests.
        let class_total: usize = outcome.report.per_class.iter().map(|c| c.num_requests).sum();
        prop_assert_eq!(class_total, num_requests);
    }

    /// Offering more requests (a strictly larger workload on an identical
    /// arrival prefix — Poisson times for `n` and `n + 2` share their first
    /// `n` draws from the seeded stream) never shrinks the makespan.
    #[test]
    fn makespan_is_monotone_in_offered_load(
        rate in 0.3f64..2.0,
        seed in 0u64..500,
        num_requests in 2usize..6,
        policy_sel in 0usize..2,
        prefill_sel in 0usize..2,
    ) {
        let config = SystemConfig::paper_default();
        let at = |n: usize| {
            let sim = ServingSimulation::new(
                template(),
                ArrivalProcess::Poisson { rate },
                n,
            )
            .with_arrival_seed(seed)
            .with_policy(policy_of(policy_sel))
            .with_prefill(prefill_of(prefill_sel, 8, 8));
            simulate(SystemKind::hermes_base(), &config, &sim)
                .unwrap()
                .report
                .makespan
        };
        let base = at(num_requests);
        let more = at(num_requests + 2);
        prop_assert!(
            more >= base - 1e-9,
            "makespan shrank from {base} to {more} when offering 2 more requests"
        );
    }
}
