//! Integration tests of the scheduling stack: offline partition, online
//! adjustment, window-based remapping, and their end-to-end effect
//! (the behaviour behind Fig. 13).

use hermes_core::{HermesOptions, HermesSystem, SystemConfig, Workload};
use hermes_model::{Block, ModelConfig, ModelId};
use hermes_predictor::{HermesPredictor, PredictorConfig};
use hermes_scheduler::{
    NeuronAssignment, OfflinePartitioner, OnlineAdjuster, PartitionGoal, PartitionInput, Placement,
    WindowRemapper,
};
use hermes_sparsity::{NeuronFrequencies, SparsityProfile, TraceGenerator};

fn tiny_model() -> ModelConfig {
    let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
    cfg.num_layers = 3;
    cfg.hidden_size = 64;
    cfg.ffn_hidden = 192;
    cfg.num_heads = 8;
    cfg.num_kv_heads = 8;
    cfg
}

#[test]
fn offline_partition_feeds_online_adjustment_and_remapping() {
    // Exercise the full per-neuron scheduling path end to end on a small
    // model: profile -> offline partition -> predictor-driven adjustment ->
    // window-based remapping, checking the invariants at every step.
    let cfg = tiny_model();
    let profile = SparsityProfile::for_model(&cfg);
    let mut gen = TraceGenerator::new(&cfg, &profile, 77);
    let prefill = gen.generate(24);
    let freqs = NeuronFrequencies::measure(&prefill);

    let gpu_budget = cfg.memory_footprint().sparse_bytes() / 5;
    let partitioner = OfflinePartitioner::new(PartitionInput {
        gpu_budget_bytes: gpu_budget,
        num_dimms: 4,
        dimm_capacity_bytes: u64::MAX / 8,
        gpu_time_per_neuron: 1e-8,
        dimm_time_per_neuron: 4e-7,
        sync_time: 1e-7,
    });
    let mut assignment = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
    assignment.validate(&cfg, gpu_budget, u64::MAX).unwrap();
    let initial_gpu_bytes = assignment.gpu_bytes(&cfg);
    assert!(initial_gpu_bytes > 0);

    // Online adjustment keeps the byte budget while following the predictor.
    let mut predictor = HermesPredictor::new(&cfg, PredictorConfig::default());
    predictor.initialize_from_prefill(&prefill);
    predictor.correlation_mut().sample_from_trace(&prefill, 8);
    let adjuster = OnlineAdjuster::new(u64::MAX);
    let mut remapper = WindowRemapper::new(&cfg, 5);
    let mut total_moves = 0usize;
    for _ in 0..10 {
        let tok = gen.next_token();
        predictor.observe(&tok);
        for layer in 0..cfg.num_layers {
            let plan = adjuster.adjust_layer(&cfg, &predictor, &mut assignment, layer);
            assert_eq!(plan.promoted.len(), plan.demoted.len());
        }
        if remapper.record_token(&tok) {
            let plan = remapper.rebalance(&cfg, &mut assignment);
            total_moves += plan.moves.len();
        }
    }
    assert_eq!(assignment.gpu_bytes(&cfg), initial_gpu_bytes);
    assignment.validate(&cfg, gpu_budget, u64::MAX).unwrap();
    // Remapping only touches cold neurons; every neuron stays accounted for.
    for layer in 0..cfg.num_layers {
        for block in Block::ALL {
            let n = cfg.neurons_per_layer(block);
            let counted = assignment.gpu_set(layer, block).count_ones()
                + (0..4)
                    .map(|d| assignment.dimm_set(layer, block, d).count_ones())
                    .sum::<usize>();
            assert_eq!(counted, n);
        }
    }
    let _ = total_moves;
}

#[test]
fn remapping_reduces_dimm_load_imbalance_on_contiguous_layouts() {
    let cfg = tiny_model();
    let profile = SparsityProfile::for_model(&cfg);
    let mut gen = TraceGenerator::new(&cfg, &profile, 5);
    // Contiguous placement: the layout that suffers cluster-aligned skew.
    let mut assignment = NeuronAssignment::all_on_dimm_zero(&cfg, 4);
    for layer in 0..cfg.num_layers {
        for block in Block::ALL {
            let n = cfg.neurons_per_layer(block);
            for i in 0..n {
                let d = (i * 4 / n).min(3);
                assignment.set_placement(layer, block, i, Placement::Dimm(d as u16));
            }
        }
    }
    let mut remapper = WindowRemapper::new(&cfg, 5);
    for _ in 0..5 {
        remapper.record_token(&gen.next_token());
    }
    let before =
        hermes_scheduler::remap::imbalance(&remapper.dimm_loads(&assignment, 2, Block::Mlp));
    let probe = remapper.clone();
    remapper.rebalance(&cfg, &mut assignment);
    let after = hermes_scheduler::remap::imbalance(&probe.dimm_loads(&assignment, 2, Block::Mlp));
    assert!(after <= before, "imbalance {before:.3} -> {after:.3}");
}

#[test]
fn full_system_ablation_ordering() {
    // On a memory-constrained GPU the scheduling features stack up the same
    // way the paper's Fig. 13 reports.
    let mut small_gpu = hermes_gpu::GpuDevice::tesla_t4();
    small_gpu.memory_bytes = 8 * hermes_model::GIB;
    let config = SystemConfig::paper_default().with_gpu(small_gpu);
    let mut workload = Workload::paper_default(ModelId::Opt13B);
    workload.gen_len = 10;
    workload.prompt_len = 32;
    let fc = |options: HermesOptions| {
        HermesSystem::new(workload.clone(), config.clone(), options)
            .run()
            .unwrap()
            .breakdown
            .fc
    };
    let random = fc(HermesOptions::random_mapping());
    let partition = fc(HermesOptions::partition_only());
    let adjustment = fc(HermesOptions::adjustment_only());
    let full = fc(HermesOptions::full());
    assert!(partition <= random);
    assert!(adjustment <= partition);
    assert!(full <= adjustment * 1.02);
    // The combined gain is substantial (paper: ~2.8x from random to full).
    assert!(random / full > 1.2, "total gain {:.2}", random / full);
}
