//! Acceptance tests of multi-replica cluster serving: KV-aware routing on a
//! heterogeneous GPU + NDP fleet, scripted drain/fail/recover with
//! deterministic re-dispatch, and upfront fleet validation.

use hermes::core::{ArrivalProcess, HermesError, SystemConfig, SystemKind, Workload};
use hermes::model::ModelId;
use hermes::serve::{
    request_kv_bytes, simulate_cluster, AdmissionConfig, ClusterSimulation, PreemptionPolicy,
    ReplicaEvent, ReplicaSpec, RoutingPolicy, ServingSimulation,
};

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 24;
    w.gen_len = 6;
    w
}

/// A heterogeneous fleet under skewed bursty load: two TensorRT GPU boxes
/// with a deep KV budget next to four NDP boxes with tight budgets. One NDP
/// box drains mid-run and recovers later.
fn heterogeneous_fleet(routing: RoutingPolicy) -> ClusterSimulation {
    let scenario = ServingSimulation::new(
        template(),
        ArrivalProcess::Bursty {
            rate: 30.0,
            burst: 12,
        },
        96,
    )
    .with_arrival_seed(7);
    let worst_kv = request_kv_bytes(&template(), 24, 6);
    let gpu_sim = scenario
        .clone()
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(worst_kv * 64));
    let ndp_sim = scenario
        .clone()
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(worst_kv * 2));
    let config = SystemConfig::paper_default();
    let mut replicas = Vec::new();
    for i in 0..2 {
        replicas.push(ReplicaSpec::new(
            format!("gpu-{i}"),
            SystemKind::TensorRtLlm { num_gpus: 1 },
            config.clone(),
            gpu_sim.clone(),
        ));
    }
    for i in 0..4 {
        replicas.push(ReplicaSpec::new(
            format!("ndp-{i}"),
            SystemKind::hermes_base(),
            config.clone(),
            ndp_sim.clone(),
        ));
    }
    ClusterSimulation::new(scenario, replicas, routing).with_events(vec![
        ReplicaEvent::Drain {
            replica: 4,
            at: 1.0,
        },
        ReplicaEvent::Recover {
            replica: 4,
            at: 2.5,
        },
    ])
}

/// KV-pressure routing strictly beats round-robin on fleet-wide p95 TTFT on
/// the heterogeneous fleet: round-robin keeps handing bursts to the
/// two-seat NDP boxes where they queue, while KV-pressure steers them to
/// whichever box has free KV budget. Every request completes under both
/// policies, across the scripted drain.
#[test]
fn kv_pressure_routing_beats_round_robin_on_heterogeneous_fleet() {
    let rr = simulate_cluster(&heterogeneous_fleet(RoutingPolicy::RoundRobin)).unwrap();
    let kv = simulate_cluster(&heterogeneous_fleet(RoutingPolicy::KvPressure)).unwrap();

    for outcome in [&rr, &kv] {
        assert_eq!(outcome.report.completed, 96);
        assert_eq!(outcome.report.num_requests, 96);
        assert_eq!(outcome.records.len(), 96);
        let ids: Vec<usize> = outcome.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..96).collect::<Vec<_>>());
        // The drained box handed back its queued-but-never-admitted work.
        let redispatched: usize = outcome.report.replicas.iter().map(|r| r.redispatched).sum();
        assert_eq!(outcome.report.redispatches, redispatched);
    }
    assert_eq!(rr.report.routing, "round-robin");
    assert_eq!(kv.report.routing, "kv-pressure");

    assert!(
        kv.report.ttft.p95 < rr.report.ttft.p95,
        "kv-pressure p95 TTFT {} should strictly beat round-robin {}",
        kv.report.ttft.p95,
        rr.report.ttft.p95
    );
    // KV-aware routing also spreads token work less unevenly than a blind
    // cycle across boxes of very different capacity... but at minimum the
    // imbalance statistic must be populated and finite for both.
    assert!(rr.report.load_imbalance.is_finite());
    assert!(kv.report.load_imbalance.is_finite());
}

/// A replica failure mid-run hands *everything* back — queued, prefilling,
/// decoding — and the survivors finish it all. Decode progress is restarted
/// with recompute, so fleet token totals still match the per-record sum.
#[test]
fn replica_failure_redispatches_and_everything_completes() {
    let scenario = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 12.0 }, 40)
        .with_arrival_seed(11);
    let cluster = ClusterSimulation::uniform(
        scenario,
        SystemKind::hermes_base(),
        &SystemConfig::paper_default(),
        3,
        RoutingPolicy::LeastOutstanding,
    )
    .with_events(vec![
        ReplicaEvent::Fail {
            replica: 0,
            at: 0.8,
        },
        ReplicaEvent::Recover {
            replica: 0,
            at: 6.0,
        },
    ]);
    let outcome = simulate_cluster(&cluster).unwrap();

    assert_eq!(outcome.report.completed, 40);
    assert_eq!(outcome.records.len(), 40);
    let expected_tokens: usize = outcome.records.iter().map(|r| r.gen_len).sum();
    assert_eq!(outcome.report.generated_tokens, expected_tokens);
    // The failure struck with work in flight: someone re-dispatched.
    let redispatched: usize = outcome.report.replicas.iter().map(|r| r.redispatched).sum();
    assert!(
        redispatched > 0,
        "the failure at t=0.8 should have handed work back"
    );
    // Re-dispatched records keep their original arrival stamps.
    for r in &outcome.records {
        assert!(r.arrival <= r.admitted);
        assert!(r.completed <= outcome.report.makespan + 1e-12);
    }
}

/// Fleet validation fails upfront, before any replica advances: paged KV
/// accounting without a preemption policy is rejected for the cluster entry
/// point exactly as for the single-replica one.
#[test]
fn cluster_validation_rejects_paged_without_preemption_upfront() {
    let bad = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4).with_admission(
        AdmissionConfig::unlimited()
            .with_kv_memory_bytes(request_kv_bytes(&template(), 24, 6) * 4)
            .with_paged_kv(8),
    );
    let cluster = ClusterSimulation::uniform(
        bad.clone(),
        SystemKind::hermes_base(),
        &SystemConfig::paper_default(),
        2,
        RoutingPolicy::RoundRobin,
    );
    let err = simulate_cluster(&cluster).unwrap_err();
    assert!(matches!(err, HermesError::InvalidConfig(_)));
    // Same upfront rejection as the single-replica path.
    let single = hermes::serve::simulate(
        SystemKind::hermes_base(),
        &SystemConfig::paper_default(),
        &bad,
    )
    .unwrap_err();
    assert_eq!(format!("{err}"), format!("{single}"));

    // An event naming a replica outside the fleet is also rejected upfront.
    let good = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
    let cluster = ClusterSimulation::uniform(
        good,
        SystemKind::hermes_base(),
        &SystemConfig::paper_default(),
        2,
        RoutingPolicy::RoundRobin,
    )
    .with_events(vec![ReplicaEvent::Drain {
        replica: 5,
        at: 1.0,
    }]);
    let err = simulate_cluster(&cluster).unwrap_err();
    assert!(matches!(err, HermesError::InvalidConfig(_)));

    // A fixed-preemption paged fleet passes the same validation.
    let paged_ok = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4)
        .with_admission(
            AdmissionConfig::unlimited()
                .with_kv_memory_bytes(request_kv_bytes(&template(), 24, 6) * 4)
                .with_paged_kv(8),
        )
        .with_preemption(PreemptionPolicy::EvictAndRefill);
    let cluster = ClusterSimulation::uniform(
        paged_ok,
        SystemKind::hermes_base(),
        &SystemConfig::paper_default(),
        2,
        RoutingPolicy::PrefixAffinity,
    );
    let outcome = simulate_cluster(&cluster).unwrap();
    assert_eq!(outcome.report.completed, 4);
}
