//! Cross-crate integration tests: end-to-end behaviour of every inference
//! system on realistic (but shortened) workloads.

use hermes_core::{try_run_system, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn quick(model: ModelId, batch: usize) -> Workload {
    let mut w = Workload::paper_default(model).with_batch(batch);
    w.gen_len = 12;
    w.prompt_len = 32;
    w
}

#[test]
fn paper_headline_ordering_opt66b() {
    // Fig. 9: Hermes > Hermes-host > Deja Vu > FlexGen > Accelerate.
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt66B, 1);
    // Compare decode throughput: with the shortened generation length used
    // in tests the end-to-end metric is dominated by the (identical) prefill.
    let tps = |kind| {
        try_run_system(kind, &w, &config)
            .unwrap()
            .decode_tokens_per_second()
    };
    let accelerate = tps(SystemKind::Accelerate);
    let flexgen = tps(SystemKind::FlexGen);
    let dejavu = tps(SystemKind::DejaVu);
    let host = tps(SystemKind::hermes_host());
    let hermes = tps(SystemKind::hermes());
    assert!(flexgen > accelerate);
    assert!(dejavu > flexgen);
    assert!(host > dejavu);
    assert!(hermes > host);
    // The speedups over pure offloading are orders of magnitude (the paper
    // reports 148.98x over FlexGen and 75.24x over Deja Vu on average).
    assert!(
        hermes / flexgen > 20.0,
        "vs FlexGen {:.1}x",
        hermes / flexgen
    );
    assert!(hermes / dejavu > 10.0, "vs Deja Vu {:.1}x", hermes / dejavu);
}

#[test]
fn hermes_runs_llama70b_on_consumer_hardware() {
    // The headline capability: LLaMA2-70B on one RTX 4090 + 8 NDP-DIMMs at
    // interactive rates (the paper reports 13.75 tokens/s end to end).
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Llama2_70B, 1);
    let report = try_run_system(SystemKind::hermes(), &w, &config).unwrap();
    let decode_tps = report.decode_tokens_per_second();
    assert!(
        (4.0..80.0).contains(&decode_tps),
        "decode throughput {decode_tps:.2} tokens/s"
    );
    // The hot set must fit in the 24 GB GPU alongside the dense weights.
    assert!(report.gpu_weight_bytes <= config.gpu.memory_bytes);
}

#[test]
fn sparsity_and_ndp_both_matter() {
    // Fig. 10: Hermes > Hermes-base (sparsity matters) and
    // Hermes > Hermes-host (NDP-DIMMs matter) on large models.
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Falcon40B, 1);
    let hermes = try_run_system(SystemKind::hermes(), &w, &config).unwrap();
    let base = try_run_system(SystemKind::hermes_base(), &w, &config).unwrap();
    let host = try_run_system(SystemKind::hermes_host(), &w, &config).unwrap();
    assert!(hermes.decode_tokens_per_second() > 1.5 * base.decode_tokens_per_second());
    assert!(hermes.decode_tokens_per_second() > 1.3 * host.decode_tokens_per_second());
}

#[test]
fn communication_dominates_offloading_baselines() {
    // Fig. 12a: PCIe communication is ~89% of Deja Vu's runtime.
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Opt66B, 1);
    let report = try_run_system(SystemKind::DejaVu, &w, &config).unwrap();
    let share = report.breakdown.communication / report.breakdown.decode_total();
    assert!(share > 0.6, "communication share {share:.2}");
    // Hermes eliminates almost all of it.
    let hermes = try_run_system(SystemKind::hermes(), &w, &config).unwrap();
    let hermes_share = hermes.breakdown.communication / hermes.breakdown.decode_total();
    assert!(
        hermes_share < 0.1,
        "Hermes communication share {hermes_share:.2}"
    );
}

#[test]
fn unsupported_combinations_are_reported_not_panicking() {
    let config = SystemConfig::paper_default().with_num_dimms(1);
    let w = quick(ModelId::Llama2_70B, 1);
    assert!(try_run_system(SystemKind::hermes(), &w, &config).is_err());
    let config = SystemConfig::paper_default();
    assert!(try_run_system(SystemKind::FlexGen, &quick(ModelId::Falcon40B, 1), &config).is_err());
}

#[test]
fn tensorrt_reference_outperforms_hermes_but_costs_far_more() {
    // Fig. 17: TensorRT-LLM on 5x A100 is faster, Hermes retains a large
    // fraction of its efficiency at a ~5% hardware budget.
    let config = SystemConfig::paper_default();
    let w = quick(ModelId::Llama2_70B, 1);
    let trt = try_run_system(SystemKind::TensorRtLlm { num_gpus: 5 }, &w, &config).unwrap();
    let hermes = try_run_system(SystemKind::hermes(), &w, &config).unwrap();
    assert!(trt.decode_tokens_per_second() > hermes.decode_tokens_per_second());
    let efficiency = hermes.decode_tokens_per_second() / trt.decode_tokens_per_second();
    assert!(efficiency > 0.15, "efficiency {efficiency:.2}");
}
