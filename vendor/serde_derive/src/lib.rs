//! Offline stub of `serde_derive` — real derives for the sibling `serde`
//! stub's `Value` data model.
//!
//! The build environment has no crates.io access (so no `syn`/`quote`
//! either); the derives parse the item with a small hand-rolled token
//! cursor covering exactly the shapes this workspace uses: named structs,
//! tuple/unit structs, and enums with unit, tuple and struct variants
//! (no generics, no `#[serde(...)]` attributes). The generated impls
//! convert to/from `serde::Value`; the encoding matches upstream serde's
//! externally-tagged defaults, so swapping these stubs for the registry
//! crates keeps every serialized artifact shape-compatible.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Cursor = Peekable<proc_macro::token_stream::IntoIter>;

/// The shape of one enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// The parsed item a derive runs on.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

fn skip_attributes(it: &mut Cursor) {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        it.next(); // the bracketed attribute body
    }
}

fn skip_visibility(it: &mut Cursor) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next(); // pub(crate) / pub(super) scope
        }
    }
}

/// Consume tokens of a type (or discriminant) until a comma at angle-bracket
/// depth zero, consuming the comma as well.
fn skip_until_comma(it: &mut Cursor) {
    let mut depth = 0i32;
    for token in it.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if pending {
                        fields += 1;
                        pending = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        fields += 1;
    }
    fields
}

/// Parse the field names of a named-struct / struct-variant body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it: Cursor = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
                }
                skip_until_comma(&mut it);
            }
            Some(other) => panic!("serde_derive stub: unexpected token in fields: {other}"),
        }
    }
    fields
}

/// Parse the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let mut it: Cursor = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive stub: unexpected token in enum: {other}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                it.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        variants.push((name, shape));
        skip_until_comma(&mut it); // trailing comma / explicit discriminant
    }
    variants
}

/// Parse the whole derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let mut it: Cursor = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (derive on `{name}`)");
    }
    match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive stub: unexpected struct body: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive stub: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

/// Derive `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            // Newtype structs serialize transparently, like upstream serde.
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(variant, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{variant} => \
                         ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{variant}(__f0) => ::serde::Value::Map(vec![(\
                         ::std::string::String::from(\"{variant}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Shape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: String = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{variant}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{variant}\"), \
                             ::serde::Value::Seq(vec![{items}]))]),",
                            binders.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{variant} {{ {} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{variant}\"), \
                             ::serde::Value::Map(vec![{entries}]))]),",
                            fields.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (stub data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__value, \"{f}\")?,"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_value(__value)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __value {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}({inits})),\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::unexpected(\"{name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(_: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, shape)| matches!(shape, Shape::Unit))
                .map(|(variant, _)| {
                    format!("\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),")
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|(variant, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Tuple(1) => Some(format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}(\
                         ::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    Shape::Tuple(arity) => {
                        let inits: String = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                            .collect();
                        Some(format!(
                            "\"{variant}\" => match __payload {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {arity} => \
                                     ::std::result::Result::Ok({name}::{variant}({inits})),\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError::unexpected(\
                                     \"{name}::{variant}\", __other)),\n\
                             }},"
                        ))
                    }
                    Shape::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::from_field(__payload, \"{f}\")?,"))
                            .collect();
                        Some(format!(
                            "\"{variant}\" => \
                             ::std::result::Result::Ok({name}::{variant} {{ {inits} }}),"
                        ))
                    }
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__variant) => match __variant.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__variant, __payload) = &__entries[0];\n\
                                 match __variant.as_str() {{\n\
                                     {payload_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\
                                         \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::unexpected(\"{name} variant\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
