//! Offline stub of `serde_derive`.
//!
//! The build environment has no crates.io access, and the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as inert annotations (no serialization
//! is performed anywhere). These derives therefore expand to nothing; the
//! matching marker traits live in the sibling `serde` stub crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
