//! Offline stub of `criterion`.
//!
//! Provides the API subset the workspace's `harness = false` benches use:
//! `Criterion::{benchmark_group, bench_function}`, benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Instead of upstream's statistical analysis it reports the median
//! wall-clock time per iteration on stdout, which keeps `cargo bench` useful
//! for coarse regression spotting without any external dependencies.
//!
//! Like upstream, `cargo bench -- --test` runs in *smoke mode*: every
//! benchmark routine executes exactly once, untimed, so CI can prove the
//! benches still run without paying for measurement iterations.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Whether the process was invoked in smoke mode (`cargo bench -- --test`).
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Runs the measured closure and accumulates per-iteration timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Smoke mode: prove the routine runs, measure nothing.
        if self.smoke {
            black_box(routine());
            return;
        }
        // One warm-up call, then `sample_size` timed iterations.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: Option<&str>, id: &str, samples: &mut [Duration], smoke: bool) {
    let mut label = String::new();
    if let Some(group) = group {
        let _ = write!(label, "{group}/");
    }
    let _ = write!(label, "{id}");
    if smoke {
        println!("bench {label:<60} smoke ok (1 untimed iteration)");
        return;
    }
    if samples.is_empty() {
        println!("bench {label:<60} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "bench {label:<60} median {median:>12?} (min {min:?}, max {max:?}, n={n})",
        n = samples.len()
    );
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<O, F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> O,
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            smoke: self.smoke,
        };
        f(&mut bencher);
        report(Some(&self.name), &id.id, &mut bencher.samples, self.smoke);
        self
    }

    pub fn bench_with_input<I: ?Sized, O, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I) -> O,
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            smoke: self.smoke,
        };
        f(&mut bencher, input);
        report(Some(&self.name), &id.id, &mut bencher.samples, self.smoke);
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench driver, one per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            smoke: smoke_mode(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let smoke = self.smoke;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            smoke,
            _criterion: self,
        }
    }

    pub fn bench_function<O, F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> O,
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            smoke: self.smoke,
        };
        f(&mut bencher);
        report(None, id, &mut bencher.samples, self.smoke);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(black_box(b)))
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| sum_to(1000)));
        group.bench_with_input(BenchmarkId::new("sum", 2000), &2000u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
