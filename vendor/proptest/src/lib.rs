//! Offline stub of `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro (with an
//! optional `#![proptest_config(...)]` inner attribute), range strategies over
//! integers and floats, `proptest::collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`. Instead of upstream's shrinking search,
//! each property is checked against `cases` deterministic pseudo-random
//! samples; a failing sample panics with the ordinary assert message, which is
//! enough signal for this simulation codebase.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, SampleUniform};
    use std::ops::Range;

    /// A value generator. Upstream proptest strategies build shrinkable value
    /// trees; this stub only samples.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Strategy for `Vec`s with an element strategy and a length range.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Runner configuration. Only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

// Re-export for the generated code in `proptest!`, so user crates don't need
// their own `rand` dependency just to expand the macro.
#[doc(hidden)]
pub use rand as __rand;

pub mod prelude {
    // Mirror upstream's `pub use crate as prop;` so `prop::collection::vec`
    // works with just the prelude imported.
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed so failures reproduce.
                let seed = {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                    })
                };
                let mut rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg = ($strategy).sample(&mut rng);)+
                        $body
                    };
                    // Surface which case number failed (the stub cannot shrink).
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest stub: property {} failed on case {}/{}",
                            stringify!($name),
                            case + 1,
                            config.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..50, f in 0.1f64..0.9) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.1..0.9).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0i64..100) {
            prop_assert_eq!(x - x, 0);
        }
    }
}
