//! Offline stub of `serde_json`: a JSON front end over the vendored `serde`
//! stub's [`Value`] data model.
//!
//! Implements the entry points this workspace uses — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — with serde_json-compatible
//! encoding conventions: externally-tagged enums, non-finite floats as
//! `null`, and shortest-round-trip float formatting. Swap this crate for the
//! registry `serde_json` (together with the sibling `serde`/`serde_derive`
//! stubs) when building with network access.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) if !x.is_finite() => out.push_str("null"),
        // `{:?}` is Rust's shortest round-trip float formatting; it always
        // keeps a `.0` on integral values, so floats parse back as floats.
        Value::F64(x) => out.push_str(&format!("{x:?}")),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_compound(out, '[', ']', items.len(), indent, |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Map(entries) => {
            write_compound(out, '{', '}', entries.len(), indent, |out, i, ind| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, ind);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, inner);
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

/// Serialize a value to a compact JSON string.
///
/// # Errors
///
/// Infallible with the stub data model; the `Result` mirrors the upstream
/// signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Infallible with the stub data model; the `Result` mirrors the upstream
/// signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Basic-multilingual-plane escapes only; the
                            // writer never emits surrogate pairs.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document into the stub data model.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing input.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Deserialize a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&(-3i64)).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<Vec<u64>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\n\"quoted\" \\ tab\t unicode π \u{1}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }
}
