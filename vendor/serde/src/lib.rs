//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and report
//! types but never serializes anything (there is no `serde_json` or similar
//! in the tree). This stub keeps those derives compiling without network
//! access: the derive macros are no-ops and the traits are blanket-implemented
//! so any future `T: Serialize` bound is also satisfied.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
