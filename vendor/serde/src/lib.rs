//! Offline stub of `serde` — now a *working* minimal implementation.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of serde the workspace actually exercises: `Serialize` /
//! `Deserialize` traits driven through a self-describing [`Value`] data
//! model, real derive macros (see the sibling `serde_derive` stub) and a
//! JSON front end (the sibling `serde_json` stub). User code only touches
//! the same surface as upstream serde — `#[derive(Serialize, Deserialize)]`
//! plus `serde_json::{to_string, from_str}` — so swapping these vendored
//! crates for the registry versions is a drop-in change; the internal
//! `Value`-based plumbing is an implementation detail of the stubs.
//!
//! Enum representation matches serde's externally-tagged default: unit
//! variants serialize as a bare string, newtype/tuple/struct variants as a
//! single-entry map keyed by the variant name.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data model every `Serialize`/`Deserialize` impl of
/// this stub goes through (a superset of the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, array, tuple, tuple variant payload).
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order (struct fields, enum
    /// variant wrappers).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error of the stub data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "found the wrong shape" error.
    pub fn unexpected(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {found:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the self-describing data model.
    fn to_value(&self) -> Value;
}

/// Types that can deserialize themselves from a [`Value`].
///
/// The lifetime parameter mirrors upstream serde's API surface (the stub
/// always deserializes from an owned `Value`, so it is unused).
pub trait Deserialize<'de>: Sized {
    /// Convert from the self-describing data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Read one named field of a [`Value::Map`] — the helper the derived
/// `Deserialize` impls call per struct field.
pub fn from_field<'de, T: Deserialize<'de>>(value: &Value, field: &str) -> Result<T, DeError> {
    match value.get(field) {
        Some(v) => T::from_value(v),
        None => Err(DeError(format!("missing field `{field}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for i64")))?,
                    other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(DeError::unexpected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Composite impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = <Vec<T>>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                match value {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::unexpected("tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            u8::from_value(&Value::U64(300)),
            Err(DeError("integer 300 out of range for u8".into()))
        );
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(<Vec<u32>>::from_value(&v.to_value()).unwrap(), v);
        let a = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u32, -2i32, 0.5f64);
        assert_eq!(<(u32, i32, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u64> = None;
        assert_eq!(<Option<u64>>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            <Option<u64>>::from_value(&Some(9u64).to_value()).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn shape_mismatches_are_reported() {
        assert!(<[f64; 3]>::from_value(&[1.0f64, 2.0].to_value()).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(<Vec<u64>>::from_value(&Value::Bool(true)).is_err());
    }
}
