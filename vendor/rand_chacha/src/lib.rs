//! Offline stub of `rand_chacha`: a ChaCha8-based deterministic generator
//! implementing the local `rand` stub's `RngCore`/`SeedableRng` traits.
//!
//! The block function is the genuine ChaCha quarter-round construction with 8
//! rounds; only the seed-expansion convenience (`seed_from_u64`) differs from
//! upstream, so streams are deterministic but not bit-identical to the real
//! crate. No test in this workspace depends on upstream bit streams.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// "expand 32-byte k" — the standard ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words) + counter (2 words) + nonce (2 words).
    state: [u32; 16],
    /// Buffered output of the current block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            state[4 + i] = u32::from_le_bytes(bytes);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        // Expand via SplitMix64, mirroring the local rand stub's convention.
        let mut seed = [0u8; 32];
        let mut sm = state;
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mean: f64 = (0..50_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
