//! Offline stub of the `rand` crate (0.8-style API surface).
//!
//! Implements exactly the subset the workspace uses: `Rng::{gen_range,
//! gen_bool}`, `SeedableRng::{from_seed, seed_from_u64}`,
//! `rngs::SmallRng` (xoshiro256++), and `seq::SliceRandom::shuffle`.
//! All generators are fully deterministic from their seed, which is what the
//! simulation relies on; bit-exact parity with upstream `rand` streams is not
//! required by any test.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source. `next_u64` is the primitive; everything else is
/// derived from it.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable over a half-open interval.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor value, used to turn inclusive ranges into half-open ones.
    fn next_up(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }

            fn next_up(self) -> Self {
                self.checked_add(1).expect("inclusive range endpoint overflow")
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                lo + (hi - lo) * rng.next_f64() as $t
            }

            fn next_up(self) -> Self {
                self
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, *self.start(), self.end().next_up())
    }
}

/// SplitMix64, used to expand `u64` seeds into full generator state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++: small, fast, high-quality non-cryptographic PRNG.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher-Yates), matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
