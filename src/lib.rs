//! Hermes — a simulation of "Make LLM Inference Affordable to Everyone:
//! Augmenting GPU Memory with NDP-DIMM" (HPCA'25).
//!
//! This facade crate re-exports every subsystem crate under one roof and owns
//! the workspace-level integration tests (`tests/`) and runnable examples
//! (`examples/`). The subsystems:
//!
//! * [`model`] — model configs, layer shapes, neuron ids, memory footprints.
//! * [`sparsity`] — activation-sparsity modelling: popularity, traces,
//!   clusters, hot/cold statistics.
//! * [`predictor`] — the correlation-aware activation predictor and the MLP
//!   baseline.
//! * [`scheduler`] — offline partitioning, cluster placement, window
//!   remapping and online hot/cold adjustment.
//! * [`ndp`] — the NDP-DIMM hardware model (DRAM timing, GEMV/activation
//!   units, links, pools).
//! * [`gpu`] — consumer GPU, host CPU and PCIe cost models.
//! * [`core`] — the end-to-end Hermes system and the baseline offloading
//!   systems it is evaluated against, exposed through a step-wise
//!   engine/session API over dynamic-batch cost models.
//! * [`serve`] — the open-loop request-level serving simulator: arrival
//!   processes, admission queueing, continuous batching and per-request
//!   serving metrics.
//!
//! # Example
//!
//! One-shot simulation via the [`core::try_run_system`] driver:
//!
//! ```
//! use hermes::core::{try_run_system, SystemConfig, SystemKind, Workload};
//! use hermes::model::ModelId;
//!
//! let workload = Workload::paper_default(ModelId::Opt13B);
//! let config = SystemConfig::paper_default();
//! let report = try_run_system(SystemKind::hermes(), &workload, &config)?;
//! assert!(report.tokens_per_second() > 1.0);
//! assert!(report.latency_stats.ttft > 0.0);
//! # Ok::<(), hermes::core::HermesError>(())
//! ```
//!
//! Or token by token, with a per-token event stream — see
//! [`core::SystemKind::engine`], [`core::Session`] and the `streaming`
//! example.

pub use hermes_core as core;
pub use hermes_gpu as gpu;
pub use hermes_model as model;
pub use hermes_ndp as ndp;
pub use hermes_predictor as predictor;
pub use hermes_scheduler as scheduler;
pub use hermes_serve as serve;
pub use hermes_sparsity as sparsity;
