//! Simulator-throughput benches: simulated requests per wall-clock second
//! on 10k-, 100k- and 1M-request Poisson traces through the event-heap
//! serving simulator. The scenario (overloaded Poisson arrivals, batch cap,
//! FCFS) is shared with `serving_load --bench-json`, which emits the same
//! measurements as `BENCH_serving_sim.json`.
//!
//! Built with `--features reference`, the 10k trace is also run through the
//! retained sort-based reference scheduler for a direct old-vs-new
//! comparison (the reference is too slow to time at 100k and above).

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_bench::throughput::{bench_scenario, bench_system};
use hermes_core::SystemConfig;
use hermes_serve::simulate;

fn bench_simulator_throughput(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let mut group = c.benchmark_group("serving_sim");
    for (label, num_requests, samples) in [
        ("poisson-10k", 10_000usize, 10usize),
        ("poisson-100k", 100_000, 3),
        ("poisson-1m", 1_000_000, 2),
    ] {
        let sim = bench_scenario(num_requests);
        group.sample_size(samples);
        group.bench_function(label, |b| {
            b.iter(|| simulate(bench_system(), &config, &sim).expect("valid bench scenario"))
        });
    }
    group.finish();
}

#[cfg(feature = "reference")]
fn bench_reference_scheduler(c: &mut Criterion) {
    use hermes_serve::reference::simulate_reference;
    let config = SystemConfig::paper_default();
    let mut group = c.benchmark_group("serving_sim_reference");
    let sim = bench_scenario(10_000);
    group.sample_size(2);
    group.bench_function("poisson-10k", |b| {
        b.iter(|| simulate_reference(bench_system(), &config, &sim).expect("valid bench scenario"))
    });
    group.finish();
}

#[cfg(not(feature = "reference"))]
fn bench_reference_scheduler(_c: &mut Criterion) {}

criterion_group!(
    serving_sim,
    bench_simulator_throughput,
    bench_reference_scheduler
);
criterion_main!(serving_sim);
