//! Criterion benches mirroring the paper's end-to-end figures with reduced
//! token counts, so `cargo bench` exercises every experiment path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_core::{try_run_system, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn short_workload(model: ModelId, batch: usize) -> Workload {
    let mut w = Workload::paper_default(model).with_batch(batch);
    w.gen_len = 16;
    w.prompt_len = 32;
    w
}

/// Fig. 9 / Fig. 10: one bench per (system, model) cell at batch 1.
fn bench_system_comparison(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let mut group = c.benchmark_group("fig09_fig10_system_comparison");
    group.sample_size(10);
    for model in [ModelId::Opt13B, ModelId::Llama2_13B] {
        for kind in SystemKind::figure9_lineup() {
            let workload = short_workload(model, 1);
            if try_run_system(kind, &workload, &config).is_err() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(kind.name(), model.name()),
                &workload,
                |b, w| b.iter(|| try_run_system(kind, w, &config).unwrap()),
            );
        }
    }
    group.finish();
}

/// Fig. 11: batch scaling of the full Hermes system.
fn bench_batch_scaling(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let mut group = c.benchmark_group("fig11_batch_scaling");
    group.sample_size(10);
    for batch in [1usize, 4, 16] {
        let workload = short_workload(ModelId::Opt13B, batch);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &workload, |b, w| {
            b.iter(|| try_run_system(SystemKind::hermes(), w, &config).unwrap())
        });
    }
    group.finish();
}

/// Fig. 13: the scheduling ablation variants.
fn bench_ablation(c: &mut Criterion) {
    use hermes_core::HermesOptions;
    let config = SystemConfig::paper_default();
    let mut group = c.benchmark_group("fig13_ablation");
    group.sample_size(10);
    let variants: [(&str, HermesOptions); 4] = [
        ("random", HermesOptions::random_mapping()),
        ("partition", HermesOptions::partition_only()),
        ("adjustment", HermesOptions::adjustment_only()),
        ("full", HermesOptions::full()),
    ];
    for (name, options) in variants {
        let workload = short_workload(ModelId::Opt13B, 1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &workload, |b, w| {
            b.iter(|| try_run_system(SystemKind::Hermes(options), w, &config).unwrap())
        });
    }
    group.finish();
}

/// Fig. 14 / Fig. 16: hardware scaling knobs (DIMM count, GEMV width).
fn bench_hardware_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_fig16_hardware_scaling");
    group.sample_size(10);
    for dimms in [2usize, 8] {
        let config = SystemConfig::paper_default().with_num_dimms(dimms);
        let workload = short_workload(ModelId::Opt13B, 1);
        group.bench_with_input(BenchmarkId::new("dimms", dimms), &workload, |b, w| {
            b.iter(|| try_run_system(SystemKind::hermes(), w, &config).unwrap())
        });
    }
    for mults in [64u32, 256] {
        let config = SystemConfig::paper_default().with_gemv_multipliers(mults);
        let workload = short_workload(ModelId::Opt13B, 16);
        group.bench_with_input(
            BenchmarkId::new("gemv_multipliers", mults),
            &workload,
            |b, w| b.iter(|| try_run_system(SystemKind::hermes(), w, &config).unwrap()),
        );
    }
    group.finish();
}

/// Fig. 15 / Fig. 17: GPU sensitivity and the TensorRT-LLM reference.
fn bench_gpu_and_reference(c: &mut Criterion) {
    use hermes_gpu::GpuDevice;
    let mut group = c.benchmark_group("fig15_fig17_gpu_and_reference");
    group.sample_size(10);
    for gpu in GpuDevice::consumer_lineup() {
        let config = SystemConfig::paper_default().with_gpu(gpu.clone());
        let workload = short_workload(ModelId::Opt13B, 1);
        group.bench_with_input(
            BenchmarkId::new("hermes", gpu.name.clone()),
            &workload,
            |b, w| b.iter(|| try_run_system(SystemKind::hermes(), w, &config).unwrap()),
        );
    }
    let config = SystemConfig::paper_default();
    let workload = short_workload(ModelId::Llama2_13B, 1);
    group.bench_function("tensorrt_llm_5xA100", |b| {
        b.iter(|| {
            try_run_system(SystemKind::TensorRtLlm { num_gpus: 5 }, &workload, &config).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_system_comparison,
    bench_batch_scaling,
    bench_ablation,
    bench_hardware_scaling,
    bench_gpu_and_reference
);
criterion_main!(benches);
