//! Criterion microbenches of the substrate crates: trace generation,
//! prediction, offline partitioning and the window remapper.

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_model::{Block, ModelConfig, ModelId};
use hermes_predictor::{HermesPredictor, PredictorConfig};
use hermes_scheduler::{OfflinePartitioner, PartitionGoal, PartitionInput, WindowRemapper};
use hermes_sparsity::{
    NeuronFrequencies, SparsityProfile, StatisticalActivityModel, TraceGenerator,
};

fn small_model() -> ModelConfig {
    let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
    cfg.num_layers = 4;
    cfg.hidden_size = 256;
    cfg.ffn_hidden = 1024;
    cfg.num_heads = 8;
    cfg.num_kv_heads = 8;
    cfg
}

fn bench_trace_generation(c: &mut Criterion) {
    let cfg = small_model();
    let profile = SparsityProfile::for_model(&cfg);
    let mut group = c.benchmark_group("sparsity_trace");
    group.sample_size(20);
    group.bench_function("full_bitset_token", |b| {
        let mut gen = TraceGenerator::new(&cfg, &profile, 1);
        b.iter(|| gen.next_token())
    });
    group.bench_function("statistical_token", |b| {
        let mut model = StatisticalActivityModel::new(&cfg, &profile, 1);
        b.iter(|| model.next_token())
    });
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let cfg = small_model();
    let profile = SparsityProfile::for_model(&cfg);
    let mut gen = TraceGenerator::new(&cfg, &profile, 2);
    let prefill = gen.generate(32);
    let mut predictor = HermesPredictor::new(&cfg, PredictorConfig::default());
    predictor.initialize_from_prefill(&prefill);
    predictor.correlation_mut().sample_from_trace(&prefill, 8);
    let token = gen.next_token();
    let mut group = c.benchmark_group("predictor");
    group.bench_function("predict_block", |b| {
        b.iter(|| predictor.predict_block(2, Block::Mlp, Some(token.block(1, Block::Mlp))))
    });
    group.bench_function("observe_token", |b| {
        b.iter(|| predictor.clone().observe(&token))
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let cfg = small_model();
    let profile = SparsityProfile::for_model(&cfg);
    let mut gen = TraceGenerator::new(&cfg, &profile, 3);
    let trace = gen.generate(32);
    let freqs = NeuronFrequencies::measure(&trace);
    let input = PartitionInput {
        gpu_budget_bytes: cfg.memory_footprint().sparse_bytes() / 5,
        num_dimms: 8,
        dimm_capacity_bytes: u64::MAX / 8,
        gpu_time_per_neuron: 1e-8,
        dimm_time_per_neuron: 4e-7,
        sync_time: 1e-6,
    };
    let partitioner = OfflinePartitioner::new(input);
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(20);
    group.bench_function("offline_partition", |b| {
        b.iter(|| partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal))
    });
    let assignment = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
    group.bench_function("window_remap", |b| {
        b.iter(|| {
            let mut remapper = WindowRemapper::new(&cfg, 5);
            for tok in trace.iter().take(5) {
                remapper.record_token(tok);
            }
            let mut a = assignment.clone();
            remapper.rebalance(&cfg, &mut a)
        })
    });
    group.finish();
}

fn bench_hardware_models(c: &mut Criterion) {
    use hermes_gpu::{GpuDevice, KernelCostModel};
    use hermes_ndp::{DimmConfig, NdpDimm};
    let mut group = c.benchmark_group("hardware_models");
    let dimm = NdpDimm::new(DimmConfig::ddr4_3200());
    let kernel = KernelCostModel::new(GpuDevice::rtx_4090());
    group.bench_function("ndp_gemv_time", |b| {
        b.iter(|| dimm.gemv_time(criterion::black_box(1 << 22), 1 << 22, 4))
    });
    group.bench_function("gpu_kernel_time", |b| {
        b.iter(|| kernel.kernel_time(criterion::black_box(1 << 26), 1 << 27))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_predictor,
    bench_scheduler,
    bench_hardware_models
);
criterion_main!(benches);
