//! Regression test for the cluster sweep harness: running the fleet grid
//! concurrently must produce byte-identical JSON to the sequential run —
//! same sampled requests, same routing decisions, same emission order.
//! Anything less would make `--threads` change published numbers.

use hermes_bench::cluster_sweep::run_sweep;

#[test]
fn concurrent_cluster_sweep_json_is_byte_identical_to_sequential() {
    let sequential = run_sweep(1);
    let concurrent = run_sweep(4);

    let sequential_json = serde_json::to_string_pretty(&sequential).expect("serializable sweep");
    let concurrent_json = serde_json::to_string_pretty(&concurrent).expect("serializable sweep");
    assert_eq!(
        sequential_json, concurrent_json,
        "parallel cluster sweep diverged from the sequential grid"
    );
}
