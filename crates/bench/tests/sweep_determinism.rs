//! Regression test for the parallel sweep harness: running the
//! `serving_load` grid concurrently must produce byte-identical JSON to the
//! sequential run — same seeds, same scenario results, same emission order
//! of rows. Anything less would make `--threads` change published numbers.

use hermes_bench::serving_sweep::run_sweep;

#[test]
fn concurrent_sweep_json_is_byte_identical_to_sequential() {
    let sequential = run_sweep(1);
    let concurrent = run_sweep(4);

    let sequential_json =
        serde_json::to_string_pretty(&sequential.output).expect("serializable sweep");
    let concurrent_json =
        serde_json::to_string_pretty(&concurrent.output).expect("serializable sweep");
    assert_eq!(
        sequential_json, concurrent_json,
        "parallel sweep diverged from the sequential grid"
    );
    // Skip notes are part of the observable output too (stderr): same
    // scenarios must be skipped in the same order.
    assert_eq!(sequential.skipped, concurrent.skipped);
}
