//! The `cluster_sweep` grid as a library: fleet scenario construction,
//! (optionally parallel) execution and the JSON output schema, shared by
//! the CLI binary and the determinism regression test.
//!
//! Two sections: `routing-policy` holds the fleet fixed and compares every
//! [`RoutingPolicy`] head to head; `fleet-sizing` grows a KV-pressure-routed
//! fleet one replica at a time to find the cheapest fleet that still holds
//! a target fleet-wide p95 TTFT.

use serde::{Deserialize, Serialize};

use hermes_core::{ArrivalProcess, ClusterReport, PromptSpec, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;
use hermes_serve::{
    request_kv_bytes, simulate_cluster, AdmissionConfig, ClusterSimulation, PreemptionPolicy,
    PrefixCacheMode, RoutingPolicy, ServingSimulation, DEFAULT_BLOCK_TOKENS,
};

use crate::sweep::parallel_map;

/// Requests offered per fleet scenario.
pub const NUM_REQUESTS: usize = 240;

/// Offered Poisson rate (requests/s) of every fleet scenario.
pub const OFFERED_RPS: f64 = 60.0;

/// Fleet size of the fixed routing-policy comparison.
pub const ROUTING_FLEET: usize = 4;

/// Largest fleet the sizing sweep grows to.
pub const MAX_FLEET: usize = 6;

/// The fleet-wide p95 TTFT (seconds) the sizing sweep must hold.
pub const TARGET_TTFT_P95: f64 = 1.0;

/// The OPT-13B serving template every fleet scenario shares.
pub fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 64;
    w.gen_len = 16;
    w
}

/// The per-replica scheduling knobs: paged KV under a bounded budget (8
/// worst-case requests per box, so the KV-pressure probe has real signal),
/// evict-and-refill preemption, an LRU prefix cache over shared-prefix
/// prompt groups (so prefix-affinity routing has real signal too).
fn scenario() -> ServingSimulation {
    let t = template();
    let kv_cap = request_kv_bytes(&t, t.prompt_len, t.gen_len) * 8;
    ServingSimulation::new(
        t,
        ArrivalProcess::Poisson { rate: OFFERED_RPS },
        NUM_REQUESTS,
    )
    .with_arrival_seed(42)
    .with_admission(
        AdmissionConfig::unlimited()
            .with_kv_memory_bytes(kv_cap)
            .with_paged_kv(DEFAULT_BLOCK_TOKENS),
    )
    .with_preemption(PreemptionPolicy::EvictAndRefill)
    .with_prompts(PromptSpec::SharedGroups {
        groups: 4,
        prefix_len: 48,
    })
    .with_prefix_cache(PrefixCacheMode::Lru)
}

/// One fleet of `n` identical Hermes-base boxes under `routing`.
fn fleet(n: usize, routing: RoutingPolicy) -> ClusterSimulation {
    ClusterSimulation::uniform(
        scenario(),
        SystemKind::hermes_base(),
        &SystemConfig::paper_default(),
        n,
        routing,
    )
}

/// How one replica's share of the fleet run looked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaUtilization {
    /// Replica label.
    pub label: String,
    /// Requests routed to the replica (first dispatches plus re-dispatches).
    pub routed: usize,
    /// Fraction of the fleet makespan the replica was still serving work
    /// (its own makespan over the fleet's).
    pub utilization: f64,
    /// The replica's share of all generated tokens.
    pub token_share: f64,
}

/// One simulated fleet scenario, tagged with the sweep table it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSweepEntry {
    /// Which sweep produced this entry (`routing-policy` or `fleet-sizing`).
    pub section: String,
    /// Routing policy display name.
    pub routing: String,
    /// Fleet size.
    pub replicas: usize,
    /// Offered load (requests/s).
    pub offered_rps: f64,
    /// Whether the fleet held [`TARGET_TTFT_P95`].
    pub meets_target: bool,
    /// Per-replica utilization breakdown.
    pub per_replica: Vec<ReplicaUtilization>,
    /// The full fleet report (carries `load_imbalance` and the per-replica
    /// serving reports).
    pub report: ClusterReport,
}

/// Everything the sweep produced, in emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSweepOutput {
    /// Model under test.
    pub model: String,
    /// Requests offered per fleet scenario.
    pub num_requests: usize,
    /// The p95 TTFT target (seconds) of the sizing sweep.
    pub target_ttft_p95: f64,
    /// The smallest fleet of the sizing sweep that held the target, if any.
    pub cheapest_fleet: Option<usize>,
    /// Every simulated fleet scenario.
    pub results: Vec<ClusterSweepEntry>,
}

/// The sweep grid: every routing policy on the fixed fleet, then every
/// fleet size under KV-pressure routing.
pub fn grid() -> Vec<(&'static str, usize, RoutingPolicy)> {
    let mut points = Vec::new();
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstanding,
        RoutingPolicy::KvPressure,
        RoutingPolicy::PrefixAffinity,
    ] {
        points.push(("routing-policy", ROUTING_FLEET, routing));
    }
    for n in 1..=MAX_FLEET {
        points.push(("fleet-sizing", n, RoutingPolicy::KvPressure));
    }
    points
}

/// Run one grid point.
fn run_point(section: &'static str, n: usize, routing: RoutingPolicy) -> ClusterSweepEntry {
    let outcome = simulate_cluster(&fleet(n, routing)).expect("sweep scenario is valid");
    let report = outcome.report;
    let fleet_tokens = report.generated_tokens.max(1) as f64;
    let per_replica = report
        .replicas
        .iter()
        .map(|r| ReplicaUtilization {
            label: r.label.clone(),
            routed: r.routed,
            utilization: if report.makespan > 0.0 {
                r.report.makespan / report.makespan
            } else {
                0.0
            },
            token_share: r.report.generated_tokens as f64 / fleet_tokens,
        })
        .collect();
    ClusterSweepEntry {
        section: section.to_string(),
        routing: routing.name().to_string(),
        replicas: n,
        offered_rps: OFFERED_RPS,
        meets_target: report.ttft.p95 <= TARGET_TTFT_P95,
        per_replica,
        report,
    }
}

/// Run the whole grid on `threads` workers. Grid points are independent
/// simulations, so the output is byte-identical at any thread count.
pub fn run_sweep(threads: usize) -> ClusterSweepOutput {
    let results = parallel_map(threads, grid(), |(section, n, routing)| {
        run_point(section, n, routing)
    });
    let cheapest_fleet = results
        .iter()
        .filter(|e| e.section == "fleet-sizing" && e.meets_target)
        .map(|e| e.replicas)
        .min();
    ClusterSweepOutput {
        model: format!("{:?}", ModelId::Opt13B),
        num_requests: NUM_REQUESTS,
        target_ttft_p95: TARGET_TTFT_P95,
        cheapest_fleet,
        results,
    }
}
