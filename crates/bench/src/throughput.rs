//! The simulator-throughput benchmark scenario: how many *simulated*
//! requests per wall-clock second the serving simulator sustains on large
//! Poisson traces — plain FCFS at two lengths, plus chunked-prefill,
//! eviction-path and paged-swap-out variants. Shared by the `serving_sim`
//! criterion bench and the `serving_load --bench-json` path that emits
//! `BENCH_serving_sim.json`.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use hermes_core::{ArrivalProcess, PrioritySpec, RequestClass, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;
use hermes_serve::{
    request_kv_bytes, simulate, simulate_cluster, AdmissionConfig, ClusterSimulation,
    PreemptionPolicy, PrefillPolicy, PrefixCacheMode, PromptSpec, RoutingPolicy, SchedulingPolicy,
    ServingSimulation, DEFAULT_BLOCK_TOKENS,
};

/// Offered Poisson rate (simulated requests/s). Far above the scenario's
/// service capacity, so the admission queue carries a deep backlog — the
/// regime where the old per-boundary ready-queue re-sort was quadratic and
/// the event-heap scheduler has to prove itself.
pub const OFFERED_RPS: f64 = 500.0;

/// Batch seats of the benchmark scenario.
pub const MAX_BATCH: usize = 128;

/// The benchmark workload: OPT-13B with short sequences, so wall-clock time
/// goes to the scheduler hot loop rather than to the cost model.
pub fn bench_template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 64;
    w.gen_len = 16;
    w
}

/// The benchmark scenario at a given trace length: an overloaded Poisson
/// trace through continuous batching with a batch cap and FCFS scheduling.
pub fn bench_scenario(num_requests: usize) -> ServingSimulation {
    ServingSimulation::new(
        bench_template(),
        ArrivalProcess::Poisson { rate: OFFERED_RPS },
        num_requests,
    )
    .with_arrival_seed(42)
    .with_admission(AdmissionConfig::unlimited().with_max_batch(MAX_BATCH))
}

/// The system the benchmark prices steps through.
pub fn bench_system() -> SystemKind {
    SystemKind::hermes_base()
}

/// Fleet size of the cluster bench traces.
pub const CLUSTER_REPLICAS: usize = 4;

/// One tracked trace: either a single-replica simulation or a multi-replica
/// cluster scenario (the cluster driver's per-arrival routing and
/// multi-clock advance have their own hot-loop costs worth trending).
#[derive(Debug, Clone)]
pub enum BenchSim {
    /// A single-replica `simulate` trace.
    Single(ServingSimulation),
    /// A multi-replica `simulate_cluster` trace.
    Cluster(ClusterSimulation),
}

/// The round-robin cluster bench trace: the benchmark scenario fanned over
/// a [`CLUSTER_REPLICAS`]-replica homogeneous fleet by the cheapest router.
pub fn cluster_rr_scenario(num_requests: usize) -> ClusterSimulation {
    ClusterSimulation::uniform(
        bench_scenario(num_requests),
        bench_system(),
        &SystemConfig::paper_default(),
        CLUSTER_REPLICAS,
        RoutingPolicy::RoundRobin,
    )
}

/// The KV-pressure cluster bench trace: same fleet, but every replica has a
/// bounded KV budget (32 worst-case reservations) so the router's pressure
/// probe — the most expensive routing signal — is exercised on every
/// arrival.
pub fn cluster_kv_scenario(num_requests: usize) -> ClusterSimulation {
    let template = bench_template();
    let kv_cap = request_kv_bytes(&template, template.prompt_len, template.gen_len) * 32;
    let scenario = bench_scenario(num_requests).with_admission(
        AdmissionConfig::unlimited()
            .with_max_batch(MAX_BATCH)
            .with_kv_memory_bytes(kv_cap),
    );
    ClusterSimulation::uniform(
        scenario,
        bench_system(),
        &SystemConfig::paper_default(),
        CLUSTER_REPLICAS,
        RoutingPolicy::KvPressure,
    )
}

/// The tracked bench traces: the two FCFS Poisson lengths plus 10k-request
/// variants that keep the hot loop's other paths on the perf trajectory —
/// chunked prefill (at both lengths, since its per-boundary bookkeeping
/// scales differently from plain decode), the eviction/readmission path
/// (priority preemption under a KV cap), the paged-pool swap-out path, and
/// the prefix-cache path both hot (shared system prompts, high hit rate)
/// and cold (unique prompts, pure lookup overhead) — plus the cluster
/// driver over a [`CLUSTER_REPLICAS`]-replica fleet under round-robin and
/// KV-pressure routing.
pub fn bench_traces() -> Vec<(&'static str, usize, BenchSim)> {
    // Interactive tier-0 / best-effort tier-2 mix for the preemption
    // traces, under a KV budget of 32 worst-case reservations and a
    // moderated rate so tier-0 arrivals keep interleaving with (and
    // preempting) running tier-2 work for the whole trace.
    let classes = PrioritySpec::Cycle {
        classes: vec![RequestClass::new(0), RequestClass::new(2)],
    };
    let template = bench_template();
    let kv_cap = request_kv_bytes(&template, template.prompt_len, template.gen_len) * 32;
    let preempt_base = |num_requests: usize| {
        ServingSimulation::new(
            bench_template(),
            ArrivalProcess::Poisson {
                rate: OFFERED_RPS / 4.0,
            },
            num_requests,
        )
        .with_arrival_seed(42)
        .with_classes(classes.clone())
        .with_scheduling(SchedulingPolicy::Priority)
    };
    vec![
        (
            "poisson-10k",
            10_000,
            BenchSim::Single(bench_scenario(10_000)),
        ),
        (
            "poisson-100k",
            100_000,
            BenchSim::Single(bench_scenario(100_000)),
        ),
        (
            "chunked-10k",
            10_000,
            BenchSim::Single(bench_scenario(10_000).with_prefill(PrefillPolicy::Chunked {
                chunk_tokens: 16,
                budget: 256,
            })),
        ),
        (
            "chunked-100k",
            100_000,
            BenchSim::Single(
                bench_scenario(100_000).with_prefill(PrefillPolicy::Chunked {
                    chunk_tokens: 16,
                    budget: 256,
                }),
            ),
        ),
        (
            "prefix-hot-10k",
            10_000,
            BenchSim::Single(
                bench_scenario(10_000)
                    .with_admission(
                        AdmissionConfig::unlimited()
                            .with_max_batch(MAX_BATCH)
                            .with_paged_kv(DEFAULT_BLOCK_TOKENS),
                    )
                    .with_prompts(PromptSpec::SharedGroups {
                        groups: 4,
                        prefix_len: 48,
                    })
                    .with_prefix_cache(PrefixCacheMode::Lru),
            ),
        ),
        (
            "prefix-cold-10k",
            10_000,
            BenchSim::Single(
                bench_scenario(10_000)
                    .with_admission(
                        AdmissionConfig::unlimited()
                            .with_max_batch(MAX_BATCH)
                            .with_paged_kv(DEFAULT_BLOCK_TOKENS),
                    )
                    .with_prefix_cache(PrefixCacheMode::Lru),
            ),
        ),
        (
            "preempt-10k",
            10_000,
            BenchSim::Single(
                preempt_base(10_000)
                    .with_admission(
                        AdmissionConfig::unlimited()
                            .with_max_batch(MAX_BATCH)
                            .with_kv_memory_bytes(kv_cap),
                    )
                    .with_preemption(PreemptionPolicy::EvictAndRefill),
            ),
        ),
        (
            "swap-10k",
            10_000,
            BenchSim::Single(
                preempt_base(10_000)
                    .with_admission(
                        AdmissionConfig::unlimited()
                            .with_max_batch(MAX_BATCH)
                            .with_kv_memory_bytes(kv_cap)
                            .with_paged_kv(DEFAULT_BLOCK_TOKENS),
                    )
                    .with_preemption(PreemptionPolicy::SwapOut),
            ),
        ),
        (
            "cluster-rr-10k",
            10_000,
            BenchSim::Cluster(cluster_rr_scenario(10_000)),
        ),
        (
            "cluster-kv-10k",
            10_000,
            BenchSim::Cluster(cluster_kv_scenario(10_000)),
        ),
    ]
}

/// One measured trace length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Trace label (e.g. `poisson-10k`).
    pub trace: String,
    /// Requests in the trace.
    pub num_requests: usize,
    /// Wall-clock seconds for one full simulation.
    pub seconds: f64,
    /// Simulated requests per wall-clock second.
    pub requests_per_second: f64,
    /// Same measurement through the retained sort-based reference
    /// scheduler, when it was run (the `reference` feature).
    pub reference_requests_per_second: Option<f64>,
    /// `requests_per_second / reference_requests_per_second`, when the
    /// reference was run.
    pub speedup_vs_reference: Option<f64>,
}

/// The `BENCH_serving_sim.json` schema: the simulator-throughput perf
/// trajectory entry point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchOutput {
    /// Benchmark family name.
    pub benchmark: String,
    /// System priced by every trace.
    pub system: String,
    /// Offered Poisson rate (simulated requests/s).
    pub offered_rps: f64,
    /// Batch seats.
    pub max_batch: usize,
    /// One entry per measured trace length.
    pub entries: Vec<BenchEntry>,
}

/// Time one full simulation of `sim` (an `num_requests`-long trace),
/// returning (wall seconds, simulated requests/s).
pub fn measure(sim: &ServingSimulation, num_requests: usize) -> (f64, f64) {
    let config = SystemConfig::paper_default();
    let start = Instant::now();
    let outcome = simulate(bench_system(), &config, sim).expect("benchmark scenario is valid");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(outcome.report.completed, num_requests);
    (seconds, num_requests as f64 / seconds)
}

/// Time one full cluster simulation of `cluster` (an `num_requests`-long
/// fleet-wide trace), returning (wall seconds, simulated requests/s).
pub fn measure_cluster(cluster: &ClusterSimulation, num_requests: usize) -> (f64, f64) {
    let start = Instant::now();
    let outcome = simulate_cluster(cluster).expect("benchmark scenario is valid");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(outcome.report.completed, num_requests);
    (seconds, num_requests as f64 / seconds)
}

/// Time the retained sort-based reference scheduler on the same trace.
#[cfg(feature = "reference")]
pub fn measure_reference(sim: &ServingSimulation, num_requests: usize) -> (f64, f64) {
    let config = SystemConfig::paper_default();
    let start = Instant::now();
    let outcome = hermes_serve::reference::simulate_reference(bench_system(), &config, sim)
        .expect("benchmark scenario is valid");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(outcome.report.completed, num_requests);
    (seconds, num_requests as f64 / seconds)
}

/// Run the tracked traces ([`bench_traces`]) and fold them into the
/// `BENCH_serving_sim.json` schema. With the `reference` feature on, the
/// sort-based reference scheduler is timed on the same traces and the
/// speedup recorded alongside.
pub fn run_bench() -> BenchOutput {
    let entries = bench_traces()
        .into_iter()
        .map(|(trace, num_requests, sim)| {
            let (seconds, rps, reference) = match &sim {
                BenchSim::Single(sim) => {
                    let (seconds, rps) = measure(sim, num_requests);
                    #[cfg(feature = "reference")]
                    let reference = Some(measure_reference(sim, num_requests).1);
                    #[cfg(not(feature = "reference"))]
                    let reference = None;
                    (seconds, rps, reference)
                }
                // The sort-based reference oracle predates the cluster
                // driver; cluster traces trend the production path only.
                BenchSim::Cluster(cluster) => {
                    let (seconds, rps) = measure_cluster(cluster, num_requests);
                    (seconds, rps, None)
                }
            };
            BenchEntry {
                trace: trace.to_string(),
                num_requests,
                seconds,
                requests_per_second: rps,
                reference_requests_per_second: reference,
                speedup_vs_reference: reference.map(|r| rps / r),
            }
        })
        .collect();
    BenchOutput {
        benchmark: "serving_sim".to_string(),
        system: bench_system().name(),
        offered_rps: OFFERED_RPS,
        max_batch: MAX_BATCH,
        entries,
    }
}
