//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches that reproduce every table and figure of the Hermes paper.
//!
//! Each binary under `src/bin/` regenerates one experiment and prints the
//! same rows/series the paper reports (tokens/s, normalized speedups,
//! latency breakdowns). Absolute numbers come from the analytic substrate
//! models of this repository rather than the authors' testbed; the *shape*
//! of each result (who wins, by roughly what factor, where crossovers fall)
//! is the reproduction target. See `EXPERIMENTS.md` at the repository root
//! for the paper-vs-measured comparison.

pub mod cluster_sweep;
pub mod serving_sweep;
pub mod sweep;
pub mod throughput;

use hermes_core::{try_run_system, InferenceReport, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

/// Result of one (system, workload) cell of a figure.
#[derive(Debug, Clone)]
pub struct Cell {
    /// System display name.
    pub system: String,
    /// Model evaluated.
    pub model: ModelId,
    /// Batch size.
    pub batch: usize,
    /// Tokens/s, or `None` when the combination is not supported ("N.P.").
    pub tokens_per_second: Option<f64>,
    /// The full report when the run was supported.
    pub report: Option<InferenceReport>,
}

impl Cell {
    /// Format the throughput like the paper's bar labels ("N.P." when the
    /// system cannot run the model).
    pub fn formatted(&self) -> String {
        match self.tokens_per_second {
            Some(tps) => format!("{tps:.2}"),
            None => "N.P.".to_string(),
        }
    }
}

/// Run one system on one workload, mapping unsupported combinations to an
/// "N.P." cell exactly like the paper's figures do.
pub fn run_cell(kind: SystemKind, workload: &Workload, config: &SystemConfig) -> Cell {
    match try_run_system(kind, workload, config) {
        Ok(report) => Cell {
            system: kind.name(),
            model: workload.model,
            batch: workload.batch,
            tokens_per_second: Some(report.tokens_per_second()),
            report: Some(report),
        },
        Err(_) => Cell {
            system: kind.name(),
            model: workload.model,
            batch: workload.batch,
            tokens_per_second: None,
            report: None,
        },
    }
}

/// Run a lineup of systems on the same workload.
pub fn run_lineup(systems: &[SystemKind], workload: &Workload, config: &SystemConfig) -> Vec<Cell> {
    systems
        .iter()
        .map(|&kind| run_cell(kind, workload, config))
        .collect()
}

/// Print a Markdown-style table of cells grouped by system (rows) and a
/// caller-provided column label per cell.
pub fn print_table(title: &str, columns: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n## {title}\n");
    println!("| system | {} |", columns.join(" | "));
    println!(
        "|---|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for (name, cells) in rows {
        println!("| {name} | {} |", cells.join(" | "));
    }
}

/// Geometric-mean speedup of `a` over `b` across paired cells, skipping
/// unsupported entries.
pub fn geomean_speedup(a: &[Cell], b: &[Cell]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (x, y) in a.iter().zip(b) {
        if let (Some(xa), Some(yb)) = (x.tokens_per_second, y.tokens_per_second) {
            if xa > 0.0 && yb > 0.0 {
                log_sum += (xa / yb).ln();
                n += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_combinations_become_np() {
        let config = SystemConfig::paper_default();
        let mut w = Workload::paper_default(ModelId::Llama2_13B);
        w.gen_len = 4;
        w.prompt_len = 8;
        let cell = run_cell(SystemKind::FlexGen, &w, &config);
        assert_eq!(cell.formatted(), "N.P.");
        assert!(cell.report.is_none());
    }

    #[test]
    fn lineup_and_geomean() {
        let config = SystemConfig::paper_default();
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.gen_len = 4;
        w.prompt_len = 8;
        let cells = run_lineup(&[SystemKind::Accelerate, SystemKind::hermes()], &w, &config);
        assert_eq!(cells.len(), 2);
        let speedup = geomean_speedup(&cells[1..], &cells[..1]).unwrap();
        assert!(speedup > 1.0);
        assert!(geomean_speedup(&[], &[]).is_none());
    }
}
