//! A dependency-free parallel map for sweep grids, on `std::thread::scope`.
//!
//! Grid points are independent simulations, so the only coordination needed
//! is handing out work items and collecting results. Workers pull the next
//! unclaimed index from a shared atomic counter (work stealing without
//! queues) and push `(index, result)` pairs into a mutex-guarded vector;
//! the caller sorts by index, so the output order is the input order no
//! matter how the OS schedules the workers — which is what makes the
//! concurrent sweep byte-identical to the sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on `threads` worker threads, preserving input
/// order in the output. `threads == 1` (or one item) runs inline with no
/// thread machinery at all, so the sequential path stays trivially
/// deterministic. `f` must be `Sync` because every worker shares it.
///
/// # Panics
///
/// Panics if `threads` is zero, and propagates any panic from `f` (the
/// scope joins every worker before returning).
pub fn parallel_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    assert!(threads > 0, "parallel_map needs at least one thread");
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    // Claimed via `next`; each slot is taken by exactly one worker.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work slot claimed twice");
                let out = f(item);
                results.lock().expect("result sink poisoned").push((i, out));
            });
        }
    });

    let mut collected = results.into_inner().expect("result sink poisoned");
    collected.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), n);
    collected.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_thread_counts() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 128] {
            let got = parallel_map(threads, items.clone(), |i| i * i);
            assert_eq!(got, expected, "order broke at {threads} threads");
        }
    }

    #[test]
    fn runs_with_more_threads_than_items() {
        assert_eq!(parallel_map(16, vec![41], |i| i + 1), vec![42]);
        assert_eq!(parallel_map(4, Vec::<i32>::new(), |i| i), Vec::<i32>::new());
    }
}
