//! Validate a `BENCH_serving_sim.json` perf-trajectory file: it must parse
//! back into the [`BenchOutput`] schema with the vendored `serde_json` and
//! carry sane measurements for the tracked trace lengths.
//!
//! Run with: `cargo run -p hermes-bench --bin validate_bench_json -- PATH`
//! (PATH defaults to `BENCH_serving_sim.json`). Exits non-zero on any
//! schema or sanity violation, so CI can gate on it.

use hermes_bench::throughput::BenchOutput;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving_sim.json".to_string());
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let output: BenchOutput = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("{path} does not parse as BenchOutput: {e}"));

    assert_eq!(output.benchmark, "serving_sim", "unexpected benchmark name");
    let lengths: Vec<usize> = output.entries.iter().map(|e| e.num_requests).collect();
    assert!(
        lengths.contains(&10_000) && lengths.contains(&100_000),
        "the tracked 10k and 100k trace lengths must both be present, got {lengths:?}"
    );
    let traces: Vec<&str> = output.entries.iter().map(|e| e.trace.as_str()).collect();
    for required in [
        "poisson-10k",
        "poisson-100k",
        "chunked-10k",
        "chunked-100k",
        "prefix-hot-10k",
        "prefix-cold-10k",
        "preempt-10k",
        "swap-10k",
        "cluster-rr-10k",
        "cluster-kv-10k",
    ] {
        assert!(
            traces.contains(&required),
            "tracked trace {required} missing, got {traces:?}"
        );
    }
    for entry in &output.entries {
        assert!(
            entry.seconds > 0.0 && entry.requests_per_second > 0.0,
            "{}: non-positive measurement",
            entry.trace
        );
        let expected = entry.num_requests as f64 / entry.seconds;
        assert!(
            (entry.requests_per_second - expected).abs() < 1e-6 * expected,
            "{}: requests_per_second inconsistent with seconds",
            entry.trace
        );
        if let (Some(reference), Some(speedup)) = (
            entry.reference_requests_per_second,
            entry.speedup_vs_reference,
        ) {
            assert!(
                (speedup - entry.requests_per_second / reference).abs() < 1e-9 * speedup,
                "{}: speedup inconsistent with the two rates",
                entry.trace
            );
        }
    }
    println!(
        "{path}: valid ({} entries, {})",
        output.entries.len(),
        output
            .entries
            .iter()
            .map(|e| format!("{} {:.0} req/s", e.trace, e.requests_per_second))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
