//! Fig. 4: distribution patterns of activation sparsity — token-wise
//! similarity vs token distance (4a) and layer-wise correlation (4b).

use hermes_model::{Block, ModelConfig, ModelId};
use hermes_sparsity::{
    Dataset, LayerCorrelationStats, SparsityProfile, TokenSimilarityCurve, TraceGenerator,
};

fn main() {
    println!("# Fig. 4a — token-wise similarity vs token distance");
    let models = [ModelId::Llama2_13B, ModelId::Falcon40B];
    let datasets = [Dataset::Copa, Dataset::WikiText2, Dataset::Piqa];
    let distances = [1usize, 2, 5, 10, 25, 50, 100];
    println!(
        "| model-dataset | {} |",
        distances.map(|d| d.to_string()).join(" | ")
    );
    println!("|---|{}|", distances.map(|_| "---".to_string()).join("|"));
    for model in models {
        // Down-scale the layer count so the trace generation stays fast; the
        // similarity statistics are per-layer and unaffected.
        let mut cfg = ModelConfig::from_id(model);
        cfg.num_layers = 4;
        for dataset in datasets {
            let profile = SparsityProfile::for_model_on(&cfg, dataset);
            let mut gen = TraceGenerator::new(&cfg, &profile, 42);
            let trace = gen.generate(128);
            let curve = TokenSimilarityCurve::measure(&trace, 100);
            let cells: Vec<String> = distances
                .iter()
                .map(|&d| format!("{:.3}", curve.at(d)))
                .collect();
            println!("| {}-{} | {} |", model, dataset, cells.join(" | "));
        }
    }

    println!("\n# Fig. 4b — layer-wise correlation (MLP block)");
    println!("| model | P(active | parent active) | P(active) baseline | lift |");
    println!("|---|---|---|---|");
    for model in models {
        let mut cfg = ModelConfig::from_id(model);
        cfg.num_layers = 4;
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 7);
        let trace = gen.generate(96);
        let stats = LayerCorrelationStats::measure(&trace, gen.popularity(), 2, Block::Mlp);
        println!(
            "| {} | {:.3} | {:.3} | {:.2}x |",
            model,
            stats.conditional_probability,
            stats.baseline_probability,
            stats.lift()
        );
    }
}
