//! Sweep multi-replica fleets: routing policies head to head on a fixed
//! fleet, then fleet sizes under KV-pressure routing to find the cheapest
//! fleet holding the target p95 TTFT.
//!
//! Run with: `cargo run --release -p hermes-bench --bin cluster_sweep`
//! (`--json` for the machine-readable output, `--threads N` to run grid
//! points concurrently — the output is byte-identical at any thread count).

use hermes_bench::cluster_sweep::{run_sweep, ClusterSweepOutput, TARGET_TTFT_P95};

fn print_tables(output: &ClusterSweepOutput) {
    println!(
        "## Routing policies ({} requests/fleet)",
        output.num_requests
    );
    println!();
    println!("| routing | ttft p50 | ttft p95 | e2e p95 | load imbalance | redispatches |");
    println!("|---|---|---|---|---|---|");
    for entry in output
        .results
        .iter()
        .filter(|e| e.section == "routing-policy")
    {
        println!(
            "| {} | {:>8.3} | {:>8.3} | {:>8.3} | {:>6.3} | {:>3} |",
            entry.routing,
            entry.report.ttft.p50,
            entry.report.ttft.p95,
            entry.report.e2e.p95,
            entry.report.load_imbalance,
            entry.report.redispatches,
        );
    }
    println!();
    println!("## Per-replica utilization (routing-policy fleets)");
    println!();
    println!("| routing | replica | routed | utilization | token share |");
    println!("|---|---|---|---|---|");
    for entry in output
        .results
        .iter()
        .filter(|e| e.section == "routing-policy")
    {
        for r in &entry.per_replica {
            println!(
                "| {} | {} | {:>4} | {:>6.3} | {:>6.3} |",
                entry.routing, r.label, r.routed, r.utilization, r.token_share,
            );
        }
    }
    println!();
    println!("## Fleet sizing under kv-pressure (target p95 TTFT <= {TARGET_TTFT_P95} s)");
    println!();
    println!("| replicas | ttft p95 | load imbalance | holds target |");
    println!("|---|---|---|---|");
    for entry in output
        .results
        .iter()
        .filter(|e| e.section == "fleet-sizing")
    {
        println!(
            "| {:>2} | {:>8.3} | {:>6.3} | {} |",
            entry.replicas,
            entry.report.ttft.p95,
            entry.report.load_imbalance,
            if entry.meets_target { "yes" } else { "no" },
        );
    }
    println!();
    match output.cheapest_fleet {
        Some(n) => println!("cheapest fleet holding the target: {n} replicas"),
        None => println!("no swept fleet holds the target"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or(1);

    let output = run_sweep(threads);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable sweep")
        );
    } else {
        print_tables(&output);
    }
}
