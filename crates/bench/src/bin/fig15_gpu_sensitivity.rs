//! Fig. 15: throughput of OPT-13B and OPT-30B with different consumer GPUs
//! (Tesla T4, RTX 3090, RTX 4090) across batch sizes.

use hermes_bench::run_cell;
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_gpu::GpuDevice;
use hermes_model::ModelId;

fn main() {
    let batches = [1usize, 4, 16];
    println!("# Fig. 15 — GPU sensitivity (tokens/s)");
    println!("| model / batch | Tesla T4 | RTX 3090 | RTX 4090 |");
    println!("|---|---|---|---|");
    for model in [ModelId::Opt13B, ModelId::Opt30B] {
        for &batch in &batches {
            let workload = Workload::paper_default(model).with_batch(batch);
            let cells: Vec<String> = GpuDevice::consumer_lineup()
                .into_iter()
                .map(|gpu| {
                    let config = SystemConfig::paper_default().with_gpu(gpu);
                    run_cell(SystemKind::hermes(), &workload, &config).formatted()
                })
                .collect();
            println!("| {model} b{batch} | {} |", cells.join(" | "));
        }
    }
}
