//! Fig. 11: end-to-end performance across batch sizes 1–16 for Falcon-40B,
//! OPT-66B and LLaMA2-70B on all six systems.
//!
//! Run with: `cargo run --release -p hermes-bench --bin fig11_batch_sweep`
//!
//! Pass `--json` to emit the figure as machine-readable JSON (one object
//! with a `tables` array — one table per model, each a `rows` array of
//! per-system cells across the batch sizes) instead of the Markdown
//! tables.

use serde::{Deserialize, Serialize};

use hermes_bench::run_lineup;
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

/// One (system, batch) cell of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureCell {
    /// Batch size evaluated.
    batch: usize,
    /// Tokens/s, or `None` when the system cannot run the workload ("N.P.").
    tokens_per_second: Option<f64>,
}

/// One system's row across every batch size of a model's table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureRow {
    /// System display name.
    system: String,
    /// One cell per batch size, in `batches` order.
    cells: Vec<FigureCell>,
}

/// One model's table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureTable {
    /// Model evaluated.
    model: String,
    /// Per-system rows.
    rows: Vec<FigureRow>,
}

/// Everything the figure produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureOutput {
    /// Batch sizes evaluated, in column order.
    batches: Vec<usize>,
    /// One table per model.
    tables: Vec<FigureTable>,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::paper_default();
    let systems = SystemKind::figure9_lineup();
    let batches = [1usize, 2, 4, 8, 16];
    let models = [ModelId::Falcon40B, ModelId::Opt66B, ModelId::Llama2_70B];

    // (model, system) -> cells across batches, measured once and shared by
    // both output formats.
    let mut measured: Vec<Vec<Vec<hermes_bench::Cell>>> = Vec::new();
    for model in models {
        let mut per_system: Vec<Vec<hermes_bench::Cell>> = vec![Vec::new(); systems.len()];
        for &batch in &batches {
            let workload = Workload::paper_default(model).with_batch(batch);
            for (i, cell) in run_lineup(&systems, &workload, &config)
                .into_iter()
                .enumerate()
            {
                per_system[i].push(cell);
            }
        }
        measured.push(per_system);
    }

    if json {
        let output = FigureOutput {
            batches: batches.to_vec(),
            tables: models
                .iter()
                .zip(&measured)
                .map(|(model, per_system)| FigureTable {
                    model: model.to_string(),
                    rows: systems
                        .iter()
                        .zip(per_system)
                        .map(|(kind, cells)| FigureRow {
                            system: kind.name(),
                            cells: batches
                                .iter()
                                .zip(cells)
                                .map(|(&batch, c)| FigureCell {
                                    batch,
                                    tokens_per_second: c.tokens_per_second,
                                })
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable figure")
        );
        return;
    }

    for (model, per_system) in models.iter().zip(&measured) {
        println!("\n# Fig. 11 — {model} (tokens/s)");
        println!(
            "| system | {} |",
            batches.map(|b| format!("b{b}")).join(" | ")
        );
        println!("|---|---|---|---|---|---|");
        for (kind, cells) in systems.iter().zip(per_system) {
            let row: Vec<String> = cells.iter().map(|c| c.formatted()).collect();
            println!("| {} | {} |", kind.name(), row.join(" | "));
        }
    }
}
