//! Fig. 11: end-to-end performance across batch sizes 1–16 for Falcon-40B,
//! OPT-66B and LLaMA2-70B on all six systems.

use hermes_bench::run_lineup;
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let config = SystemConfig::paper_default();
    let systems = SystemKind::figure9_lineup();
    let batches = [1usize, 2, 4, 8, 16];
    for model in [ModelId::Falcon40B, ModelId::Opt66B, ModelId::Llama2_70B] {
        println!("\n# Fig. 11 — {model} (tokens/s)");
        println!(
            "| system | {} |",
            batches.map(|b| format!("b{b}")).join(" | ")
        );
        println!("|---|---|---|---|---|---|");
        let mut rows: Vec<(String, Vec<String>)> =
            systems.iter().map(|k| (k.name(), Vec::new())).collect();
        for &batch in &batches {
            let workload = Workload::paper_default(model).with_batch(batch);
            for (i, cell) in run_lineup(&systems, &workload, &config)
                .into_iter()
                .enumerate()
            {
                rows[i].1.push(cell.formatted());
            }
        }
        for (name, cells) in rows {
            println!("| {name} | {} |", cells.join(" | "));
        }
    }
}
