//! Fig. 9: end-to-end tokens/s of Hermes vs existing offloading-based
//! systems on the OPT family at batch size 1.
//!
//! Run with: `cargo run --release -p hermes-bench --bin
//! fig09_offloading_comparison`
//!
//! Pass `--json` to emit the figure as machine-readable JSON (one object
//! with a `rows` array of per-system cells and a `speedups` array of
//! Hermes-over-baseline geomeans) instead of the Markdown table.

use serde::{Deserialize, Serialize};

use hermes_bench::{geomean_speedup, run_lineup};
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

/// One (system, model) cell of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureCell {
    /// Model evaluated.
    model: String,
    /// Tokens/s, or `None` when the system cannot run the model ("N.P.").
    tokens_per_second: Option<f64>,
}

/// One system's row across every model of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureRow {
    /// System display name.
    system: String,
    /// One cell per model, in `models` order.
    cells: Vec<FigureCell>,
}

/// Hermes geomean speedup over one baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureSpeedup {
    /// Baseline display name.
    baseline: String,
    /// Geometric-mean speedup of Hermes over the baseline across models.
    geomean: f64,
}

/// Everything the figure produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureOutput {
    /// Models evaluated, in column order.
    models: Vec<String>,
    /// Per-system rows.
    rows: Vec<FigureRow>,
    /// Hermes speedups over each baseline.
    speedups: Vec<FigureSpeedup>,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::paper_default();
    let systems = [
        SystemKind::Accelerate,
        SystemKind::FlexGen,
        SystemKind::DejaVu,
        SystemKind::hermes_host(),
        SystemKind::hermes(),
    ];
    let models = [ModelId::Opt13B, ModelId::Opt30B, ModelId::Opt66B];
    let mut per_system: Vec<Vec<hermes_bench::Cell>> = vec![Vec::new(); systems.len()];
    for model in models {
        let workload = Workload::paper_default(model);
        let cells = run_lineup(&systems, &workload, &config);
        for (i, c) in cells.into_iter().enumerate() {
            per_system[i].push(c);
        }
    }
    let hermes_idx = systems.len() - 1;
    let speedups: Vec<FigureSpeedup> = systems
        .iter()
        .enumerate()
        .take(hermes_idx)
        .filter_map(|(i, kind)| {
            geomean_speedup(&per_system[hermes_idx], &per_system[i]).map(|s| FigureSpeedup {
                baseline: kind.name(),
                geomean: s,
            })
        })
        .collect();

    if json {
        let output = FigureOutput {
            models: models.map(|m| m.to_string()).to_vec(),
            rows: systems
                .iter()
                .enumerate()
                .map(|(i, kind)| FigureRow {
                    system: kind.name(),
                    cells: per_system[i]
                        .iter()
                        .map(|c| FigureCell {
                            model: c.model.to_string(),
                            tokens_per_second: c.tokens_per_second,
                        })
                        .collect(),
                })
                .collect(),
            speedups,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable figure")
        );
        return;
    }

    println!("# Fig. 9 — offloading-based systems, batch 1 (tokens/s)");
    println!("| system | {} |", models.map(|m| m.to_string()).join(" | "));
    println!("|---|---|---|---|");
    for (i, kind) in systems.iter().enumerate() {
        let row: Vec<String> = per_system[i].iter().map(|c| c.formatted()).collect();
        println!("| {} | {} |", kind.name(), row.join(" | "));
    }
    for speedup in &speedups {
        println!(
            "Hermes speedup over {}: {:.2}x (geomean)",
            speedup.baseline, speedup.geomean
        );
    }
}
