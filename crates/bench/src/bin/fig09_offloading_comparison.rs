//! Fig. 9: end-to-end tokens/s of Hermes vs existing offloading-based
//! systems on the OPT family at batch size 1.

use hermes_bench::{geomean_speedup, run_lineup};
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let config = SystemConfig::paper_default();
    let systems = [
        SystemKind::Accelerate,
        SystemKind::FlexGen,
        SystemKind::DejaVu,
        SystemKind::hermes_host(),
        SystemKind::hermes(),
    ];
    let models = [ModelId::Opt13B, ModelId::Opt30B, ModelId::Opt66B];
    println!("# Fig. 9 — offloading-based systems, batch 1 (tokens/s)");
    println!("| system | {} |", models.map(|m| m.to_string()).join(" | "));
    println!("|---|---|---|---|");
    let mut per_system: Vec<Vec<hermes_bench::Cell>> = vec![Vec::new(); systems.len()];
    for model in models {
        let workload = Workload::paper_default(model);
        let cells = run_lineup(&systems, &workload, &config);
        for (i, c) in cells.into_iter().enumerate() {
            per_system[i].push(c);
        }
    }
    for (i, kind) in systems.iter().enumerate() {
        let row: Vec<String> = per_system[i].iter().map(|c| c.formatted()).collect();
        println!("| {} | {} |", kind.name(), row.join(" | "));
    }
    let hermes_idx = systems.len() - 1;
    for (i, kind) in systems.iter().enumerate().take(hermes_idx) {
        if let Some(s) = geomean_speedup(&per_system[hermes_idx], &per_system[i]) {
            println!("Hermes speedup over {}: {:.2}x (geomean)", kind.name(), s);
        }
    }
}
