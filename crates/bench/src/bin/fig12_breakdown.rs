//! Fig. 12: per-token latency breakdown — Deja Vu vs Hermes (OPT models) and
//! Hermes-base vs Hermes (Falcon-40B, LLaMA2-70B) across batch sizes.
//!
//! Run with: `cargo run --release -p hermes-bench --bin fig12_breakdown`
//!
//! Pass `--json` to emit the figure as machine-readable JSON (two sections,
//! each a `rows` array of per-config breakdown components in ms amortised
//! per generated token) instead of the Markdown tables.

use serde::{Deserialize, Serialize};

use hermes_core::{try_run_system, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

/// One config's per-token breakdown (ms amortised per generated token), or
/// `None` when the system cannot run the workload ("N.P.").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureRow {
    /// Config label (system, model, batch).
    config: String,
    /// FC / attention / predictor / prefill / communication / migration /
    /// others, in ms per generated token.
    components: Option<[f64; 7]>,
}

/// One of the figure's two panels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureSection {
    /// Panel title.
    section: String,
    /// Per-config rows.
    rows: Vec<FigureRow>,
}

/// Everything the figure produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureOutput {
    /// Component names, in `components` order.
    component_names: Vec<String>,
    /// The two panels (12a, 12b).
    sections: Vec<FigureSection>,
}

fn measure(label: &str, workload: &Workload, kind: SystemKind, config: &SystemConfig) -> FigureRow {
    let components = try_run_system(kind, workload, config).ok().map(|report| {
        let per_token = 1e3 / workload.gen_len as f64;
        let b = &report.breakdown;
        [
            b.fc * per_token,
            b.attention * per_token,
            b.predictor * per_token,
            b.prefill * per_token,
            b.communication * per_token,
            b.migration * per_token,
            b.others * per_token,
        ]
    });
    FigureRow {
        config: label.to_string(),
        components,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::paper_default();
    let batches = [1usize, 4, 16];

    // Both sections measured once, shared by both output formats.
    let mut sections = Vec::new();
    let mut rows = Vec::new();
    for model in [ModelId::Opt13B, ModelId::Opt66B] {
        for &batch in &batches {
            let w = Workload::paper_default(model).with_batch(batch);
            rows.push(measure(
                &format!("Deja Vu {model} b{batch}"),
                &w,
                SystemKind::DejaVu,
                &config,
            ));
            rows.push(measure(
                &format!("Hermes {model} b{batch}"),
                &w,
                SystemKind::hermes(),
                &config,
            ));
        }
    }
    sections.push(FigureSection {
        section: "Fig. 12a — Deja Vu vs Hermes".to_string(),
        rows,
    });
    let mut rows = Vec::new();
    for model in [ModelId::Falcon40B, ModelId::Llama2_70B] {
        for &batch in &batches {
            let w = Workload::paper_default(model).with_batch(batch);
            rows.push(measure(
                &format!("H-base {model} b{batch}"),
                &w,
                SystemKind::hermes_base(),
                &config,
            ));
            rows.push(measure(
                &format!("Hermes {model} b{batch}"),
                &w,
                SystemKind::hermes(),
                &config,
            ));
        }
    }
    sections.push(FigureSection {
        section: "Fig. 12b — Hermes-base vs Hermes".to_string(),
        rows,
    });

    let component_names = [
        "FC",
        "Attention",
        "Predictor",
        "Prefill",
        "Communication",
        "Migration",
        "Others",
    ];
    if json {
        let output = FigureOutput {
            component_names: component_names.map(str::to_string).to_vec(),
            sections,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable figure")
        );
        return;
    }

    for section in &sections {
        println!(
            "# {} breakdown (ms, amortised per generated token)",
            section.section
        );
        println!("| config | {} |", component_names.join(" | "));
        println!("|---|---|---|---|---|---|---|---|");
        for row in &section.rows {
            match &row.components {
                Some(c) => println!(
                    "| {} | {} |",
                    row.config,
                    c.map(|v| format!("{v:.2}")).join(" | ")
                ),
                None => println!("| {} | N.P. | | | | | | |", row.config),
            }
        }
        println!();
    }
}
