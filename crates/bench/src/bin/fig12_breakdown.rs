//! Fig. 12: per-token latency breakdown — Deja Vu vs Hermes (OPT models) and
//! Hermes-base vs Hermes (Falcon-40B, LLaMA2-70B) across batch sizes.

use hermes_core::{try_run_system, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn print_breakdown(label: &str, workload: &Workload, kind: SystemKind, config: &SystemConfig) {
    match try_run_system(kind, workload, config) {
        Ok(report) => {
            let per_token = 1e3 / workload.gen_len as f64;
            let b = &report.breakdown;
            println!(
                "| {label} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
                b.fc * per_token,
                b.attention * per_token,
                b.predictor * per_token,
                b.prefill * per_token,
                b.communication * per_token,
                b.migration * per_token,
                b.others * per_token,
            );
        }
        Err(_) => println!("| {label} | N.P. | | | | | | |"),
    }
}

fn main() {
    let config = SystemConfig::paper_default();
    let batches = [1usize, 4, 16];
    println!("# Fig. 12a — Deja Vu vs Hermes breakdown (ms, amortised per generated token)");
    println!(
        "| config | FC | Attention | Predictor | Prefill | Communication | Migration | Others |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for model in [ModelId::Opt13B, ModelId::Opt66B] {
        for &batch in &batches {
            let w = Workload::paper_default(model).with_batch(batch);
            print_breakdown(
                &format!("Deja Vu {model} b{batch}"),
                &w,
                SystemKind::DejaVu,
                &config,
            );
            print_breakdown(
                &format!("Hermes {model} b{batch}"),
                &w,
                SystemKind::hermes(),
                &config,
            );
        }
    }
    println!("\n# Fig. 12b — Hermes-base vs Hermes breakdown (ms, amortised per generated token)");
    println!(
        "| config | FC | Attention | Predictor | Prefill | Communication | Migration | Others |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for model in [ModelId::Falcon40B, ModelId::Llama2_70B] {
        for &batch in &batches {
            let w = Workload::paper_default(model).with_batch(batch);
            print_breakdown(
                &format!("H-base {model} b{batch}"),
                &w,
                SystemKind::hermes_base(),
                &config,
            );
            print_breakdown(
                &format!("Hermes {model} b{batch}"),
                &w,
                SystemKind::hermes(),
                &config,
            );
        }
    }
}
