//! Section IV-C claim: the lightweight predictor reaches ~98% accuracy with
//! well under a megabyte of state, vs ~2 GB and 10-25% runtime overhead for
//! the MLP-based predictors of prior work.

use hermes_model::{ModelConfig, ModelId};
use hermes_predictor::{HermesPredictor, MlpPredictorModel, PredictorConfig, PredictorEval};
use hermes_sparsity::{SparsityProfile, TraceGenerator};

fn main() {
    println!("# Lightweight predictor accuracy and footprint (Section IV-C)");
    println!("| model | accuracy | recall | state table | correlation table | MLP predictor (baseline) |");
    println!("|---|---|---|---|---|---|");
    for model in [ModelId::Llama2_7B, ModelId::Llama2_13B, ModelId::Opt13B] {
        // Evaluate on a reduced-depth configuration to keep the per-neuron
        // trace generation fast; accuracy is a per-layer statistic.
        let mut cfg = ModelConfig::from_id(model);
        cfg.num_layers = 4;
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 99);
        let prefill = gen.generate(64);
        let mut predictor = HermesPredictor::new(&cfg, PredictorConfig::default());
        predictor.initialize_from_prefill(&prefill);
        predictor.correlation_mut().sample_from_trace(&prefill, 8);
        let eval = PredictorEval::evaluate(&mut predictor, &gen.generate(64));
        // Report the full-depth table sizes for the real model.
        let full_cfg = ModelConfig::from_id(model);
        let full_predictor = HermesPredictor::new(&full_cfg, PredictorConfig::default());
        let mlp = MlpPredictorModel::default();
        println!(
            "| {} | {:.1}% | {:.1}% | {:.0} KB | {:.2} MB | {:.2} GB, {:.0}% runtime |",
            model,
            100.0 * eval.accuracy,
            100.0 * eval.recall,
            full_predictor.states().storage_bytes() as f64 / 1024.0,
            full_predictor.correlation().storage_bytes() as f64 / (1024.0 * 1024.0),
            mlp.storage_bytes(&full_cfg) as f64 / 1e9,
            100.0 * mlp.runtime_overhead_fraction(&full_cfg),
        );
    }
}
