//! Table II: configuration details of the NDP-DIMMs used by Hermes.
//!
//! Run with: `cargo run --release -p hermes-bench --bin table02_ndp_config`
//!
//! Pass `--json` to emit the table as machine-readable JSON (the DIMM
//! configuration plus the derived bandwidth/compute figures) instead of
//! the prose lines.

use serde::{Deserialize, Serialize};

use hermes_ndp::{ActivationUnit, DimmConfig, DramBandwidthModel, GemvUnit};

/// The table's configured and derived figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TableOutput {
    /// GEMV multipliers per NDP core.
    gemv_multipliers: u32,
    /// NDP core clock in MHz.
    ndp_clock_mhz: f64,
    /// NDP core area in mm².
    ndp_core_area_mm2: f64,
    /// DIMM capacity in GiB.
    capacity_gib: u64,
    /// Ranks per DIMM.
    ranks: u32,
    /// Bank groups per rank.
    bank_groups: u32,
    /// Banks per bank group.
    banks_per_group: u32,
    /// DRAM timing parameters, in DRAM clock cycles:
    /// tRC/tRCD/tCL/tRP/tBL/tCCD_S/tCCD_L/tRRD_S/tRRD_L/tFAW.
    timing_cycles: [u32; 10],
    /// DIMM-link bandwidth in GB/s per link.
    link_bandwidth_gbps: f64,
    /// DIMM-link lanes.
    link_lanes: u32,
    /// DIMM-link energy in pJ/bit.
    link_energy_pj_per_bit: f64,
    /// Derived internal DRAM read bandwidth in GB/s per DIMM.
    internal_bandwidth_gbps: f64,
    /// Derived GEMV peak in GFLOPS per DIMM.
    gemv_peak_gflops: f64,
    /// Derived activation-unit lanes.
    activation_lanes: u32,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cfg = DimmConfig::ddr4_3200();
    let dram = DramBandwidthModel::new(cfg.clone());
    let gemv = GemvUnit::new(&cfg);
    let act = ActivationUnit::new(&cfg);
    let t = &cfg.timing;

    if json {
        let output = TableOutput {
            gemv_multipliers: cfg.gemv_multipliers,
            ndp_clock_mhz: cfg.ndp_clock_hz / 1e6,
            ndp_core_area_mm2: cfg.ndp_core_area_mm2,
            capacity_gib: cfg.capacity_bytes / (1 << 30),
            ranks: cfg.ranks,
            bank_groups: cfg.bank_groups,
            banks_per_group: cfg.banks_per_group,
            timing_cycles: [
                t.t_rc, t.t_rcd, t.t_cl, t.t_rp, t.t_bl, t.t_ccd_s, t.t_ccd_l, t.t_rrd_s,
                t.t_rrd_l, t.t_faw,
            ],
            link_bandwidth_gbps: cfg.link_bandwidth / 1e9,
            link_lanes: cfg.link_lanes,
            link_energy_pj_per_bit: cfg.link_energy_pj_per_bit,
            internal_bandwidth_gbps: dram.internal_bandwidth() / 1e9,
            gemv_peak_gflops: gemv.peak_flops() / 1e9,
            activation_lanes: act.lanes(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable table")
        );
        return;
    }

    println!("# Table II — NDP-DIMM configuration");
    println!(
        "NDP core: {} multipliers, 256 KB buffer, {:.0} MHz, {:.2} mm^2/core",
        cfg.gemv_multipliers,
        cfg.ndp_clock_hz / 1e6,
        cfg.ndp_core_area_mm2
    );
    println!(
        "DIMM: DDR4-3200, {} GB/DIMM, {} ranks, {} bank groups/rank, {} banks/group",
        cfg.capacity_bytes / (1 << 30),
        cfg.ranks,
        cfg.bank_groups,
        cfg.banks_per_group
    );
    println!("Timing: tRC={} tRCD={} tCL={} tRP={} tBL={} tCCD_S={} tCCD_L={} tRRD_S={} tRRD_L={} tFAW={}",
        t.t_rc, t.t_rcd, t.t_cl, t.t_rp, t.t_bl, t.t_ccd_s, t.t_ccd_l, t.t_rrd_s, t.t_rrd_l, t.t_faw);
    println!(
        "DIMM-link: {:.0} GB/s per link, {} lanes, {:.2} pJ/bit",
        cfg.link_bandwidth / 1e9,
        cfg.link_lanes,
        cfg.link_energy_pj_per_bit
    );
    println!("\nDerived: NDP read bandwidth {:.1} GB/s/DIMM, GEMV peak {:.0} GFLOPS/DIMM, {} activation lanes",
        dram.internal_bandwidth() / 1e9, gemv.peak_flops() / 1e9, act.lanes());
}
