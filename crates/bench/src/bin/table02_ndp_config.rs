//! Table II: configuration details of the NDP-DIMMs used by Hermes.

use hermes_ndp::{ActivationUnit, DimmConfig, DramBandwidthModel, GemvUnit};

fn main() {
    let cfg = DimmConfig::ddr4_3200();
    println!("# Table II — NDP-DIMM configuration");
    println!(
        "NDP core: {} multipliers, 256 KB buffer, {:.0} MHz, {:.2} mm^2/core",
        cfg.gemv_multipliers,
        cfg.ndp_clock_hz / 1e6,
        cfg.ndp_core_area_mm2
    );
    println!(
        "DIMM: DDR4-3200, {} GB/DIMM, {} ranks, {} bank groups/rank, {} banks/group",
        cfg.capacity_bytes / (1 << 30),
        cfg.ranks,
        cfg.bank_groups,
        cfg.banks_per_group
    );
    let t = &cfg.timing;
    println!("Timing: tRC={} tRCD={} tCL={} tRP={} tBL={} tCCD_S={} tCCD_L={} tRRD_S={} tRRD_L={} tFAW={}",
        t.t_rc, t.t_rcd, t.t_cl, t.t_rp, t.t_bl, t.t_ccd_s, t.t_ccd_l, t.t_rrd_s, t.t_rrd_l, t.t_faw);
    println!(
        "DIMM-link: {:.0} GB/s per link, {} lanes, {:.2} pJ/bit",
        cfg.link_bandwidth / 1e9,
        cfg.link_lanes,
        cfg.link_energy_pj_per_bit
    );
    let dram = DramBandwidthModel::new(cfg.clone());
    let gemv = GemvUnit::new(&cfg);
    let act = ActivationUnit::new(&cfg);
    println!("\nDerived: NDP read bandwidth {:.1} GB/s/DIMM, GEMV peak {:.0} GFLOPS/DIMM, {} activation lanes",
        dram.internal_bandwidth() / 1e9, gemv.peak_flops() / 1e9, act.lanes());
}
