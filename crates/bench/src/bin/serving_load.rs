//! Serving-load sweep: throughput and latency versus offered load for
//! Hermes and the four baselines under open-loop request arrivals.
//!
//! For each system and arrival process (Poisson and bursty), the sweep
//! offers an increasing request rate to the continuous-batching simulator
//! and reports goodput, tail TTFT/TPOT and queueing delay; a second table
//! compares continuous against static batching at a moderate load. This is
//! the serving-scenario counterpart of the paper's closed-loop Figs. 9/11.
//!
//! Run with: `cargo run --release -p hermes-bench --bin serving_load`

use hermes_core::{ArrivalProcess, ServingReport, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;
use hermes_serve::{simulate, AdmissionConfig, BatchingPolicy, ServingSimulation};

/// Hermes plus the four baselines of the Fig. 9 lineup that take an offered
/// load (the TensorRT-LLM reference is covered by the closed-loop figures).
fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Accelerate,
        SystemKind::FlexGen,
        SystemKind::DejaVu,
        SystemKind::hermes_base(),
        SystemKind::hermes(),
    ]
}

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt30B);
    w.prompt_len = 64;
    w.gen_len = 32;
    w
}

fn row(report: &ServingReport) -> String {
    format!(
        "{:>7.3} | {:>8.2} | {:>8.2} | {:>8.2} | {:>8.1} | {:>8.1} | {:>9.2}",
        report.goodput_rps(),
        report.tokens_per_second(),
        report.ttft.p50,
        report.ttft.p95,
        report.tpot.p95 * 1e3,
        report.tpot.p99 * 1e3,
        report.queue_delay.mean,
    )
}

fn main() {
    let config = SystemConfig::paper_default();
    let num_requests = 24;
    let admission = AdmissionConfig::unlimited().with_max_batch(8);
    let loads = [0.05, 0.2, 0.8, 3.2];

    type ArrivalFactory = fn(f64) -> ArrivalProcess;
    let arrivals: [(&str, ArrivalFactory); 2] = [
        ("Poisson", |rate| ArrivalProcess::Poisson { rate }),
        ("bursty (burst=6)", |rate| ArrivalProcess::Bursty {
            rate,
            burst: 6,
        }),
    ];
    for (arrival_name, arrival_of) in arrivals {
        println!("\n# Serving load sweep — OPT-30B, {arrival_name} arrivals, continuous batching");
        println!(
            "| system | offered rps | goodput rps | tokens/s | TTFT p50 s | TTFT p95 s | \
             TPOT p95 ms | TPOT p99 ms | queue mean s |"
        );
        println!("|---|---|---|---|---|---|---|---|---|");
        for kind in systems() {
            for &rate in &loads {
                let sim = ServingSimulation::new(template(), arrival_of(rate), num_requests)
                    .with_admission(admission);
                match simulate(kind, &config, &sim) {
                    Ok(outcome) => println!(
                        "| {} | {:>7.2} | {} |",
                        kind.name(),
                        rate,
                        row(&outcome.report)
                    ),
                    Err(e) => println!("| {} | {:>7.2} | N.P. ({e}) |", kind.name(), rate),
                }
            }
        }
    }

    println!("\n# Continuous vs. static batching — Hermes, Poisson 0.6 rps, 16 requests");
    println!("| policy | goodput rps | tokens/s | TTFT p50 s | TTFT p95 s | TPOT p95 ms | TPOT p99 ms | queue mean s |");
    println!("|---|---|---|---|---|---|---|---|");
    for policy in [BatchingPolicy::Continuous, BatchingPolicy::Static] {
        let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.6 }, 16)
            .with_policy(policy);
        let outcome = simulate(SystemKind::hermes(), &config, &sim).expect("valid scenario");
        println!("| {} | {} |", policy.name(), row(&outcome.report));
    }
}
