//! Serving-load sweep: throughput and latency versus offered load for
//! Hermes and the four baselines under open-loop request arrivals.
//!
//! For each system and arrival process (Poisson and bursty), the sweep
//! offers an increasing request rate to the continuous-batching simulator
//! and reports goodput, tail TTFT/TPOT and queueing delay; a second table
//! compares continuous against static batching at a moderate load, a
//! third compares stall-the-world against chunked prefill (the in-flight
//! p95 TPOT columns are the point of the chunked-prefill scheduler), and a
//! fourth compares FCFS against priority and EDF scheduling with
//! KV-pressure preemption under bursty overload (high-priority tail TTFT
//! collapses while every class still completes). This is the
//! serving-scenario counterpart of the paper's closed-loop Figs. 9/11.
//!
//! Run with: `cargo run --release -p hermes-bench --bin serving_load`
//!
//! Pass `--json` to emit the whole sweep as machine-readable JSON (one
//! object with a `results` array of `{section, system, arrival,
//! offered_rps, report}` entries) instead of the tables.

use serde::{Deserialize, Serialize};

use hermes_core::{
    ArrivalProcess, PrioritySpec, RequestClass, ServingReport, SystemConfig, SystemKind, Workload,
};
use hermes_model::ModelId;
use hermes_serve::{
    request_kv_bytes, simulate, AdmissionConfig, BatchingPolicy, PreemptionPolicy, PrefillPolicy,
    SchedulingPolicy, ServingSimulation,
};

/// Hermes plus the four baselines of the Fig. 9 lineup that take an offered
/// load (the TensorRT-LLM reference is covered by the closed-loop figures).
fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Accelerate,
        SystemKind::FlexGen,
        SystemKind::DejaVu,
        SystemKind::hermes_base(),
        SystemKind::hermes(),
    ]
}

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt30B);
    w.prompt_len = 64;
    w.gen_len = 32;
    w
}

/// One simulated scenario of the sweep, tagged with the table it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SweepEntry {
    /// Which sweep produced this entry (`load-sweep`, `batching-policy` or
    /// `prefill-policy`).
    section: String,
    /// Display name of the simulated system.
    system: String,
    /// Display name of the arrival process.
    arrival: String,
    /// Offered load handed to the arrival spec (requests/s).
    offered_rps: f64,
    /// The aggregate serving report of the scenario.
    report: ServingReport,
}

/// Everything the sweep produced, in emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SweepOutput {
    /// Model under test.
    model: String,
    /// Requests offered per scenario in the load sweep.
    num_requests: usize,
    /// Every simulated scenario.
    results: Vec<SweepEntry>,
}

fn row(report: &ServingReport) -> String {
    format!(
        "{:>7.3} | {:>8.2} | {:>8.2} | {:>8.2} | {:>8.1} | {:>8.1} | {:>9.2}",
        report.goodput_rps(),
        report.tokens_per_second(),
        report.ttft.p50,
        report.ttft.p95,
        report.tpot.p95 * 1e3,
        report.tpot.p99 * 1e3,
        report.queue_delay.mean,
    )
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::paper_default();
    let num_requests = 24;
    let admission = AdmissionConfig::unlimited().with_max_batch(8);
    let loads = [0.05, 0.2, 0.8, 3.2];
    let mut results: Vec<SweepEntry> = Vec::new();

    type ArrivalFactory = fn(f64) -> ArrivalProcess;
    let arrivals: [(&str, ArrivalFactory); 2] = [
        ("Poisson", |rate| ArrivalProcess::Poisson { rate }),
        ("bursty (burst=6)", |rate| ArrivalProcess::Bursty {
            rate,
            burst: 6,
        }),
    ];
    for (arrival_name, arrival_of) in arrivals {
        if !json {
            println!(
                "\n# Serving load sweep — OPT-30B, {arrival_name} arrivals, continuous batching"
            );
            println!(
                "| system | offered rps | goodput rps | tokens/s | TTFT p50 s | TTFT p95 s | \
                 TPOT p95 ms | TPOT p99 ms | queue mean s |"
            );
            println!("|---|---|---|---|---|---|---|---|---|");
        }
        for kind in systems() {
            for &rate in &loads {
                let sim = ServingSimulation::new(template(), arrival_of(rate), num_requests)
                    .with_admission(admission);
                match simulate(kind, &config, &sim) {
                    Ok(outcome) => {
                        if !json {
                            println!(
                                "| {} | {:>7.2} | {} |",
                                kind.name(),
                                rate,
                                row(&outcome.report)
                            );
                        }
                        results.push(SweepEntry {
                            section: "load-sweep".to_string(),
                            system: kind.name(),
                            arrival: arrival_name.to_string(),
                            offered_rps: rate,
                            report: outcome.report,
                        });
                    }
                    Err(e) => {
                        if json {
                            // Keep stdout valid JSON but leave a trace of the
                            // dropped scenario so a shrunken `results` array
                            // is explainable.
                            eprintln!(
                                "skipping {} at {rate} rps ({arrival_name}): {e}",
                                kind.name()
                            );
                        } else {
                            println!("| {} | {:>7.2} | N.P. ({e}) |", kind.name(), rate);
                        }
                    }
                }
            }
        }
    }

    if !json {
        println!("\n# Continuous vs. static batching — Hermes, Poisson 0.6 rps, 16 requests");
        println!("| policy | goodput rps | tokens/s | TTFT p50 s | TTFT p95 s | TPOT p95 ms | TPOT p99 ms | queue mean s |");
        println!("|---|---|---|---|---|---|---|---|");
    }
    for policy in [BatchingPolicy::Continuous, BatchingPolicy::Static] {
        let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.6 }, 16)
            .with_policy(policy);
        let outcome = simulate(SystemKind::hermes(), &config, &sim).expect("valid scenario");
        if !json {
            println!("| {} | {} |", policy.name(), row(&outcome.report));
        }
        results.push(SweepEntry {
            section: "batching-policy".to_string(),
            system: SystemKind::hermes().name(),
            arrival: "Poisson".to_string(),
            offered_rps: 0.6,
            report: outcome.report,
        });
    }

    // Stall-the-world vs. chunked prefill: same offered work, but chunking
    // bounds the prefill slice each in-flight decode token absorbs, so the
    // TPOT tail collapses while the joiner's own TTFT pays for it.
    if !json {
        println!(
            "\n# Stall-the-world vs. chunked prefill — Poisson 0.6 rps, 16 requests, \
             continuous batching"
        );
        println!(
            "| system | prefill | TPOT p50 ms | TPOT p95 ms | TPOT p99 ms | TTFT p95 s | \
             tokens/s |"
        );
        println!("|---|---|---|---|---|---|---|");
    }
    for kind in [SystemKind::hermes_base(), SystemKind::hermes()] {
        for prefill in [
            PrefillPolicy::StallTheWorld,
            PrefillPolicy::Chunked {
                chunk_tokens: 8,
                budget: 8,
            },
        ] {
            let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.6 }, 16)
                .with_prefill(prefill);
            let outcome = simulate(kind, &config, &sim).expect("valid scenario");
            if !json {
                println!(
                    "| {} | {} | {:>8.1} | {:>8.1} | {:>8.1} | {:>7.2} | {:>8.2} |",
                    kind.name(),
                    prefill.name(),
                    outcome.report.tpot.p50 * 1e3,
                    outcome.report.tpot.p95 * 1e3,
                    outcome.report.tpot.p99 * 1e3,
                    outcome.report.ttft.p95,
                    outcome.report.tokens_per_second(),
                );
            }
            results.push(SweepEntry {
                section: "prefill-policy".to_string(),
                system: kind.name(),
                arrival: "Poisson".to_string(),
                offered_rps: 0.6,
                report: outcome.report,
            });
        }
    }

    // FCFS vs priority vs EDF under bursty overload with a two-seat KV cap:
    // interactive tier-0 requests (3 s TTFT deadline) interleaved with
    // best-effort tier-2 bulk. Priority/EDF run with KV-pressure preemption
    // (evict-and-refill); the high class's tail TTFT and SLO attainment are
    // the point, the completion column shows nobody starves.
    if !json {
        println!(
            "\n# Scheduling under bursty overload — Hermes, bursty 1.0 rps (burst=8), \
             16 requests, 2 KV seats"
        );
        println!(
            "| scheduling | preemption | completed | evictions | hi TTFT p50 s | hi TTFT p95 s | \
             lo TTFT p95 s | hi SLO | tokens/s |"
        );
        println!("|---|---|---|---|---|---|---|---|---|");
    }
    let template_kv = template();
    let kv_cap = request_kv_bytes(&template_kv, template_kv.prompt_len, template_kv.gen_len) * 2;
    for (scheduling, preemption) in [
        (SchedulingPolicy::Fcfs, PreemptionPolicy::None),
        (SchedulingPolicy::Priority, PreemptionPolicy::EvictAndRefill),
        (SchedulingPolicy::Edf, PreemptionPolicy::EvictAndRefill),
    ] {
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Bursty {
                rate: 1.0,
                burst: 8,
            },
            16,
        )
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(kv_cap))
        .with_classes(PrioritySpec::Cycle {
            classes: vec![
                RequestClass::new(0).with_ttft_deadline(3.0),
                RequestClass::new(2),
            ],
        })
        .with_scheduling(scheduling)
        .with_preemption(preemption);
        let outcome = simulate(SystemKind::hermes(), &config, &sim).expect("valid scenario");
        if !json {
            let report = &outcome.report;
            let high = report.class(0).expect("tier 0 offered");
            let low = report.class(2).expect("tier 2 offered");
            println!(
                "| {} | {} | {:>5}/16 | {:>5} | {:>8.2} | {:>8.2} | {:>8.2} | {:>5.2} | {:>7.2} |",
                scheduling.name(),
                preemption.name(),
                report.completed,
                report.preemptions,
                high.ttft.p50,
                high.ttft.p95,
                low.ttft.p95,
                high.slo_attainment().unwrap_or(1.0),
                report.tokens_per_second(),
            );
        }
        results.push(SweepEntry {
            section: "scheduling-policy".to_string(),
            system: SystemKind::hermes().name(),
            arrival: "bursty (burst=8)".to_string(),
            offered_rps: 1.0,
            report: outcome.report,
        });
    }

    if json {
        let output = SweepOutput {
            model: "OPT-30B".to_string(),
            num_requests,
            results,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable sweep")
        );
    }
}
