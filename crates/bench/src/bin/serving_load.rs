//! Serving-load sweep: throughput and latency versus offered load for
//! Hermes and the four baselines under open-loop request arrivals.
//!
//! For each system and arrival process (Poisson and bursty), the sweep
//! offers an increasing request rate to the continuous-batching simulator
//! and reports goodput, tail TTFT/TPOT and queueing delay; a second table
//! compares continuous against static batching at a moderate load, a
//! third compares stall-the-world against chunked prefill (the in-flight
//! p95 TPOT columns are the point of the chunked-prefill scheduler), and a
//! fourth compares FCFS against priority and EDF scheduling with
//! KV-pressure preemption under bursty overload (high-priority tail TTFT
//! collapses while every class still completes), including a priority row
//! over the paged KV pool with swap-out preemption, and a fifth compares a
//! shared-system-prompt load cold (no cache) against warm (radix prefix
//! cache over the paged pool, with and without prefix-affinity
//! scheduling) — the hit rate, reused-vs-recomputed prefill tokens and
//! hit/miss TTFT split are the point. This is the serving-scenario
//! counterpart of the paper's closed-loop Figs. 9/11.
//!
//! Run with: `cargo run --release -p hermes-bench --bin serving_load`
//!
//! Flags:
//! - `--json` emits the whole sweep as machine-readable JSON (one object
//!   with a `results` array of `{section, system, arrival, offered_rps,
//!   report}` entries) instead of the tables.
//! - `--threads N` runs the grid on N worker threads (default 1). The
//!   emitted rows are byte-identical at every thread count.
//! - `--bench-json [PATH]` skips the sweep and instead measures simulator
//!   throughput (simulated requests per wall-clock second on 10k- and
//!   100k-request Poisson traces, plus 10k chunked-prefill, preemption and
//!   paged-swap-out variants), writing `BENCH_serving_sim.json` (or PATH).
//!   Built with `--features reference`, it also times the retained
//!   sort-based scheduler and records the speedup.

use hermes_bench::serving_sweep::{run_sweep, SweepEntry, SweepOutput};
use hermes_bench::throughput;
use hermes_core::ServingReport;

fn row(report: &ServingReport) -> String {
    format!(
        "{:>7.3} | {:>8.2} | {:>8.2} | {:>8.2} | {:>8.1} | {:>8.1} | {:>9.2}",
        report.goodput_rps(),
        report.tokens_per_second(),
        report.ttft.p50,
        report.ttft.p95,
        report.tpot.p95 * 1e3,
        report.tpot.p99 * 1e3,
        report.queue_delay.mean,
    )
}

/// Print the human-readable tables from the sweep's entries, section by
/// section (the entries arrive in emission order).
fn print_tables(output: &SweepOutput) {
    let by_section = |section: &str| -> Vec<&SweepEntry> {
        output
            .results
            .iter()
            .filter(|e| e.section == section)
            .collect()
    };

    let mut last_arrival = String::new();
    for entry in by_section("load-sweep") {
        if entry.arrival != last_arrival {
            println!(
                "\n# Serving load sweep — OPT-30B, {} arrivals, continuous batching",
                entry.arrival
            );
            println!(
                "| system | offered rps | goodput rps | tokens/s | TTFT p50 s | TTFT p95 s | \
                 TPOT p95 ms | TPOT p99 ms | queue mean s |"
            );
            println!("|---|---|---|---|---|---|---|---|---|");
            last_arrival = entry.arrival.clone();
        }
        println!(
            "| {} | {:>7.2} | {} |",
            entry.system,
            entry.offered_rps,
            row(&entry.report)
        );
    }

    println!("\n# Continuous vs. static batching — Hermes, Poisson 0.6 rps, 16 requests");
    println!("| policy | goodput rps | tokens/s | TTFT p50 s | TTFT p95 s | TPOT p95 ms | TPOT p99 ms | queue mean s |");
    println!("|---|---|---|---|---|---|---|---|");
    for entry in by_section("batching-policy") {
        println!("| {} | {} |", entry.report.policy, row(&entry.report));
    }

    println!(
        "\n# Stall-the-world vs. chunked prefill — Poisson 0.6 rps, 16 requests, \
         continuous batching"
    );
    println!(
        "| system | prefill | TPOT p50 ms | TPOT p95 ms | TPOT p99 ms | TTFT p95 s | \
         tokens/s |"
    );
    println!("|---|---|---|---|---|---|---|");
    for entry in by_section("prefill-policy") {
        println!(
            "| {} | {} | {:>8.1} | {:>8.1} | {:>8.1} | {:>7.2} | {:>8.2} |",
            entry.system,
            entry.report.prefill_policy,
            entry.report.tpot.p50 * 1e3,
            entry.report.tpot.p95 * 1e3,
            entry.report.tpot.p99 * 1e3,
            entry.report.ttft.p95,
            entry.report.tokens_per_second(),
        );
    }

    println!(
        "\n# Scheduling under bursty overload — Hermes, bursty 1.0 rps (burst=8), \
         16 requests, 2 KV seats"
    );
    println!(
        "| scheduling | preemption | completed | evictions | hi TTFT p50 s | hi TTFT p95 s | \
         lo TTFT p95 s | hi SLO | tokens/s |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for entry in by_section("scheduling-policy") {
        let report = &entry.report;
        let high = report.class(0).expect("tier 0 offered");
        let low = report.class(2).expect("tier 2 offered");
        println!(
            "| {} | {} | {:>5}/16 | {:>5} | {:>8.2} | {:>8.2} | {:>8.2} | {:>5.2} | {:>7.2} |",
            report.scheduling,
            report.preemption_policy,
            report.completed,
            report.preemptions,
            high.ttft.p50,
            high.ttft.p95,
            low.ttft.p95,
            high.slo_attainment().unwrap_or(1.0),
            report.tokens_per_second(),
        );
    }

    println!(
        "\n# Shared prompts, cold vs. warm prefix cache — Hermes, Poisson 0.6 rps, \
         16 requests, 2 shared 48-token prefixes"
    );
    println!(
        "| scheduling | cache | hit rate | reused toks | recomputed toks | TTFT p50 s | \
         hit TTFT p50 s | miss TTFT p50 s | tokens/s |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for entry in by_section("prefix-cache") {
        let report = &entry.report;
        match &report.prefix {
            Some(prefix) => println!(
                "| {} | warm | {:>5.2} | {:>6} | {:>6} | {:>8.2} | {:>8.2} | {:>8.2} | {:>7.2} |",
                report.scheduling,
                prefix.hit_rate,
                prefix.reused_prefill_tokens,
                prefix.recomputed_prefill_tokens,
                report.ttft.p50,
                prefix.ttft_hit.p50,
                prefix.ttft_miss.p50,
                report.tokens_per_second(),
            ),
            None => println!(
                "| {} | cold |     - |      - |      - | {:>8.2} |        - |        - | {:>7.2} |",
                report.scheduling,
                report.ttft.p50,
                report.tokens_per_second(),
            ),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or(1);

    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("BENCH_serving_sim.json");
        let output = throughput::run_bench();
        let serialized = serde_json::to_string_pretty(&output).expect("serializable bench output");
        // Round-trip through the parser so a malformed emission can never
        // be committed silently.
        let parsed: throughput::BenchOutput =
            serde_json::from_str(&serialized).expect("emitted bench JSON parses back");
        assert_eq!(parsed, output);
        std::fs::write(path, format!("{serialized}\n")).expect("writable bench output path");
        for entry in &output.entries {
            match entry.speedup_vs_reference {
                Some(speedup) => eprintln!(
                    "{}: {:.0} simulated requests/s ({:.2} s) — {speedup:.1}x vs reference",
                    entry.trace, entry.requests_per_second, entry.seconds
                ),
                None => eprintln!(
                    "{}: {:.0} simulated requests/s ({:.2} s)",
                    entry.trace, entry.requests_per_second, entry.seconds
                ),
            }
        }
        eprintln!("wrote {path}");
        return;
    }

    let result = run_sweep(threads);
    for note in &result.skipped {
        eprintln!("{note}");
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result.output).expect("serializable sweep")
        );
    } else {
        print_tables(&result.output);
    }
}
