//! Section IV-A claim: DIMM-link reduces cold-neuron migration overhead on
//! OPT-66B from 5.3% of runtime (host-mediated) to below 0.2%.

use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;
use hermes_ndp::{DimmConfig, DimmLink, HostMediatedPath};

fn main() {
    let config = SystemConfig::paper_default();
    let workload = Workload::paper_default(ModelId::Opt66B);
    let report = hermes_core::try_run_system(SystemKind::hermes(), &workload, &config)
        .expect("Hermes supports OPT-66B on the paper platform");
    let decode = report.breakdown.decode_total();

    // Migration volume observed by the engine rides DIMM-links; replay the
    // same volume through the host-mediated path for comparison.
    let dimm = DimmConfig::ddr4_3200();
    let link = DimmLink::new(&dimm);
    let host = HostMediatedPath::new(&dimm);
    // Approximate migrated bytes per window from the engine's exposed
    // migration plus what was hidden under projection: use a representative
    // 64 MiB/window remap volume for OPT-66B.
    let migrated_bytes_total: u64 = 64 << 20;
    let via_link = link.transfer_time(migrated_bytes_total);
    let via_host = host.transfer_time(migrated_bytes_total);
    println!("# DIMM-link vs host-mediated migration (OPT-66B, batch 1)");
    println!("decode time: {:.2} s", decode);
    println!(
        "migration via DIMM-link: {:.4} s ({:.2}% of decode)",
        via_link,
        100.0 * via_link / decode
    );
    println!(
        "migration via host:      {:.4} s ({:.2}% of decode)",
        via_host,
        100.0 * via_host / decode
    );
    println!("DIMM-link speedup: {:.1}x", via_host / via_link);
    println!(
        "exposed migration time in the Hermes run: {:.4} s ({:.2}% of decode)",
        report.breakdown.migration,
        100.0 * report.breakdown.migration / decode
    );
}
