//! Fig. 17: Hermes (1× RTX 4090 + 8 NDP-DIMMs) vs TensorRT-LLM (5× A100)
//! on LLaMA2-70B across batch sizes, with the relative efficiency and the
//! hardware budget comparison of Section V-F.

use hermes_bench::run_cell;
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let config = SystemConfig::paper_default();
    let batches = [1usize, 2, 4, 8, 16];
    println!("# Fig. 17 — Hermes vs TensorRT-LLM (5x A100), LLaMA2-70B (tokens/s)");
    println!("| batch | TensorRT-LLM (A100) | Hermes | Hermes efficiency |");
    println!("|---|---|---|---|");
    for &batch in &batches {
        let workload = Workload::paper_default(ModelId::Llama2_70B).with_batch(batch);
        let trt = run_cell(SystemKind::TensorRtLlm { num_gpus: 5 }, &workload, &config);
        let hermes = run_cell(SystemKind::hermes(), &workload, &config);
        let ratio = match (hermes.tokens_per_second, trt.tokens_per_second) {
            (Some(h), Some(t)) if t > 0.0 => format!("{:.1}%", 100.0 * h / t),
            _ => "-".to_string(),
        };
        println!(
            "| {batch} | {} | {} | {} |",
            trt.formatted(),
            hermes.formatted(),
            ratio
        );
    }
    println!(
        "\nHardware budget: Hermes ≈ $2,500 (RTX 4090 + 8 DDR4 NDP-DIMMs) vs ≈ $50,000 (5x A100)."
    );
}
