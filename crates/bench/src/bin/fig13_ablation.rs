//! Fig. 13: ablation of the offline/online scheduling strategies, measured
//! as normalized speedup of the sparse-FC (MLP-block) latency over the
//! Hermes-random baseline.
//!
//! Run with: `cargo run --release -p hermes-bench --bin fig13_ablation`
//!
//! Pass `--json` to emit the figure as machine-readable JSON (one table per
//! model, each a `rows` array of per-variant speedups across the batch
//! sizes) instead of the Markdown tables.

use serde::{Deserialize, Serialize};

use hermes_core::{HermesOptions, HermesSystem, SystemConfig, Workload};
use hermes_model::ModelId;

/// One variant's speedups over Hermes-random across the batch sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureRow {
    /// Variant name.
    variant: String,
    /// Speedup over the Hermes-random baseline, per batch size.
    speedups: Vec<f64>,
}

/// One model's table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureTable {
    /// Model evaluated.
    model: String,
    /// Per-variant rows.
    rows: Vec<FigureRow>,
}

/// Everything the figure produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureOutput {
    /// Batch sizes evaluated, in column order.
    batches: Vec<usize>,
    /// One table per model.
    tables: Vec<FigureTable>,
}

fn fc_latency(model: ModelId, batch: usize, options: HermesOptions, config: &SystemConfig) -> f64 {
    let workload = Workload::paper_default(model).with_batch(batch);
    HermesSystem::new(workload, config.clone(), options)
        .run()
        .map(|r| r.breakdown.fc)
        .unwrap_or(f64::NAN)
}

/// A named scheduling-ablation variant (constructor kept as a fn pointer so
/// the table below stays data).
type Variant = (&'static str, fn() -> HermesOptions);

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::paper_default();
    let variants: [Variant; 6] = [
        ("Hermes-random", HermesOptions::random_mapping),
        ("Hermes-partition", HermesOptions::partition_only),
        ("Hermes-token-adjustment", HermesOptions::token_adjustment),
        ("Hermes-layer-adjustment", HermesOptions::layer_adjustment),
        ("Hermes-adjustment", HermesOptions::adjustment_only),
        ("Hermes", HermesOptions::full),
    ];
    let batches = [1usize, 4, 16];

    // Every (model, variant, batch) cell measured once, shared by both
    // output formats.
    let mut tables = Vec::new();
    for model in [ModelId::Llama2_13B, ModelId::Llama2_70B] {
        let mut baseline = vec![0.0f64; batches.len()];
        let mut rows = Vec::new();
        for (row, (name, make)) in variants.iter().enumerate() {
            let mut speedups = Vec::new();
            for (bi, &batch) in batches.iter().enumerate() {
                let fc = fc_latency(model, batch, make(), &config);
                if row == 0 {
                    baseline[bi] = fc;
                }
                speedups.push(baseline[bi] / fc);
            }
            rows.push(FigureRow {
                variant: name.to_string(),
                speedups,
            });
        }
        tables.push(FigureTable {
            model: model.to_string(),
            rows,
        });
    }

    if json {
        let output = FigureOutput {
            batches: batches.to_vec(),
            tables,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable figure")
        );
        return;
    }

    println!("# Fig. 13 — scheduling ablation (speedup over Hermes-random, FC latency)");
    for table in &tables {
        println!("\n## {}", table.model);
        println!(
            "| variant | {} |",
            batches.map(|b| format!("b{b}")).join(" | ")
        );
        println!("|---|---|---|---|");
        for row in &table.rows {
            let cells: Vec<String> = row.speedups.iter().map(|s| format!("{s:.2}x")).collect();
            println!("| {} | {} |", row.variant, cells.join(" | "));
        }
    }
}
