//! Fig. 13: ablation of the offline/online scheduling strategies, measured
//! as normalized speedup of the sparse-FC (MLP-block) latency over the
//! Hermes-random baseline.

use hermes_core::{HermesOptions, HermesSystem, SystemConfig, Workload};
use hermes_model::ModelId;

fn fc_latency(model: ModelId, batch: usize, options: HermesOptions, config: &SystemConfig) -> f64 {
    let workload = Workload::paper_default(model).with_batch(batch);
    HermesSystem::new(workload, config.clone(), options)
        .run()
        .map(|r| r.breakdown.fc)
        .unwrap_or(f64::NAN)
}

/// A named scheduling-ablation variant (constructor kept as a fn pointer so
/// the table below stays data).
type Variant = (&'static str, fn() -> HermesOptions);

fn main() {
    let config = SystemConfig::paper_default();
    let variants: [Variant; 6] = [
        ("Hermes-random", HermesOptions::random_mapping),
        ("Hermes-partition", HermesOptions::partition_only),
        ("Hermes-token-adjustment", HermesOptions::token_adjustment),
        ("Hermes-layer-adjustment", HermesOptions::layer_adjustment),
        ("Hermes-adjustment", HermesOptions::adjustment_only),
        ("Hermes", HermesOptions::full),
    ];
    println!("# Fig. 13 — scheduling ablation (speedup over Hermes-random, FC latency)");
    let batches = [1usize, 4, 16];
    for model in [ModelId::Llama2_13B, ModelId::Llama2_70B] {
        println!("\n## {model}");
        println!(
            "| variant | {} |",
            batches.map(|b| format!("b{b}")).join(" | ")
        );
        println!("|---|---|---|---|");
        let mut baseline = vec![0.0f64; batches.len()];
        for (row, (name, make)) in variants.iter().enumerate() {
            let mut cells = Vec::new();
            for (bi, &batch) in batches.iter().enumerate() {
                let fc = fc_latency(model, batch, make(), &config);
                if row == 0 {
                    baseline[bi] = fc;
                }
                cells.push(format!("{:.2}x", baseline[bi] / fc));
            }
            println!("| {name} | {} |", cells.join(" | "));
        }
    }
}
