//! Fig. 14: throughput of four LLMs as the number of NDP-DIMMs grows
//! (1–16); models that do not fit print "N.P.".

use hermes_bench::run_cell;
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let dimm_counts = [1usize, 2, 4, 8, 16];
    println!("# Fig. 14 — throughput vs number of NDP-DIMMs (tokens/s, batch 1)");
    println!(
        "| model | {} |",
        dimm_counts.map(|d| format!("{d} DIMMs")).join(" | ")
    );
    println!("|---|---|---|---|---|---|");
    for model in [
        ModelId::Opt13B,
        ModelId::Opt30B,
        ModelId::Falcon40B,
        ModelId::Llama2_70B,
    ] {
        let workload = Workload::paper_default(model);
        let cells: Vec<String> = dimm_counts
            .iter()
            .map(|&d| {
                let config = SystemConfig::paper_default().with_num_dimms(d);
                run_cell(SystemKind::hermes(), &workload, &config).formatted()
            })
            .collect();
        println!("| {model} | {} |", cells.join(" | "));
    }
}
