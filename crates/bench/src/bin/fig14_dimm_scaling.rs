//! Fig. 14: throughput of four LLMs as the number of NDP-DIMMs grows
//! (1–16); models that do not fit print "N.P.".
//!
//! Run with: `cargo run --release -p hermes-bench --bin fig14_dimm_scaling`
//!
//! Pass `--json` to emit the figure as machine-readable JSON (one object
//! with a `rows` array of per-model cells across the DIMM counts) instead
//! of the Markdown table.

use serde::{Deserialize, Serialize};

use hermes_bench::run_cell;
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

/// One (model, DIMM count) cell of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureCell {
    /// NDP-DIMMs in the configuration.
    num_dimms: usize,
    /// Tokens/s, or `None` when the model does not fit ("N.P.").
    tokens_per_second: Option<f64>,
}

/// One model's row across every DIMM count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureRow {
    /// Model evaluated.
    model: String,
    /// One cell per DIMM count, in `dimm_counts` order.
    cells: Vec<FigureCell>,
}

/// Everything the figure produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureOutput {
    /// DIMM counts evaluated, in column order.
    dimm_counts: Vec<usize>,
    /// Per-model rows.
    rows: Vec<FigureRow>,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let dimm_counts = [1usize, 2, 4, 8, 16];
    let models = [
        ModelId::Opt13B,
        ModelId::Opt30B,
        ModelId::Falcon40B,
        ModelId::Llama2_70B,
    ];
    let measured: Vec<Vec<hermes_bench::Cell>> = models
        .iter()
        .map(|&model| {
            let workload = Workload::paper_default(model);
            dimm_counts
                .iter()
                .map(|&d| {
                    let config = SystemConfig::paper_default().with_num_dimms(d);
                    run_cell(SystemKind::hermes(), &workload, &config)
                })
                .collect()
        })
        .collect();

    if json {
        let output = FigureOutput {
            dimm_counts: dimm_counts.to_vec(),
            rows: models
                .iter()
                .zip(&measured)
                .map(|(model, cells)| FigureRow {
                    model: model.to_string(),
                    cells: dimm_counts
                        .iter()
                        .zip(cells)
                        .map(|(&num_dimms, c)| FigureCell {
                            num_dimms,
                            tokens_per_second: c.tokens_per_second,
                        })
                        .collect(),
                })
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable figure")
        );
        return;
    }

    println!("# Fig. 14 — throughput vs number of NDP-DIMMs (tokens/s, batch 1)");
    println!(
        "| model | {} |",
        dimm_counts.map(|d| format!("{d} DIMMs")).join(" | ")
    );
    println!("|---|---|---|---|---|---|");
    for (model, cells) in models.iter().zip(&measured) {
        let row: Vec<String> = cells.iter().map(|c| c.formatted()).collect();
        println!("| {model} | {} |", row.join(" | "));
    }
}
