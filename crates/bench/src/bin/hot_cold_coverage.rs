//! The 20%/80% hot/cold observation of Section I / III-A: hot neurons are
//! ~20% of the parameters but ~80% of the computation (16x intensity gap).

use hermes_model::{ModelConfig, ModelId};
use hermes_sparsity::{HotColdCoverage, NeuronFrequencies, SparsityProfile, TraceGenerator};

fn main() {
    println!("# Hot/cold coverage (Section I / III-A)");
    println!("| model | hot neurons | hot param share | hot compute share | intensity ratio |");
    println!("|---|---|---|---|---|");
    for model in [ModelId::Opt13B, ModelId::Llama2_13B, ModelId::Falcon40B] {
        let mut cfg = ModelConfig::from_id(model);
        cfg.num_layers = 4; // statistics are per-layer; keep the run fast
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 13);
        let trace = gen.generate(96);
        let freqs = NeuronFrequencies::measure(&trace);
        let cov = HotColdCoverage::measure(&cfg, &freqs, profile.hot_fraction);
        println!(
            "| {} | {:.0}% | {:.1}% | {:.1}% | {:.1}x |",
            model,
            100.0 * cov.hot_fraction,
            100.0 * cov.hot_param_share,
            100.0 * cov.hot_compute_share,
            cov.intensity_ratio
        );
    }
}
