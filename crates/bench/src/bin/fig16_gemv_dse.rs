//! Fig. 16: design-space exploration of the number of multipliers in each
//! DIMM's GEMV unit (32–512), normalized to the 32-multiplier design.

use hermes_bench::run_cell;
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let multipliers = [32u32, 64, 128, 256, 512];
    let batches = [1usize, 2, 4, 8, 16];
    println!("# Fig. 16 — GEMV-unit multipliers DSE, OPT-13B (speedup over 32 multipliers)");
    println!(
        "| batch | {} |",
        multipliers.map(|m| m.to_string()).join(" | ")
    );
    println!("|---|---|---|---|---|---|");
    for &batch in &batches {
        let workload = Workload::paper_default(ModelId::Opt13B).with_batch(batch);
        let tps: Vec<f64> = multipliers
            .iter()
            .map(|&m| {
                let config = SystemConfig::paper_default().with_gemv_multipliers(m);
                run_cell(SystemKind::hermes(), &workload, &config)
                    .tokens_per_second
                    .unwrap_or(f64::NAN)
            })
            .collect();
        let cells: Vec<String> = tps.iter().map(|t| format!("{:.2}x", t / tps[0])).collect();
        println!("| {batch} | {} |", cells.join(" | "));
    }
}
