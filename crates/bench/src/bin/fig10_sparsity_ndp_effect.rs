//! Fig. 10: the effect of activation sparsity and of the NDP design —
//! Accelerate vs Hermes-host vs Hermes-base vs Hermes on LLaMA2/Falcon.

use hermes_bench::{geomean_speedup, run_lineup};
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let config = SystemConfig::paper_default();
    let systems = [
        SystemKind::Accelerate,
        SystemKind::hermes_host(),
        SystemKind::hermes_base(),
        SystemKind::hermes(),
    ];
    let models = [ModelId::Llama2_13B, ModelId::Llama2_70B, ModelId::Falcon40B];
    println!("# Fig. 10 — activation sparsity & NDP design, batch 1 (tokens/s)");
    println!("| system | {} |", models.map(|m| m.to_string()).join(" | "));
    println!("|---|---|---|---|");
    let mut per_system: Vec<Vec<hermes_bench::Cell>> = vec![Vec::new(); systems.len()];
    for model in models {
        let workload = Workload::paper_default(model);
        for (i, c) in run_lineup(&systems, &workload, &config)
            .into_iter()
            .enumerate()
        {
            per_system[i].push(c);
        }
    }
    for (i, kind) in systems.iter().enumerate() {
        let row: Vec<String> = per_system[i].iter().map(|c| c.formatted()).collect();
        println!("| {} | {} |", kind.name(), row.join(" | "));
    }
    if let Some(s) = geomean_speedup(&per_system[3], &per_system[2]) {
        println!("Hermes speedup over Hermes-base (value of sparsity): {s:.2}x");
    }
    if let Some(s) = geomean_speedup(&per_system[3], &per_system[1]) {
        println!("Hermes speedup over Hermes-host (value of NDP-DIMMs): {s:.2}x");
    }
    if let Some(s) = geomean_speedup(&per_system[2], &per_system[0]) {
        println!("Hermes-base speedup over Accelerate: {s:.2}x");
    }
}
