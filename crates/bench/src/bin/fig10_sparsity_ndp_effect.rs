//! Fig. 10: the effect of activation sparsity and of the NDP design —
//! Accelerate vs Hermes-host vs Hermes-base vs Hermes on LLaMA2/Falcon.
//!
//! Run with: `cargo run --release -p hermes-bench --bin fig10_sparsity_ndp_effect`
//!
//! Pass `--json` to emit the figure as machine-readable JSON (per-system
//! rows of tokens/s across the models plus the geomean speedup summary)
//! instead of the Markdown table.

use serde::{Deserialize, Serialize};

use hermes_bench::{geomean_speedup, run_lineup};
use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

/// One system's row across every model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureRow {
    /// System display name.
    system: String,
    /// Tokens/s per model (in `models` order), `None` for "N.P.".
    tokens_per_second: Vec<Option<f64>>,
}

/// Everything the figure produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FigureOutput {
    /// Models evaluated, in column order.
    models: Vec<String>,
    /// Per-system rows.
    rows: Vec<FigureRow>,
    /// Hermes over Hermes-base geomean (the value of sparsity).
    sparsity_speedup: Option<f64>,
    /// Hermes over Hermes-host geomean (the value of NDP-DIMMs).
    ndp_speedup: Option<f64>,
    /// Hermes-base over Accelerate geomean.
    base_over_accelerate: Option<f64>,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::paper_default();
    let systems = [
        SystemKind::Accelerate,
        SystemKind::hermes_host(),
        SystemKind::hermes_base(),
        SystemKind::hermes(),
    ];
    let models = [ModelId::Llama2_13B, ModelId::Llama2_70B, ModelId::Falcon40B];

    // system -> cells across models, measured once and shared by both
    // output formats.
    let mut per_system: Vec<Vec<hermes_bench::Cell>> = vec![Vec::new(); systems.len()];
    for model in models {
        let workload = Workload::paper_default(model);
        for (i, c) in run_lineup(&systems, &workload, &config)
            .into_iter()
            .enumerate()
        {
            per_system[i].push(c);
        }
    }
    let sparsity = geomean_speedup(&per_system[3], &per_system[2]);
    let ndp = geomean_speedup(&per_system[3], &per_system[1]);
    let base = geomean_speedup(&per_system[2], &per_system[0]);

    if json {
        let output = FigureOutput {
            models: models.map(|m| m.to_string()).to_vec(),
            rows: systems
                .iter()
                .zip(&per_system)
                .map(|(kind, cells)| FigureRow {
                    system: kind.name(),
                    tokens_per_second: cells.iter().map(|c| c.tokens_per_second).collect(),
                })
                .collect(),
            sparsity_speedup: sparsity,
            ndp_speedup: ndp,
            base_over_accelerate: base,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable figure")
        );
        return;
    }

    println!("# Fig. 10 — activation sparsity & NDP design, batch 1 (tokens/s)");
    println!("| system | {} |", models.map(|m| m.to_string()).join(" | "));
    println!("|---|---|---|---|");
    for (i, kind) in systems.iter().enumerate() {
        let row: Vec<String> = per_system[i].iter().map(|c| c.formatted()).collect();
        println!("| {} | {} |", kind.name(), row.join(" | "));
    }
    if let Some(s) = sparsity {
        println!("Hermes speedup over Hermes-base (value of sparsity): {s:.2}x");
    }
    if let Some(s) = ndp {
        println!("Hermes speedup over Hermes-host (value of NDP-DIMMs): {s:.2}x");
    }
    if let Some(s) = base {
        println!("Hermes-base speedup over Accelerate: {s:.2}x");
    }
}
