//! The `serving_load` sweep grid as a library: scenario construction,
//! (optionally parallel) execution and the JSON output schema, shared by
//! the CLI binary, the criterion benches and the determinism regression
//! test.

use serde::{Deserialize, Serialize};

use hermes_core::{
    ArrivalProcess, PrioritySpec, RequestClass, ServingReport, SystemConfig, SystemKind, Workload,
};
use hermes_model::ModelId;
use hermes_serve::{
    request_kv_bytes, simulate, AdmissionConfig, BatchingPolicy, PreemptionPolicy, PrefillPolicy,
    PrefixCacheMode, PromptSpec, SchedulingPolicy, ServingSimulation, DEFAULT_BLOCK_TOKENS,
};

use crate::sweep::parallel_map;

/// Requests offered per scenario in the load sweep.
pub const NUM_REQUESTS: usize = 24;

/// Hermes plus the four baselines of the Fig. 9 lineup that take an offered
/// load (the TensorRT-LLM reference is covered by the closed-loop figures).
pub fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Accelerate,
        SystemKind::FlexGen,
        SystemKind::DejaVu,
        SystemKind::hermes_base(),
        SystemKind::hermes(),
    ]
}

/// The OPT-30B serving template every sweep scenario shares.
pub fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt30B);
    w.prompt_len = 64;
    w.gen_len = 32;
    w
}

/// One simulated scenario of the sweep, tagged with the table it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepEntry {
    /// Which sweep produced this entry (`load-sweep`, `batching-policy`,
    /// `prefill-policy` or `scheduling-policy`).
    pub section: String,
    /// Display name of the simulated system.
    pub system: String,
    /// Display name of the arrival process.
    pub arrival: String,
    /// Offered load handed to the arrival spec (requests/s).
    pub offered_rps: f64,
    /// The aggregate serving report of the scenario.
    pub report: ServingReport,
}

/// Everything the sweep produced, in emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutput {
    /// Model under test.
    pub model: String,
    /// Requests offered per scenario in the load sweep.
    pub num_requests: usize,
    /// Every simulated scenario.
    pub results: Vec<SweepEntry>,
}

/// One grid point: the scenario to simulate plus its output labels.
pub struct Scenario {
    /// Which sweep table the scenario belongs to.
    pub section: &'static str,
    /// System to simulate.
    pub kind: SystemKind,
    /// Display name of the arrival process.
    pub arrival: String,
    /// Offered load (requests/s).
    pub offered_rps: f64,
    /// The full simulation spec.
    pub sim: ServingSimulation,
    /// Whether a simulation error fails the sweep (`false` only for the
    /// load sweep, where unsupported system/load points are skipped).
    pub required: bool,
}

/// The full sweep grid, in the order rows are emitted: the load sweep
/// (arrival process × system × offered load), the batching-policy
/// comparison, the prefill-policy comparison and the scheduling comparison
/// under bursty overload.
pub fn scenarios() -> Vec<Scenario> {
    let mut grid: Vec<Scenario> = Vec::new();
    let admission = AdmissionConfig::unlimited().with_max_batch(8);
    let loads = [0.05, 0.2, 0.8, 3.2];

    type ArrivalFactory = fn(f64) -> ArrivalProcess;
    let arrivals: [(&str, ArrivalFactory); 2] = [
        ("Poisson", |rate| ArrivalProcess::Poisson { rate }),
        ("bursty (burst=6)", |rate| ArrivalProcess::Bursty {
            rate,
            burst: 6,
        }),
    ];
    for (arrival_name, arrival_of) in arrivals {
        for kind in systems() {
            for &rate in &loads {
                grid.push(Scenario {
                    section: "load-sweep",
                    kind,
                    arrival: arrival_name.to_string(),
                    offered_rps: rate,
                    sim: ServingSimulation::new(template(), arrival_of(rate), NUM_REQUESTS)
                        .with_admission(admission),
                    required: false,
                });
            }
        }
    }

    for policy in [BatchingPolicy::Continuous, BatchingPolicy::Static] {
        grid.push(Scenario {
            section: "batching-policy",
            kind: SystemKind::hermes(),
            arrival: "Poisson".to_string(),
            offered_rps: 0.6,
            sim: ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.6 }, 16)
                .with_policy(policy),
            required: true,
        });
    }

    // Stall-the-world vs. chunked prefill: same offered work, but chunking
    // bounds the prefill slice each in-flight decode token absorbs, so the
    // TPOT tail collapses while the joiner's own TTFT pays for it.
    for kind in [SystemKind::hermes_base(), SystemKind::hermes()] {
        for prefill in [
            PrefillPolicy::StallTheWorld,
            PrefillPolicy::Chunked {
                chunk_tokens: 8,
                budget: 8,
            },
        ] {
            grid.push(Scenario {
                section: "prefill-policy",
                kind,
                arrival: "Poisson".to_string(),
                offered_rps: 0.6,
                sim: ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.6 }, 16)
                    .with_prefill(prefill),
                required: true,
            });
        }
    }

    // FCFS vs priority vs EDF under bursty overload with a two-seat KV cap:
    // interactive tier-0 requests (3 s TTFT deadline) interleaved with
    // best-effort tier-2 bulk. Priority/EDF run with KV-pressure preemption
    // (evict-and-refill); the high class's tail TTFT and SLO attainment are
    // the point, the completion column shows nobody starves. The final row
    // runs priority preemption over the paged KV pool with swap-out —
    // victims page to the host/NDP swap tier instead of recomputing.
    let template_kv = template();
    let kv_cap = request_kv_bytes(&template_kv, template_kv.prompt_len, template_kv.gen_len) * 2;
    for (scheduling, preemption, paged) in [
        (SchedulingPolicy::Fcfs, PreemptionPolicy::None, false),
        (
            SchedulingPolicy::Priority,
            PreemptionPolicy::EvictAndRefill,
            false,
        ),
        (
            SchedulingPolicy::Edf,
            PreemptionPolicy::EvictAndRefill,
            false,
        ),
        (SchedulingPolicy::Priority, PreemptionPolicy::SwapOut, true),
    ] {
        let mut admission = AdmissionConfig::unlimited().with_kv_memory_bytes(kv_cap);
        if paged {
            admission = admission.with_paged_kv(DEFAULT_BLOCK_TOKENS);
        }
        grid.push(Scenario {
            section: "scheduling-policy",
            kind: SystemKind::hermes(),
            arrival: "bursty (burst=8)".to_string(),
            offered_rps: 1.0,
            sim: ServingSimulation::new(
                template(),
                ArrivalProcess::Bursty {
                    rate: 1.0,
                    burst: 8,
                },
                16,
            )
            .with_admission(admission)
            .with_classes(PrioritySpec::Cycle {
                classes: vec![
                    RequestClass::new(0).with_ttft_deadline(3.0),
                    RequestClass::new(2),
                ],
            })
            .with_scheduling(scheduling)
            .with_preemption(preemption),
            required: true,
        });
    }

    // Shared-system-prompt load, cold vs warm: every request of a group
    // opens with the same 48-token prefix. The cold row recomputes that
    // prefill per request; the warm rows keep it resident in the radix
    // prefix cache over the paged pool and map it copy-free, and the last
    // row additionally co-batches same-prefix requests with
    // prefix-affinity scheduling. The hit-rate and TTFT-split columns of
    // the report's prefix section are the point.
    for (cache, scheduling) in [
        (PrefixCacheMode::Disabled, SchedulingPolicy::Fcfs),
        (PrefixCacheMode::Lru, SchedulingPolicy::Fcfs),
        (PrefixCacheMode::Lru, SchedulingPolicy::PrefixAffinity),
    ] {
        grid.push(Scenario {
            section: "prefix-cache",
            kind: SystemKind::hermes(),
            arrival: "Poisson".to_string(),
            offered_rps: 0.6,
            sim: ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.6 }, 16)
                .with_admission(
                    AdmissionConfig::unlimited()
                        .with_max_batch(8)
                        .with_paged_kv(DEFAULT_BLOCK_TOKENS),
                )
                .with_prompts(PromptSpec::SharedGroups {
                    groups: 2,
                    prefix_len: 48,
                })
                .with_prefix_cache(cache)
                .with_scheduling(scheduling),
            required: true,
        });
    }

    grid
}

/// The sweep's result: the JSON-serializable output plus a note per
/// skipped (unsupported) load-sweep point.
pub struct SweepResult {
    /// Every completed scenario, in grid order.
    pub output: SweepOutput,
    /// One human-readable note per skipped scenario.
    pub skipped: Vec<String>,
}

/// Run the whole grid on `threads` worker threads. Scenario seeds and the
/// emitted row order are fixed by [`scenarios`], so the output is
/// byte-identical for every thread count — the `sweep_determinism`
/// regression test pins `run_sweep(1)` against a multi-threaded run.
///
/// # Panics
///
/// Panics when a required scenario (any section but the load sweep) fails
/// to simulate: those configurations are fixed and must stay valid.
pub fn run_sweep(threads: usize) -> SweepResult {
    let config = SystemConfig::paper_default();
    let grid = scenarios();
    let outcomes = parallel_map(threads, grid, |scenario| {
        let result = simulate(scenario.kind, &config, &scenario.sim);
        (scenario, result)
    });

    let mut results: Vec<SweepEntry> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for (scenario, result) in outcomes {
        match result {
            Ok(outcome) => results.push(SweepEntry {
                section: scenario.section.to_string(),
                system: scenario.kind.name(),
                arrival: scenario.arrival,
                offered_rps: scenario.offered_rps,
                report: outcome.report,
            }),
            Err(e) if !scenario.required => skipped.push(format!(
                "skipping {} at {} rps ({}): {e}",
                scenario.kind.name(),
                scenario.offered_rps,
                scenario.arrival
            )),
            Err(e) => panic!(
                "required sweep scenario failed ({} / {}): {e}",
                scenario.section,
                scenario.kind.name()
            ),
        }
    }
    SweepResult {
        output: SweepOutput {
            model: "OPT-30B".to_string(),
            num_requests: NUM_REQUESTS,
            results,
        },
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_serve::KvAccounting;

    #[test]
    fn grid_covers_every_section_in_emission_order() {
        let grid = scenarios();
        let sections: Vec<&str> = grid.iter().map(|s| s.section).collect();
        // Sections are contiguous and ordered: load sweep first, then the
        // three policy comparisons.
        let mut dedup = sections.clone();
        dedup.dedup();
        assert_eq!(
            dedup,
            vec![
                "load-sweep",
                "batching-policy",
                "prefill-policy",
                "scheduling-policy",
                "prefix-cache"
            ]
        );
        // 2 arrivals × 5 systems × 4 loads + 2 + 4 + 4 policy rows (FCFS,
        // priority and EDF with evict-and-refill, priority with paged
        // swap-out) + 3 prefix-cache rows (cold, warm, warm + affinity).
        assert_eq!(grid.len(), 2 * 5 * 4 + 2 + 4 + 4 + 3);
        // The swap-out row is present exactly once and runs over the paged
        // pool.
        let swap_rows: Vec<&Scenario> = grid
            .iter()
            .filter(|s| s.sim.preemption == PreemptionPolicy::SwapOut)
            .collect();
        assert_eq!(swap_rows.len(), 1);
        assert!(matches!(
            swap_rows[0].sim.admission.accounting,
            KvAccounting::Paged { .. }
        ));
    }
}
