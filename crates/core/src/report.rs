//! Inference reports: the latency breakdown and throughput metrics the
//! paper's figures are built from, plus the aggregate [`ServingReport`] of
//! an open-loop multi-request simulation.

use serde::{Deserialize, Serialize};

use crate::cast::{
    f64_from_usize, nearest_rank_index, nearest_rank_weight, u64_from_usize, usize_from_u64,
};
use crate::workload::Workload;

/// Where the end-to-end time of a run goes, in seconds.
///
/// The categories follow the breakdown of Fig. 12: FC operators (QKV + MLP),
/// the attention operator, the activation predictor, the prefill/prompting
/// phase, weight communication (PCIe), neuron migration (PCIe promotions and
/// DIMM-link remapping that could not be hidden), and everything else
/// (projection, merges, synchronisation).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Sparse FC operators (QKV generation + MLP), GPU and NDP combined.
    pub fc: f64,
    /// Attention operator.
    pub attention: f64,
    /// Activation predictor overhead.
    pub predictor: f64,
    /// Prompting (prefill) phase.
    pub prefill: f64,
    /// Weight traffic over PCIe (loading cold/streamed weights).
    pub communication: f64,
    /// Neuron migration cost that could not be hidden under projection.
    pub migration: f64,
    /// Everything else: dense projection, merge kernels, synchronisation.
    pub others: f64,
}

impl LatencyBreakdown {
    /// Total time of the run in seconds.
    pub fn total(&self) -> f64 {
        self.fc
            + self.attention
            + self.predictor
            + self.prefill
            + self.communication
            + self.migration
            + self.others
    }

    /// Time spent in the token-generation (decode) phase.
    pub fn decode_total(&self) -> f64 {
        self.total() - self.prefill
    }

    /// Element-wise sum of two breakdowns.
    pub fn merged(&self, other: &LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            fc: self.fc + other.fc,
            attention: self.attention + other.attention,
            predictor: self.predictor + other.predictor,
            prefill: self.prefill + other.prefill,
            communication: self.communication + other.communication,
            migration: self.migration + other.migration,
            others: self.others + other.others,
        }
    }
}

/// Serving-grade per-token latency statistics of one run, in seconds.
///
/// Produced by folding the [`TokenEvent`](crate::TokenEvent) stream of a
/// [`Session`](crate::Session): TTFT is the time until the first generated
/// token is available (prompting phase plus the first decode step), and the
/// TPOT (time-per-output-token) statistics summarise the distribution of the
/// per-token decode latencies.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TokenLatencyStats {
    /// Time to first token: the prompting phase plus the first decode step.
    pub ttft: f64,
    /// Mean per-token decode latency.
    pub tpot_mean: f64,
    /// Median (p50) per-token decode latency.
    pub tpot_p50: f64,
    /// 95th-percentile per-token decode latency.
    pub tpot_p95: f64,
    /// 99th-percentile per-token decode latency.
    pub tpot_p99: f64,
}

/// Sort samples ascending and return a nearest-rank percentile accessor
/// (shared by every percentile folder in this module).
fn sorted_with_percentile(samples: &[f64]) -> (Vec<f64>, impl Fn(&[f64], f64) -> f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let percentile =
        |sorted: &[f64], p: f64| -> f64 { sorted[nearest_rank_index(p, sorted.len())] };
    (sorted, percentile)
}

impl TokenLatencyStats {
    /// Fold a prefill cost and the per-token decode latencies (in seconds,
    /// in generation order) into summary statistics. Percentiles use the
    /// nearest-rank definition. With no decode tokens the TPOT statistics
    /// are zero and TTFT is the prefill cost alone.
    #[must_use]
    pub fn from_decode_latencies(prefill_seconds: f64, latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return TokenLatencyStats {
                ttft: prefill_seconds,
                ..Default::default()
            };
        }
        let (sorted, percentile) = sorted_with_percentile(latencies);
        TokenLatencyStats {
            ttft: prefill_seconds + latencies[0],
            tpot_mean: latencies.iter().sum::<f64>() / f64_from_usize(latencies.len()),
            tpot_p50: percentile(&sorted, 50.0),
            tpot_p95: percentile(&sorted, 95.0),
            tpot_p99: percentile(&sorted, 99.0),
        }
    }

    /// Merge per-part summaries into one fleet-wide summary without access
    /// to the underlying samples, weighting each part by its sample count.
    ///
    /// Means merge exactly (weighted average); percentiles use the
    /// weighted-nearest-rank approximation of
    /// [`DistributionStats::merged`], which is exact when every part holds a
    /// single sample. Zero-weight parts are ignored; all-zero for an empty
    /// or all-zero-weight input.
    #[must_use]
    pub fn merged(parts: &[(TokenLatencyStats, usize)]) -> Self {
        let total: usize = parts.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return TokenLatencyStats::default();
        }
        let weighted_mean = |value: fn(&TokenLatencyStats) -> f64| -> f64 {
            parts
                .iter()
                .map(|(s, n)| value(s) * f64_from_usize(*n))
                .sum::<f64>()
                / f64_from_usize(total)
        };
        TokenLatencyStats {
            ttft: weighted_mean(|s| s.ttft),
            tpot_mean: weighted_mean(|s| s.tpot_mean),
            tpot_p50: weighted_percentile(parts, 50.0, |s| s.tpot_p50),
            tpot_p95: weighted_percentile(parts, 95.0, |s| s.tpot_p95),
            tpot_p99: weighted_percentile(parts, 99.0, |s| s.tpot_p99),
        }
    }
}

/// Weighted nearest-rank selection over one summary field of several parts:
/// every sample of a part is collapsed to the part's own value of the
/// percentile being merged, and the nearest-rank percentile `p` is taken
/// over that weighted multiset (sort parts by the field, accumulate weight,
/// stop at rank `ceil(p/100 · total)`). This is the percentile-merging
/// primitive of [`DistributionStats::merged`] /
/// [`TokenLatencyStats::merged`] — exact for single-sample parts, a
/// documented approximation otherwise.
fn weighted_percentile<S>(parts: &[(S, usize)], p: f64, field: impl Fn(&S) -> f64) -> f64 {
    let total: usize = parts.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0.0;
    }
    let mut values: Vec<(f64, usize)> = parts
        .iter()
        .filter(|&&(_, n)| n > 0)
        .map(|(s, n)| (field(s), *n))
        .collect();
    values.sort_by(|a, b| a.0.total_cmp(&b.0));
    let target = usize_from_u64(nearest_rank_weight(p, u64_from_usize(total)));
    let mut seen = 0usize;
    for (value, weight) in &values {
        seen += weight;
        if seen >= target {
            return *value;
        }
    }
    values.last().map_or(0.0, |&(v, _)| v)
}

/// Summary statistics of one per-request metric (seconds), nearest-rank
/// percentiles like [`TokenLatencyStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl DistributionStats {
    /// Fold samples into summary statistics (nearest-rank percentiles).
    /// All-zero for an empty sample set.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return DistributionStats::default();
        }
        let (sorted, percentile) = sorted_with_percentile(samples);
        DistributionStats {
            mean: samples.iter().sum::<f64>() / f64_from_usize(samples.len()),
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Merge per-part summaries into one fleet-wide summary without access
    /// to the underlying samples, weighting each part by its sample count.
    ///
    /// The mean merges exactly (weighted average) and the max is the max of
    /// the parts. Each percentile is the weighted nearest-rank selection
    /// over the parts' own values of that percentile (see
    /// [`TokenLatencyStats::merged`]) — exact when every part summarises a
    /// single sample, an approximation otherwise (the true percentile of
    /// the pooled samples is not recoverable from summaries alone).
    /// Zero-weight parts are ignored; all-zero for an empty or
    /// all-zero-weight input.
    #[must_use]
    pub fn merged(parts: &[(DistributionStats, usize)]) -> Self {
        let total: usize = parts.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return DistributionStats::default();
        }
        DistributionStats {
            // The mean folds left-to-right in part (replica) order — a
            // deterministic order pinned by a unit test below; do not
            // replace with a tree or parallel reduction.
            mean: parts
                .iter()
                .map(|(s, n)| s.mean * f64_from_usize(*n))
                .sum::<f64>()
                / f64_from_usize(total),
            p50: weighted_percentile(parts, 50.0, |s| s.p50),
            p95: weighted_percentile(parts, 95.0, |s| s.p95),
            p99: weighted_percentile(parts, 99.0, |s| s.p99),
            max: parts
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|&(s, _)| s.max)
                .fold(0.0, f64::max),
        }
    }
}

/// Per-priority-tier serving metrics: the latency distributions, preemption
/// counts and SLO attainment of every request sharing one priority tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// The priority tier these requests share (0 is the most important).
    pub priority: u8,
    /// Requests of this tier offered to the simulator.
    pub num_requests: usize,
    /// Eviction events suffered by this tier's requests (one request may be
    /// preempted more than once).
    pub preemptions: usize,
    /// Per-request queueing delay (arrival → first admission).
    pub queue_delay: DistributionStats,
    /// Per-request time to first token (arrival → first generated token).
    pub ttft: DistributionStats,
    /// Per-request end-to-end latency (arrival → completion).
    pub e2e: DistributionStats,
    /// Requests of this tier that carry a TTFT deadline.
    pub deadline_requests: usize,
    /// Deadline-carrying requests whose TTFT met the deadline.
    pub deadline_met: usize,
}

impl ClassReport {
    /// Fraction of this tier's deadline-carrying requests whose TTFT met the
    /// deadline (`None` when no request of the tier carries one).
    pub fn slo_attainment(&self) -> Option<f64> {
        if self.deadline_requests > 0 {
            Some(f64_from_usize(self.deadline_met) / f64_from_usize(self.deadline_requests))
        } else {
            None
        }
    }
}

/// Paged-KV pool statistics: how the block allocator behaved over one
/// serving simulation (present only under paged KV accounting).
///
/// `fragmentation` is *internal* fragmentation — the fraction of allocated
/// block capacity that held no token over the run (each sequence wastes at
/// most one partial block, its last). Utilization is measured against the
/// pool capacity and is `None` for an unbounded pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct KvPoolReport {
    /// Tokens per fixed-size KV block.
    pub block_tokens: usize,
    /// Bytes per block (block_tokens × per-token KV bytes of the model).
    pub block_bytes: u64,
    /// Pool capacity in blocks (`None` when the KV budget is unbounded).
    pub capacity_blocks: Option<u64>,
    /// Peak number of blocks held at any priced step.
    pub peak_blocks: u64,
    /// Mean number of blocks held across priced steps.
    pub mean_blocks: f64,
    /// Mean held blocks over capacity (`None` for an unbounded pool).
    pub utilization: Option<f64>,
    /// Peak held blocks over capacity (`None` for an unbounded pool).
    pub peak_utilization: Option<f64>,
    /// Fraction of allocated block capacity that held no token, averaged
    /// over priced steps (0 when nothing was ever allocated).
    pub fragmentation: f64,
}

/// Swap-tier traffic of the swap-out preemption policy (present only when
/// the policy is swap-out; all-zero when no preemption fired).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct SwapReport {
    /// Victim evictions that paged KV out to the swap tier.
    pub swap_outs: usize,
    /// Resumes that paged KV back in from the swap tier.
    pub swap_ins: usize,
    /// Total bytes paged out.
    pub swapped_out_bytes: u64,
    /// Total bytes paged back in.
    pub swapped_in_bytes: u64,
    /// Total machine seconds spent moving KV over the swap link (both
    /// directions; also included in the communication breakdown).
    pub seconds: f64,
}

/// Prefix-cache statistics of a serving run (present only when the prefix
/// cache is enabled).
///
/// A lookup is one cache consultation at a request admission (re-admissions
/// after an evict-and-refill preemption look up again; swap-in resumes do
/// not re-prefill and therefore do not look up). Reused tokens were served
/// from cached KV blocks and skipped prefill entirely; recomputed tokens
/// went through prefill (the unmatched suffix, plus — after a preemption —
/// the restart-with-recompute re-prefill).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct PrefixCacheReport {
    /// Cache consultations (one per admission of a prefix-carrying request).
    pub lookups: usize,
    /// Lookups that matched at least one cached block.
    pub hits: usize,
    /// `hits / lookups` (0 when no lookups).
    pub hit_rate: f64,
    /// Prefill tokens skipped because their KV was served from the cache.
    pub reused_prefill_tokens: usize,
    /// Prefill tokens actually computed.
    pub recomputed_prefill_tokens: usize,
    /// Prefix insertions into the radix tree.
    pub insertions: usize,
    /// Cached blocks resident at the end of the run.
    pub resident_blocks: u64,
    /// Prefix tokens stored in the resident blocks at the end of the run.
    pub resident_tokens: u64,
    /// Cached blocks returned to the pool under pressure over the run.
    pub evicted_blocks: u64,
    /// TTFT distribution of completed requests whose first admission hit
    /// the cache.
    pub ttft_hit: DistributionStats,
    /// TTFT distribution of completed requests whose first admission missed
    /// (including requests that declared no prefix).
    pub ttft_miss: DistributionStats,
}

/// The result of simulating one system under an open-loop request-level
/// serving load (produced by the `hermes-serve` simulator).
///
/// All per-request metrics are measured from each request's *arrival*:
/// queueing delay runs until the request is admitted into the batch, TTFT
/// until its first generated token, and end-to-end latency until its last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct ServingReport {
    /// Name of the simulated system (as used in the paper's figures).
    pub system: String,
    /// Display name of the batching policy that produced this report.
    pub policy: String,
    /// Display name of the prefill policy that produced this report
    /// (stall-the-world or chunked).
    pub prefill_policy: String,
    /// Display name of the ready-queue scheduling policy that produced this
    /// report (fcfs, priority or edf).
    pub scheduling: String,
    /// Display name of the preemption policy that produced this report
    /// (none, evict-and-refill or swap-out).
    pub preemption_policy: String,
    /// Requests offered to the simulator.
    pub num_requests: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Offered load in requests per second: the spec rate for Poisson/bursty
    /// arrivals, the empirical rate over the sampled arrival span for
    /// replayed traces (0 when the span is empty, e.g. all-at-once).
    pub offered_rps: f64,
    /// Virtual time at which the last request completed (seconds).
    pub makespan: f64,
    /// Total tokens generated across all requests.
    pub generated_tokens: usize,
    /// Aggregate machine-time breakdown across the whole simulation.
    pub breakdown: LatencyBreakdown,
    /// Per-request queueing delay (arrival → admission).
    pub queue_delay: DistributionStats,
    /// Per-request time to first token (arrival → first generated token).
    pub ttft: DistributionStats,
    /// Per-request time per output token after the first. Single-token
    /// requests have no inter-token gap and are excluded from this sample
    /// set (they still count toward TTFT and end-to-end latency).
    pub tpot: DistributionStats,
    /// Per-request end-to-end latency (arrival → completion).
    pub e2e: DistributionStats,
    /// Average DIMM load imbalance during decode (1.0 = balanced; only
    /// meaningful for NDP-based systems).
    pub dimm_imbalance: f64,
    /// Total eviction events across the simulation (a preempted request is
    /// counted once per eviction).
    pub preemptions: usize,
    /// Per-priority-tier metrics, sorted by tier (most important first).
    /// A single entry for tier 0 when the scenario assigns no classes.
    pub per_class: Vec<ClassReport>,
    /// Paged-KV pool statistics (`None` under reserve accounting).
    pub kv: Option<KvPoolReport>,
    /// Swap-tier traffic (`None` unless the preemption policy is swap-out).
    pub swap: Option<SwapReport>,
    /// Prefix-cache statistics (`None` unless the prefix cache is enabled).
    pub prefix: Option<PrefixCacheReport>,
}

impl ServingReport {
    /// Fraction of deadline-carrying requests (across every tier) whose
    /// TTFT met the deadline, or `None` when no request carries one.
    pub fn slo_attainment(&self) -> Option<f64> {
        let offered: usize = self.per_class.iter().map(|c| c.deadline_requests).sum();
        if offered > 0 {
            let met: usize = self.per_class.iter().map(|c| c.deadline_met).sum();
            Some(f64_from_usize(met) / f64_from_usize(offered))
        } else {
            None
        }
    }

    /// The [`ClassReport`] of one priority tier, when any request of that
    /// tier was offered.
    pub fn class(&self, priority: u8) -> Option<&ClassReport> {
        self.per_class.iter().find(|c| c.priority == priority)
    }

    /// Completed requests per second of virtual time (goodput).
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan > 0.0 {
            f64_from_usize(self.completed) / self.makespan
        } else {
            0.0
        }
    }

    /// Generated tokens per second of virtual time.
    pub fn tokens_per_second(&self) -> f64 {
        if self.makespan > 0.0 {
            f64_from_usize(self.generated_tokens) / self.makespan
        } else {
            0.0
        }
    }
}

/// One replica's slice of a cluster simulation: its own [`ServingReport`]
/// plus the router-side counters (how much traffic the policy sent it, and
/// how much it handed back through drain/fail re-dispatch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Display label of the replica (system name plus replica index).
    pub label: String,
    /// Requests the routing policy dispatched to this replica (including
    /// re-dispatched ones).
    pub routed: usize,
    /// In-flight requests this replica handed back to the router when it
    /// was drained or failed.
    pub redispatched: usize,
    /// The replica's own serving metrics, folded over the requests it
    /// completed.
    pub report: ServingReport,
}

/// The result of simulating a fleet of replicas behind a router (produced
/// by the `hermes-serve` cluster simulator): per-replica [`ServingReport`]s
/// plus fleet-wide merged latency distributions, the load-imbalance
/// coefficient and the routing counters.
///
/// Fleet-wide distributions are merged from the per-replica summaries via
/// [`DistributionStats::merged`], weighted by each replica's completed
/// request count — a documented approximation (the per-request samples are
/// not pooled); exact fleet statistics can always be recomputed from the
/// cluster outcome's request records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct ClusterReport {
    /// Display name of the routing policy.
    pub routing: String,
    /// Number of replicas in the fleet.
    pub num_replicas: usize,
    /// Requests offered to the fleet.
    pub num_requests: usize,
    /// Requests that ran to completion (across every replica).
    pub completed: usize,
    /// Virtual time at which the last replica finished (seconds).
    pub makespan: f64,
    /// Total tokens generated across the fleet.
    pub generated_tokens: usize,
    /// Requests handed back to the router by drained/failed replicas and
    /// dispatched again.
    pub redispatches: usize,
    /// Fleet-wide per-request queueing delay (merged summaries).
    pub queue_delay: DistributionStats,
    /// Fleet-wide per-request time to first token (merged summaries).
    pub ttft: DistributionStats,
    /// Fleet-wide per-request time per output token (merged summaries).
    pub tpot: DistributionStats,
    /// Fleet-wide per-request end-to-end latency (merged summaries).
    pub e2e: DistributionStats,
    /// Coefficient of variation (std-dev / mean) of per-replica generated
    /// tokens: 0.0 for a perfectly balanced fleet, growing as load skews.
    pub load_imbalance: f64,
    /// Per-replica reports, in replica order.
    pub replicas: Vec<ReplicaReport>,
}

impl ClusterReport {
    /// Fold per-replica reports into the fleet-wide view: merged latency
    /// summaries (weighted by completed requests), summed counters, the
    /// makespan of the slowest replica and the load-imbalance coefficient
    /// over per-replica generated tokens.
    pub fn from_replicas(routing: String, replicas: Vec<ReplicaReport>) -> Self {
        let weighted = |field: fn(&ServingReport) -> DistributionStats| -> DistributionStats {
            DistributionStats::merged(
                &replicas
                    .iter()
                    .map(|r| (field(&r.report), r.report.completed))
                    .collect::<Vec<_>>(),
            )
        };
        let tokens: Vec<f64> = replicas
            .iter()
            .map(|r| f64_from_usize(r.report.generated_tokens))
            .collect();
        let mean = tokens.iter().sum::<f64>() / f64_from_usize(tokens.len().max(1));
        let load_imbalance = if mean > 0.0 && tokens.len() > 1 {
            let variance = tokens.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>()
                / f64_from_usize(tokens.len());
            variance.sqrt() / mean
        } else {
            0.0
        };
        ClusterReport {
            routing,
            num_replicas: replicas.len(),
            num_requests: replicas.iter().map(|r| r.report.num_requests).sum(),
            completed: replicas.iter().map(|r| r.report.completed).sum(),
            makespan: replicas
                .iter()
                .map(|r| r.report.makespan)
                .fold(0.0, f64::max),
            generated_tokens: replicas.iter().map(|r| r.report.generated_tokens).sum(),
            redispatches: replicas.iter().map(|r| r.redispatched).sum(),
            queue_delay: weighted(|r| r.queue_delay),
            ttft: weighted(|r| r.ttft),
            tpot: weighted(|r| r.tpot),
            e2e: weighted(|r| r.e2e),
            load_imbalance,
            replicas,
        }
    }

    /// Fraction of deadline-carrying requests across the whole fleet whose
    /// TTFT met the deadline, or `None` when no request carries one.
    pub fn slo_attainment(&self) -> Option<f64> {
        let offered: usize = self
            .replicas
            .iter()
            .flat_map(|r| r.report.per_class.iter())
            .map(|c| c.deadline_requests)
            .sum();
        if offered > 0 {
            let met: usize = self
                .replicas
                .iter()
                .flat_map(|r| r.report.per_class.iter())
                .map(|c| c.deadline_met)
                .sum();
            Some(f64_from_usize(met) / f64_from_usize(offered))
        } else {
            None
        }
    }

    /// Completed requests per second of fleet virtual time (goodput).
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan > 0.0 {
            f64_from_usize(self.completed) / self.makespan
        } else {
            0.0
        }
    }

    /// Generated tokens per second of fleet virtual time.
    pub fn tokens_per_second(&self) -> f64 {
        if self.makespan > 0.0 {
            f64_from_usize(self.generated_tokens) / self.makespan
        } else {
            0.0
        }
    }
}

/// The result of simulating one system on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct InferenceReport {
    /// Name of the simulated system (as used in the paper's figures).
    pub system: String,
    /// The workload that was run.
    pub workload: Workload,
    /// Latency breakdown over the whole run.
    pub breakdown: LatencyBreakdown,
    /// Peak bytes of GPU memory used for weights.
    pub gpu_weight_bytes: u64,
    /// Bytes of hot-neuron weights resident on the GPU (0 for systems that
    /// do not partition).
    pub hot_neuron_bytes: u64,
    /// Average DIMM load imbalance during decode (1.0 = balanced; only
    /// meaningful for NDP-based systems).
    pub dimm_imbalance: f64,
    /// TTFT and per-token (TPOT) latency percentiles of the decode phase.
    pub latency_stats: TokenLatencyStats,
}

impl InferenceReport {
    /// End-to-end generation throughput in tokens per second: generated
    /// tokens (including every sequence of the batch) divided by the total
    /// runtime including the prompting phase. This is the metric reported in
    /// Figs. 9–11 and 14–17.
    pub fn tokens_per_second(&self) -> f64 {
        f64_from_usize(self.workload.total_generated_tokens()) / self.breakdown.total()
    }

    /// Decode-only throughput (excluding the prompting phase).
    pub fn decode_tokens_per_second(&self) -> f64 {
        f64_from_usize(self.workload.total_generated_tokens()) / self.breakdown.decode_total()
    }

    /// Average per-token decode latency in milliseconds (the unit of
    /// Fig. 12).
    pub fn decode_latency_ms_per_token(&self) -> f64 {
        self.breakdown.decode_total() * 1e3 / f64_from_usize(self.workload.gen_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn breakdown() -> LatencyBreakdown {
        LatencyBreakdown {
            fc: 1.0,
            attention: 0.5,
            predictor: 0.1,
            prefill: 2.0,
            communication: 0.3,
            migration: 0.05,
            others: 0.05,
        }
    }

    #[test]
    fn totals_add_up() {
        let b = breakdown();
        assert!((b.total() - 4.0).abs() < 1e-12);
        assert!((b.decode_total() - 2.0).abs() < 1e-12);
        let merged = b.merged(&b);
        assert!((merged.total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_metrics() {
        let report = InferenceReport {
            system: "Hermes".to_string(),
            workload: Workload::paper_default(ModelId::Opt13B),
            breakdown: breakdown(),
            gpu_weight_bytes: 0,
            hot_neuron_bytes: 0,
            dimm_imbalance: 1.0,
            latency_stats: TokenLatencyStats::default(),
        };
        assert!((report.tokens_per_second() - 128.0 / 4.0).abs() < 1e-9);
        assert!((report.decode_tokens_per_second() - 128.0 / 2.0).abs() < 1e-9);
        assert!((report.decode_latency_ms_per_token() - 2000.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn default_breakdown_is_zero() {
        assert_eq!(LatencyBreakdown::default().total(), 0.0);
    }

    #[test]
    fn token_latency_stats_percentiles_use_nearest_rank() {
        let latencies: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = TokenLatencyStats::from_decode_latencies(10.0, &latencies);
        assert!((stats.ttft - 11.0).abs() < 1e-12);
        assert!((stats.tpot_mean - 50.5).abs() < 1e-12);
        assert!((stats.tpot_p50 - 50.0).abs() < 1e-12);
        assert!((stats.tpot_p95 - 95.0).abs() < 1e-12);
        assert!((stats.tpot_p99 - 99.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_stats_match_nearest_rank() {
        let samples: Vec<f64> = (1..=200).map(|i| i as f64 / 2.0).collect();
        let stats = DistributionStats::from_samples(&samples);
        assert!((stats.mean - 50.25).abs() < 1e-12);
        assert!((stats.p50 - 50.0).abs() < 1e-12);
        assert!((stats.p95 - 95.0).abs() < 1e-12);
        assert!((stats.p99 - 99.0).abs() < 1e-12);
        assert!((stats.max - 100.0).abs() < 1e-12);
        assert_eq!(
            DistributionStats::from_samples(&[]),
            DistributionStats::default()
        );
    }

    fn class_report(priority: u8, deadline_requests: usize, deadline_met: usize) -> ClassReport {
        ClassReport {
            priority,
            num_requests: deadline_requests.max(1),
            preemptions: 0,
            queue_delay: DistributionStats::default(),
            ttft: DistributionStats::default(),
            e2e: DistributionStats::default(),
            deadline_requests,
            deadline_met,
        }
    }

    fn serving_report() -> ServingReport {
        ServingReport {
            system: "Hermes".to_string(),
            policy: "continuous".to_string(),
            prefill_policy: "stall-the-world".to_string(),
            scheduling: "fcfs".to_string(),
            preemption_policy: "none".to_string(),
            num_requests: 10,
            completed: 10,
            offered_rps: 2.0,
            makespan: 5.0,
            generated_tokens: 400,
            breakdown: breakdown(),
            queue_delay: DistributionStats::default(),
            ttft: DistributionStats::default(),
            tpot: DistributionStats::default(),
            e2e: DistributionStats::default(),
            dimm_imbalance: 1.0,
            preemptions: 0,
            per_class: Vec::new(),
            kv: None,
            swap: None,
            prefix: None,
        }
    }

    #[test]
    fn serving_report_rates_use_makespan() {
        let report = serving_report();
        assert!((report.goodput_rps() - 2.0).abs() < 1e-12);
        assert!((report.tokens_per_second() - 80.0).abs() < 1e-12);
        let empty = ServingReport {
            makespan: 0.0,
            ..report
        };
        assert_eq!(empty.goodput_rps(), 0.0);
        assert_eq!(empty.tokens_per_second(), 0.0);
    }

    #[test]
    fn slo_attainment_folds_deadline_counts_across_classes() {
        let mut report = serving_report();
        // No deadline-carrying requests anywhere: no attainment to report.
        assert_eq!(report.slo_attainment(), None);
        report.per_class = vec![class_report(0, 4, 3), class_report(2, 0, 0)];
        assert!((report.slo_attainment().unwrap() - 0.75).abs() < 1e-12);
        assert!((report.class(0).unwrap().slo_attainment().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(report.class(2).unwrap().slo_attainment(), None);
        assert!(report.class(7).is_none());
    }

    #[test]
    fn merged_distribution_stats_are_exact_for_singleton_parts() {
        // Every part holds one sample, so its summary collapses to that
        // sample and the merge must equal from_samples over the pool.
        let samples: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let parts: Vec<(DistributionStats, usize)> = samples
            .iter()
            .map(|&s| (DistributionStats::from_samples(&[s]), 1))
            .collect();
        assert_eq!(
            DistributionStats::merged(&parts),
            DistributionStats::from_samples(&samples)
        );
        // Zero-weight parts are ignored entirely.
        let mut with_empty = parts.clone();
        with_empty.push((DistributionStats::from_samples(&[1e9]), 0));
        assert_eq!(
            DistributionStats::merged(&with_empty),
            DistributionStats::from_samples(&samples)
        );
        assert_eq!(DistributionStats::merged(&[]), DistributionStats::default());
    }

    #[test]
    fn merged_distribution_stats_weight_parts_by_sample_count() {
        let slow = DistributionStats::from_samples(&[4.0, 4.0, 4.0]);
        let fast = DistributionStats::from_samples(&[1.0]);
        let merged = DistributionStats::merged(&[(slow, 3), (fast, 1)]);
        assert!((merged.mean - (3.0 * 4.0 + 1.0) / 4.0).abs() < 1e-12);
        // Rank ceil(0.5*4)=2 lands inside the slow part once sorted
        // ascending: [fast(1), slow(3)] accumulates 1 then 4.
        assert_eq!(merged.p50, 4.0);
        assert_eq!(merged.p95, 4.0);
        assert_eq!(merged.max, 4.0);
    }

    /// Sorted-input oracle for the weighted-percentile merge path: expand
    /// every part into `weight` copies of its value, sort, and take the
    /// plain nearest-rank percentile of that pooled multiset.
    fn expanded_percentile_oracle(values: &[(f64, usize)], p: f64) -> f64 {
        let mut pool: Vec<f64> = values
            .iter()
            .flat_map(|&(v, n)| std::iter::repeat_n(v, n))
            .collect();
        pool.sort_by(|a, b| a.total_cmp(b));
        pool[nearest_rank_index(p, pool.len())]
    }

    #[test]
    fn merged_weighted_percentiles_match_sorted_input_oracle() {
        // Deliberately unsorted, unequal-weight parts: the merge must agree
        // with the oracle that pools and sorts the weighted samples — this
        // pins the accumulation order of the weighted-rank walk (sort by
        // total_cmp, then accumulate weight in ascending value order).
        let raw = [(4.0, 3usize), (1.0, 5), (9.0, 2), (2.5, 7), (6.0, 1)];
        let parts: Vec<(DistributionStats, usize)> = raw
            .iter()
            .map(|&(v, n)| (DistributionStats::from_samples(&[v]), n))
            .collect();
        let merged = DistributionStats::merged(&parts);
        for (field, p) in [(merged.p50, 50.0), (merged.p95, 95.0), (merged.p99, 99.0)] {
            assert_eq!(field, expanded_percentile_oracle(&raw, p));
        }
    }

    #[test]
    fn merged_percentiles_are_invariant_to_part_order() {
        // weighted_percentile sorts internally (total_cmp), so permuting the
        // parts must not change any percentile or the max.
        let forward = [(0.25, 2usize), (8.0, 1), (3.0, 4), (1.5, 3)];
        let backward: Vec<_> = forward.iter().rev().copied().collect();
        let as_parts = |raw: &[(f64, usize)]| -> Vec<(DistributionStats, usize)> {
            raw.iter()
                .map(|&(v, n)| (DistributionStats::from_samples(&[v]), n))
                .collect()
        };
        let a = DistributionStats::merged(&as_parts(&forward));
        let b = DistributionStats::merged(&as_parts(&backward));
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p95, b.p95);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn merged_mean_folds_left_to_right_in_part_order() {
        // The mean path accumulates in part (replica) order. Pin that exact
        // fold so a refactor to a tree/parallel reduction — which rounds
        // differently and would break byte-identical cluster reports —
        // fails this test.
        let parts: Vec<(DistributionStats, usize)> = [0.1, 0.2, 0.3, 1e16, 0.4]
            .iter()
            .map(|&v| (DistributionStats::from_samples(&[v]), 1))
            .collect();
        let merged = DistributionStats::merged(&parts);
        let mut acc = 0.0f64;
        for (s, n) in &parts {
            acc += s.mean * f64_from_usize(*n);
        }
        assert_eq!(merged.mean.to_bits(), (acc / 5.0).to_bits());
    }

    #[test]
    fn merged_token_latency_stats_weight_means_and_percentiles() {
        let a = TokenLatencyStats::from_decode_latencies(1.0, &[0.5]);
        let b = TokenLatencyStats::from_decode_latencies(3.0, &[1.5]);
        let merged = TokenLatencyStats::merged(&[(a, 1), (b, 3)]);
        assert!((merged.ttft - (1.5 + 3.0 * 4.5) / 4.0).abs() < 1e-12);
        assert!((merged.tpot_mean - (0.5 + 3.0 * 1.5) / 4.0).abs() < 1e-12);
        assert_eq!(merged.tpot_p50, 1.5);
        assert_eq!(merged.tpot_p99, 1.5);
        assert_eq!(TokenLatencyStats::merged(&[]), TokenLatencyStats::default());
    }

    fn replica_report(label: &str, completed: usize, tokens: usize, ttft: f64) -> ReplicaReport {
        let mut report = serving_report();
        report.num_requests = completed;
        report.completed = completed;
        report.generated_tokens = tokens;
        report.makespan = ttft * 10.0;
        report.ttft = DistributionStats::from_samples(&vec![ttft; completed.max(1)]);
        report.per_class = vec![class_report(0, completed, completed / 2)];
        ReplicaReport {
            label: label.to_string(),
            routed: completed,
            redispatched: 1,
            report,
        }
    }

    #[test]
    fn cluster_report_folds_replicas() {
        let fleet = ClusterReport::from_replicas(
            "kv-pressure".to_string(),
            vec![
                replica_report("gpu-0", 6, 600, 1.0),
                replica_report("ndp-1", 2, 200, 5.0),
            ],
        );
        assert_eq!(fleet.num_replicas, 2);
        assert_eq!(fleet.num_requests, 8);
        assert_eq!(fleet.completed, 8);
        assert_eq!(fleet.generated_tokens, 800);
        assert_eq!(fleet.redispatches, 2);
        assert!((fleet.makespan - 50.0).abs() < 1e-12);
        // Weighted mean TTFT: (6*1.0 + 2*5.0) / 8.
        assert!((fleet.ttft.mean - 2.0).abs() < 1e-12);
        // p95 rank ceil(0.95*8)=8 lands in the slow replica.
        assert_eq!(fleet.ttft.p95, 5.0);
        // CV over per-replica generated tokens {600, 200}: mean 400,
        // std 200.
        assert!((fleet.load_imbalance - 0.5).abs() < 1e-12);
        assert!((fleet.slo_attainment().unwrap() - 0.5).abs() < 1e-12);
        assert!((fleet.goodput_rps() - 8.0 / 50.0).abs() < 1e-12);
        assert!((fleet.tokens_per_second() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_report_of_balanced_singleton_fleet_has_zero_imbalance() {
        let fleet = ClusterReport::from_replicas(
            "round-robin".to_string(),
            vec![replica_report("solo", 4, 400, 1.0)],
        );
        assert_eq!(fleet.load_imbalance, 0.0);
        let even = ClusterReport::from_replicas(
            "round-robin".to_string(),
            vec![
                replica_report("a", 4, 400, 1.0),
                replica_report("b", 4, 400, 1.0),
            ],
        );
        assert_eq!(even.load_imbalance, 0.0);
    }

    #[test]
    fn token_latency_stats_handle_tiny_and_empty_runs() {
        let empty = TokenLatencyStats::from_decode_latencies(3.0, &[]);
        assert!((empty.ttft - 3.0).abs() < 1e-12);
        assert_eq!(empty.tpot_p99, 0.0);
        let single = TokenLatencyStats::from_decode_latencies(1.0, &[0.5]);
        assert!((single.ttft - 1.5).abs() < 1e-12);
        assert!((single.tpot_p50 - 0.5).abs() < 1e-12);
        assert!((single.tpot_p99 - 0.5).abs() < 1e-12);
    }
}
