//! Inference reports: the latency breakdown and throughput metrics the
//! paper's figures are built from, plus the aggregate [`ServingReport`] of
//! an open-loop multi-request simulation.

use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// Where the end-to-end time of a run goes, in seconds.
///
/// The categories follow the breakdown of Fig. 12: FC operators (QKV + MLP),
/// the attention operator, the activation predictor, the prefill/prompting
/// phase, weight communication (PCIe), neuron migration (PCIe promotions and
/// DIMM-link remapping that could not be hidden), and everything else
/// (projection, merges, synchronisation).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Sparse FC operators (QKV generation + MLP), GPU and NDP combined.
    pub fc: f64,
    /// Attention operator.
    pub attention: f64,
    /// Activation predictor overhead.
    pub predictor: f64,
    /// Prompting (prefill) phase.
    pub prefill: f64,
    /// Weight traffic over PCIe (loading cold/streamed weights).
    pub communication: f64,
    /// Neuron migration cost that could not be hidden under projection.
    pub migration: f64,
    /// Everything else: dense projection, merge kernels, synchronisation.
    pub others: f64,
}

impl LatencyBreakdown {
    /// Total time of the run in seconds.
    pub fn total(&self) -> f64 {
        self.fc
            + self.attention
            + self.predictor
            + self.prefill
            + self.communication
            + self.migration
            + self.others
    }

    /// Time spent in the token-generation (decode) phase.
    pub fn decode_total(&self) -> f64 {
        self.total() - self.prefill
    }

    /// Element-wise sum of two breakdowns.
    pub fn merged(&self, other: &LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            fc: self.fc + other.fc,
            attention: self.attention + other.attention,
            predictor: self.predictor + other.predictor,
            prefill: self.prefill + other.prefill,
            communication: self.communication + other.communication,
            migration: self.migration + other.migration,
            others: self.others + other.others,
        }
    }
}

/// Serving-grade per-token latency statistics of one run, in seconds.
///
/// Produced by folding the [`TokenEvent`](crate::TokenEvent) stream of a
/// [`Session`](crate::Session): TTFT is the time until the first generated
/// token is available (prompting phase plus the first decode step), and the
/// TPOT (time-per-output-token) statistics summarise the distribution of the
/// per-token decode latencies.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TokenLatencyStats {
    /// Time to first token: the prompting phase plus the first decode step.
    pub ttft: f64,
    /// Mean per-token decode latency.
    pub tpot_mean: f64,
    /// Median (p50) per-token decode latency.
    pub tpot_p50: f64,
    /// 95th-percentile per-token decode latency.
    pub tpot_p95: f64,
    /// 99th-percentile per-token decode latency.
    pub tpot_p99: f64,
}

/// Sort samples ascending and return a nearest-rank percentile accessor
/// (shared by every percentile folder in this module).
fn sorted_with_percentile(samples: &[f64]) -> (Vec<f64>, impl Fn(&[f64], f64) -> f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let percentile = |sorted: &[f64], p: f64| -> f64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    };
    (sorted, percentile)
}

impl TokenLatencyStats {
    /// Fold a prefill cost and the per-token decode latencies (in seconds,
    /// in generation order) into summary statistics. Percentiles use the
    /// nearest-rank definition. With no decode tokens the TPOT statistics
    /// are zero and TTFT is the prefill cost alone.
    pub fn from_decode_latencies(prefill_seconds: f64, latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return TokenLatencyStats {
                ttft: prefill_seconds,
                ..Default::default()
            };
        }
        let (sorted, percentile) = sorted_with_percentile(latencies);
        TokenLatencyStats {
            ttft: prefill_seconds + latencies[0],
            tpot_mean: latencies.iter().sum::<f64>() / latencies.len() as f64,
            tpot_p50: percentile(&sorted, 50.0),
            tpot_p95: percentile(&sorted, 95.0),
            tpot_p99: percentile(&sorted, 99.0),
        }
    }
}

/// Summary statistics of one per-request metric (seconds), nearest-rank
/// percentiles like [`TokenLatencyStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl DistributionStats {
    /// Fold samples into summary statistics (nearest-rank percentiles).
    /// All-zero for an empty sample set.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return DistributionStats::default();
        }
        let (sorted, percentile) = sorted_with_percentile(samples);
        DistributionStats {
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Per-priority-tier serving metrics: the latency distributions, preemption
/// counts and SLO attainment of every request sharing one priority tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// The priority tier these requests share (0 is the most important).
    pub priority: u8,
    /// Requests of this tier offered to the simulator.
    pub num_requests: usize,
    /// Eviction events suffered by this tier's requests (one request may be
    /// preempted more than once).
    pub preemptions: usize,
    /// Per-request queueing delay (arrival → first admission).
    pub queue_delay: DistributionStats,
    /// Per-request time to first token (arrival → first generated token).
    pub ttft: DistributionStats,
    /// Per-request end-to-end latency (arrival → completion).
    pub e2e: DistributionStats,
    /// Requests of this tier that carry a TTFT deadline.
    pub deadline_requests: usize,
    /// Deadline-carrying requests whose TTFT met the deadline.
    pub deadline_met: usize,
}

impl ClassReport {
    /// Fraction of this tier's deadline-carrying requests whose TTFT met the
    /// deadline (`None` when no request of the tier carries one).
    pub fn slo_attainment(&self) -> Option<f64> {
        if self.deadline_requests > 0 {
            Some(self.deadline_met as f64 / self.deadline_requests as f64)
        } else {
            None
        }
    }
}

/// Paged-KV pool statistics: how the block allocator behaved over one
/// serving simulation (present only under paged KV accounting).
///
/// `fragmentation` is *internal* fragmentation — the fraction of allocated
/// block capacity that held no token over the run (each sequence wastes at
/// most one partial block, its last). Utilization is measured against the
/// pool capacity and is `None` for an unbounded pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvPoolReport {
    /// Tokens per fixed-size KV block.
    pub block_tokens: usize,
    /// Bytes per block (block_tokens × per-token KV bytes of the model).
    pub block_bytes: u64,
    /// Pool capacity in blocks (`None` when the KV budget is unbounded).
    pub capacity_blocks: Option<u64>,
    /// Peak number of blocks held at any priced step.
    pub peak_blocks: u64,
    /// Mean number of blocks held across priced steps.
    pub mean_blocks: f64,
    /// Mean held blocks over capacity (`None` for an unbounded pool).
    pub utilization: Option<f64>,
    /// Peak held blocks over capacity (`None` for an unbounded pool).
    pub peak_utilization: Option<f64>,
    /// Fraction of allocated block capacity that held no token, averaged
    /// over priced steps (0 when nothing was ever allocated).
    pub fragmentation: f64,
}

/// Swap-tier traffic of the swap-out preemption policy (present only when
/// the policy is swap-out; all-zero when no preemption fired).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapReport {
    /// Victim evictions that paged KV out to the swap tier.
    pub swap_outs: usize,
    /// Resumes that paged KV back in from the swap tier.
    pub swap_ins: usize,
    /// Total bytes paged out.
    pub swapped_out_bytes: u64,
    /// Total bytes paged back in.
    pub swapped_in_bytes: u64,
    /// Total machine seconds spent moving KV over the swap link (both
    /// directions; also included in the communication breakdown).
    pub seconds: f64,
}

/// Prefix-cache statistics of a serving run (present only when the prefix
/// cache is enabled).
///
/// A lookup is one cache consultation at a request admission (re-admissions
/// after an evict-and-refill preemption look up again; swap-in resumes do
/// not re-prefill and therefore do not look up). Reused tokens were served
/// from cached KV blocks and skipped prefill entirely; recomputed tokens
/// went through prefill (the unmatched suffix, plus — after a preemption —
/// the restart-with-recompute re-prefill).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixCacheReport {
    /// Cache consultations (one per admission of a prefix-carrying request).
    pub lookups: usize,
    /// Lookups that matched at least one cached block.
    pub hits: usize,
    /// `hits / lookups` (0 when no lookups).
    pub hit_rate: f64,
    /// Prefill tokens skipped because their KV was served from the cache.
    pub reused_prefill_tokens: usize,
    /// Prefill tokens actually computed.
    pub recomputed_prefill_tokens: usize,
    /// Prefix insertions into the radix tree.
    pub insertions: usize,
    /// Cached blocks resident at the end of the run.
    pub resident_blocks: u64,
    /// Prefix tokens stored in the resident blocks at the end of the run.
    pub resident_tokens: u64,
    /// Cached blocks returned to the pool under pressure over the run.
    pub evicted_blocks: u64,
    /// TTFT distribution of completed requests whose first admission hit
    /// the cache.
    pub ttft_hit: DistributionStats,
    /// TTFT distribution of completed requests whose first admission missed
    /// (including requests that declared no prefix).
    pub ttft_miss: DistributionStats,
}

/// The result of simulating one system under an open-loop request-level
/// serving load (produced by the `hermes-serve` simulator).
///
/// All per-request metrics are measured from each request's *arrival*:
/// queueing delay runs until the request is admitted into the batch, TTFT
/// until its first generated token, and end-to-end latency until its last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Name of the simulated system (as used in the paper's figures).
    pub system: String,
    /// Display name of the batching policy that produced this report.
    pub policy: String,
    /// Display name of the prefill policy that produced this report
    /// (stall-the-world or chunked).
    pub prefill_policy: String,
    /// Display name of the ready-queue scheduling policy that produced this
    /// report (fcfs, priority or edf).
    pub scheduling: String,
    /// Display name of the preemption policy that produced this report
    /// (none, evict-and-refill or swap-out).
    pub preemption_policy: String,
    /// Requests offered to the simulator.
    pub num_requests: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Offered load in requests per second: the spec rate for Poisson/bursty
    /// arrivals, the empirical rate over the sampled arrival span for
    /// replayed traces (0 when the span is empty, e.g. all-at-once).
    pub offered_rps: f64,
    /// Virtual time at which the last request completed (seconds).
    pub makespan: f64,
    /// Total tokens generated across all requests.
    pub generated_tokens: usize,
    /// Aggregate machine-time breakdown across the whole simulation.
    pub breakdown: LatencyBreakdown,
    /// Per-request queueing delay (arrival → admission).
    pub queue_delay: DistributionStats,
    /// Per-request time to first token (arrival → first generated token).
    pub ttft: DistributionStats,
    /// Per-request time per output token after the first. Single-token
    /// requests have no inter-token gap and are excluded from this sample
    /// set (they still count toward TTFT and end-to-end latency).
    pub tpot: DistributionStats,
    /// Per-request end-to-end latency (arrival → completion).
    pub e2e: DistributionStats,
    /// Average DIMM load imbalance during decode (1.0 = balanced; only
    /// meaningful for NDP-based systems).
    pub dimm_imbalance: f64,
    /// Total eviction events across the simulation (a preempted request is
    /// counted once per eviction).
    pub preemptions: usize,
    /// Per-priority-tier metrics, sorted by tier (most important first).
    /// A single entry for tier 0 when the scenario assigns no classes.
    pub per_class: Vec<ClassReport>,
    /// Paged-KV pool statistics (`None` under reserve accounting).
    pub kv: Option<KvPoolReport>,
    /// Swap-tier traffic (`None` unless the preemption policy is swap-out).
    pub swap: Option<SwapReport>,
    /// Prefix-cache statistics (`None` unless the prefix cache is enabled).
    pub prefix: Option<PrefixCacheReport>,
}

impl ServingReport {
    /// Fraction of deadline-carrying requests (across every tier) whose
    /// TTFT met the deadline, or `None` when no request carries one.
    pub fn slo_attainment(&self) -> Option<f64> {
        let offered: usize = self.per_class.iter().map(|c| c.deadline_requests).sum();
        if offered > 0 {
            let met: usize = self.per_class.iter().map(|c| c.deadline_met).sum();
            Some(met as f64 / offered as f64)
        } else {
            None
        }
    }

    /// The [`ClassReport`] of one priority tier, when any request of that
    /// tier was offered.
    pub fn class(&self, priority: u8) -> Option<&ClassReport> {
        self.per_class.iter().find(|c| c.priority == priority)
    }

    /// Completed requests per second of virtual time (goodput).
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Generated tokens per second of virtual time.
    pub fn tokens_per_second(&self) -> f64 {
        if self.makespan > 0.0 {
            self.generated_tokens as f64 / self.makespan
        } else {
            0.0
        }
    }
}

/// The result of simulating one system on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Name of the simulated system (as used in the paper's figures).
    pub system: String,
    /// The workload that was run.
    pub workload: Workload,
    /// Latency breakdown over the whole run.
    pub breakdown: LatencyBreakdown,
    /// Peak bytes of GPU memory used for weights.
    pub gpu_weight_bytes: u64,
    /// Bytes of hot-neuron weights resident on the GPU (0 for systems that
    /// do not partition).
    pub hot_neuron_bytes: u64,
    /// Average DIMM load imbalance during decode (1.0 = balanced; only
    /// meaningful for NDP-based systems).
    pub dimm_imbalance: f64,
    /// TTFT and per-token (TPOT) latency percentiles of the decode phase.
    pub latency_stats: TokenLatencyStats,
}

impl InferenceReport {
    /// End-to-end generation throughput in tokens per second: generated
    /// tokens (including every sequence of the batch) divided by the total
    /// runtime including the prompting phase. This is the metric reported in
    /// Figs. 9–11 and 14–17.
    pub fn tokens_per_second(&self) -> f64 {
        self.workload.total_generated_tokens() as f64 / self.breakdown.total()
    }

    /// Decode-only throughput (excluding the prompting phase).
    pub fn decode_tokens_per_second(&self) -> f64 {
        self.workload.total_generated_tokens() as f64 / self.breakdown.decode_total()
    }

    /// Average per-token decode latency in milliseconds (the unit of
    /// Fig. 12).
    pub fn decode_latency_ms_per_token(&self) -> f64 {
        self.breakdown.decode_total() * 1e3 / self.workload.gen_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn breakdown() -> LatencyBreakdown {
        LatencyBreakdown {
            fc: 1.0,
            attention: 0.5,
            predictor: 0.1,
            prefill: 2.0,
            communication: 0.3,
            migration: 0.05,
            others: 0.05,
        }
    }

    #[test]
    fn totals_add_up() {
        let b = breakdown();
        assert!((b.total() - 4.0).abs() < 1e-12);
        assert!((b.decode_total() - 2.0).abs() < 1e-12);
        let merged = b.merged(&b);
        assert!((merged.total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_metrics() {
        let report = InferenceReport {
            system: "Hermes".to_string(),
            workload: Workload::paper_default(ModelId::Opt13B),
            breakdown: breakdown(),
            gpu_weight_bytes: 0,
            hot_neuron_bytes: 0,
            dimm_imbalance: 1.0,
            latency_stats: TokenLatencyStats::default(),
        };
        assert!((report.tokens_per_second() - 128.0 / 4.0).abs() < 1e-9);
        assert!((report.decode_tokens_per_second() - 128.0 / 2.0).abs() < 1e-9);
        assert!((report.decode_latency_ms_per_token() - 2000.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn default_breakdown_is_zero() {
        assert_eq!(LatencyBreakdown::default().total(), 0.0);
    }

    #[test]
    fn token_latency_stats_percentiles_use_nearest_rank() {
        let latencies: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = TokenLatencyStats::from_decode_latencies(10.0, &latencies);
        assert!((stats.ttft - 11.0).abs() < 1e-12);
        assert!((stats.tpot_mean - 50.5).abs() < 1e-12);
        assert!((stats.tpot_p50 - 50.0).abs() < 1e-12);
        assert!((stats.tpot_p95 - 95.0).abs() < 1e-12);
        assert!((stats.tpot_p99 - 99.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_stats_match_nearest_rank() {
        let samples: Vec<f64> = (1..=200).map(|i| i as f64 / 2.0).collect();
        let stats = DistributionStats::from_samples(&samples);
        assert!((stats.mean - 50.25).abs() < 1e-12);
        assert!((stats.p50 - 50.0).abs() < 1e-12);
        assert!((stats.p95 - 95.0).abs() < 1e-12);
        assert!((stats.p99 - 99.0).abs() < 1e-12);
        assert!((stats.max - 100.0).abs() < 1e-12);
        assert_eq!(
            DistributionStats::from_samples(&[]),
            DistributionStats::default()
        );
    }

    fn class_report(priority: u8, deadline_requests: usize, deadline_met: usize) -> ClassReport {
        ClassReport {
            priority,
            num_requests: deadline_requests.max(1),
            preemptions: 0,
            queue_delay: DistributionStats::default(),
            ttft: DistributionStats::default(),
            e2e: DistributionStats::default(),
            deadline_requests,
            deadline_met,
        }
    }

    fn serving_report() -> ServingReport {
        ServingReport {
            system: "Hermes".to_string(),
            policy: "continuous".to_string(),
            prefill_policy: "stall-the-world".to_string(),
            scheduling: "fcfs".to_string(),
            preemption_policy: "none".to_string(),
            num_requests: 10,
            completed: 10,
            offered_rps: 2.0,
            makespan: 5.0,
            generated_tokens: 400,
            breakdown: breakdown(),
            queue_delay: DistributionStats::default(),
            ttft: DistributionStats::default(),
            tpot: DistributionStats::default(),
            e2e: DistributionStats::default(),
            dimm_imbalance: 1.0,
            preemptions: 0,
            per_class: Vec::new(),
            kv: None,
            swap: None,
            prefix: None,
        }
    }

    #[test]
    fn serving_report_rates_use_makespan() {
        let report = serving_report();
        assert!((report.goodput_rps() - 2.0).abs() < 1e-12);
        assert!((report.tokens_per_second() - 80.0).abs() < 1e-12);
        let empty = ServingReport {
            makespan: 0.0,
            ..report
        };
        assert_eq!(empty.goodput_rps(), 0.0);
        assert_eq!(empty.tokens_per_second(), 0.0);
    }

    #[test]
    fn slo_attainment_folds_deadline_counts_across_classes() {
        let mut report = serving_report();
        // No deadline-carrying requests anywhere: no attainment to report.
        assert_eq!(report.slo_attainment(), None);
        report.per_class = vec![class_report(0, 4, 3), class_report(2, 0, 0)];
        assert!((report.slo_attainment().unwrap() - 0.75).abs() < 1e-12);
        assert!((report.class(0).unwrap().slo_attainment().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(report.class(2).unwrap().slo_attainment(), None);
        assert!(report.class(7).is_none());
    }

    #[test]
    fn token_latency_stats_handle_tiny_and_empty_runs() {
        let empty = TokenLatencyStats::from_decode_latencies(3.0, &[]);
        assert!((empty.ttft - 3.0).abs() < 1e-12);
        assert_eq!(empty.tpot_p99, 0.0);
        let single = TokenLatencyStats::from_decode_latencies(1.0, &[0.5]);
        assert!((single.ttft - 1.5).abs() < 1e-12);
        assert!((single.tpot_p50 - 0.5).abs() < 1e-12);
        assert!((single.tpot_p99 - 0.5).abs() < 1e-12);
    }
}
