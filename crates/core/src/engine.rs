//! The step-wise engine API: engines, cost models, sessions and per-token
//! events.
//!
//! The Hermes workflow is inherently token-stepped — predictor lookups,
//! hot/cold adjustment churn and window-based remapping (Algorithm 1) all
//! happen *between* decode steps — so the public API exposes that structure
//! directly instead of hiding it behind a closed-loop batch simulation:
//!
//! * [`InferenceEngine`] — a system (Hermes family or baseline) bound to a
//!   hardware configuration; [`InferenceEngine::plan`] validates a workload
//!   and produces a [`PlannedRun`], and [`InferenceEngine::start`] wraps the
//!   plan in a [`Session`].
//! * [`StepCostModel`] — the planned run's pricing function: one decode step
//!   is priced as a function of the *current* batch composition
//!   ([`BatchState`]: the active sequences and their context lengths), not a
//!   batch size frozen at planning time. This is what lets a single plan
//!   drive both the closed-loop fixed-batch sessions below and the open-loop
//!   continuous-batching simulator in `hermes-serve`, where the batch
//!   composition changes at every token boundary.
//! * [`Session`] — explicit per-request state: [`Session::prefill`] runs the
//!   prompting phase, each [`Session::step`] generates one token, and
//!   [`Session::report`] folds everything executed so far into an
//!   [`InferenceReport`].
//! * [`TokenEvent`] — emitted by every `prefill`/`step` call, carrying the
//!   per-token latency breakdown (predictor, FC, attention, migration, …)
//!   and the current hot-set / DIMM-balance state.
//!
//! [`run_session`] is the one-shot driver: it drives a session to completion
//! and returns the folded report, which is exactly what
//! [`try_run_system`](crate::try_run_system) does under the hood. Step-wise
//! and one-shot execution therefore agree by construction.

use serde::{Deserialize, Serialize};

use crate::error::HermesError;
use crate::report::{InferenceReport, LatencyBreakdown, TokenLatencyStats};
use crate::workload::Workload;

/// Which phase of a run a [`TokenEvent`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// The prompting phase ([`Session::prefill`]).
    Prefill,
    /// One decode step ([`Session::step`]).
    Decode,
}

/// Where a [`Session`] stands in its prefill → decode → done lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionPhase {
    /// Freshly started: [`Session::prefill`] has not run yet.
    Created,
    /// Prefilled and generating tokens ([`Session::step`]).
    Decoding,
    /// Every token of the workload has been generated.
    Done,
}

/// One event of a [`Session`]'s stream: the prefill event followed by one
/// event per generated token.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenEvent {
    /// Which phase produced this event.
    pub phase: Phase,
    /// Decode-step index (0-based); 0 for the prefill event as well.
    pub index: usize,
    /// Latency breakdown of this event alone (not cumulative).
    pub latency: LatencyBreakdown,
    /// Bytes of hot-neuron weights resident on the GPU (0 for systems that
    /// do not partition neurons).
    pub hot_neuron_bytes: u64,
    /// Fraction of the activation mass covered by the hot set (0 for
    /// systems without a hot/cold partition).
    pub hot_coverage: f64,
    /// Running average DIMM load imbalance observed so far (1.0 = balanced;
    /// only meaningful for NDP-based systems).
    pub dimm_imbalance: f64,
}

impl TokenEvent {
    /// Total latency of this event in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.latency.total()
    }
}

/// Explicit per-request state of an inference run, produced by
/// [`InferenceEngine::start`].
///
/// The protocol is `prefill()` once, then `step()` until it returns
/// `Ok(None)`; [`Session::report`] can be called at any point to fold what
/// has been executed so far into an [`InferenceReport`].
pub trait Session {
    /// Run the prompting phase and return its event.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::SessionState`] if the session was already
    /// prefilled.
    fn prefill(&mut self) -> Result<TokenEvent, HermesError>;

    /// Generate the next token, or `Ok(None)` once the workload's `gen_len`
    /// tokens have all been produced.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::SessionState`] if [`Session::prefill`] has not
    /// run yet.
    fn step(&mut self) -> Result<Option<TokenEvent>, HermesError>;

    /// Where the session stands in its prefill → decode → done lifecycle.
    ///
    /// Drivers branch on this instead of probing `prefill()` and swallowing
    /// its [`HermesError::SessionState`], so genuine protocol errors are
    /// never masked.
    fn phase(&self) -> SessionPhase;

    /// Number of decode tokens generated so far.
    fn generated(&self) -> usize;

    /// Whether every token of the workload has been generated.
    fn is_done(&self) -> bool;

    /// Fold everything executed so far into an [`InferenceReport`].
    ///
    /// Calling this mid-run yields a partial report (the metrics of the
    /// tokens generated so far); after the session is driven to completion
    /// it matches the one-shot report of
    /// [`try_run_system`](crate::try_run_system) exactly.
    fn report(&self) -> InferenceReport;
}

/// Drive a session to completion and return the folded report.
///
/// Works on a fresh session (runs prefill itself) and on a partially driven
/// one (resumes stepping where the caller left off), branching on
/// [`Session::phase`] rather than probing `prefill()`.
///
/// # Errors
///
/// Propagates any [`HermesError`] raised by the session protocol (none for
/// a freshly started session).
pub fn run_session(session: &mut dyn Session) -> Result<InferenceReport, HermesError> {
    if session.phase() == SessionPhase::Created {
        session.prefill()?;
    }
    while session.step()?.is_some() {}
    Ok(session.report())
}

/// The composition of the decode batch at one step: the context length
/// (prompt plus tokens generated so far) of every active sequence.
///
/// Under continuous batching this changes at every token boundary —
/// sequences join after their prefill, grow their context each step and
/// leave when finished — so [`StepCostModel::decode_cost`] takes the
/// composition explicitly instead of a batch size frozen at planning time.
/// The batch is stored as its context-length *groups* — distinct context
/// lengths with multiplicities, sorted by length — because that is the only
/// view the cost models consume (sequences of equal context length share a
/// kernel). Grouping once at construction keeps a hot serving loop from
/// re-sorting the composition at every step, and schedulers that already
/// maintain the groups incrementally can hand them over as-is through
/// [`BatchState::from_groups`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchState {
    size: usize,
    groups: Vec<(usize, usize)>,
}

impl BatchState {
    /// A batch from the context lengths of its active sequences.
    pub fn new(mut context_lens: Vec<usize>) -> Self {
        context_lens.sort_unstable();
        let mut groups: Vec<(usize, usize)> = Vec::new();
        for len in &context_lens {
            match groups.last_mut() {
                Some((l, n)) if l == len => *n += 1,
                _ => groups.push((*len, 1)),
            }
        }
        BatchState {
            size: context_lens.len(),
            groups,
        }
    }

    /// A batch of `batch` sequences that all share one context length — the
    /// shape of a closed-loop fixed-batch run at one decode step.
    pub fn uniform(batch: usize, context_len: usize) -> Self {
        BatchState {
            size: batch,
            groups: if batch > 0 {
                vec![(context_len, batch)]
            } else {
                Vec::new()
            },
        }
    }

    /// A batch from pre-grouped context lengths: `(context_len, count)`
    /// pairs that must be sorted by strictly increasing context length with
    /// every count non-zero — the invariant [`BatchState::context_groups`]
    /// guarantees. This is the allocation-light entry point for schedulers
    /// that maintain the composition incrementally.
    pub fn from_groups(groups: Vec<(usize, usize)>) -> Self {
        debug_assert!(
            groups.windows(2).all(|w| w[0].0 < w[1].0),
            "groups must be sorted by strictly increasing context length"
        );
        debug_assert!(groups.iter().all(|&(_, n)| n > 0), "empty group");
        BatchState {
            size: groups.iter().map(|&(_, n)| n).sum(),
            groups,
        }
    }

    /// Number of active sequences.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the batch has no active sequences.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Context length of each active sequence, in ascending order.
    pub fn context_lens(&self) -> Vec<usize> {
        self.groups
            .iter()
            .flat_map(|&(len, n)| std::iter::repeat_n(len, n))
            .collect()
    }

    /// Distinct context lengths with their multiplicities, sorted by
    /// context length.
    ///
    /// Cost models batch the sequences of equal context length into one
    /// kernel, so a uniform batch prices exactly like the closed-loop
    /// formulas while a mixed batch pays one kernel per context group.
    /// Borrowed, because the serving loop prices a batch every token
    /// boundary and cloning the composition there dominated the chunked
    /// hot path.
    pub fn context_groups(&self) -> &[(usize, usize)] {
        &self.groups
    }
}

/// What one decode step of a simulated engine produced: the step's
/// latency plus any DIMM load-imbalance samples observed during the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Latency breakdown of this step.
    pub latency: LatencyBreakdown,
    /// Sum of per-block imbalance samples observed during this step.
    pub imbalance_sum: f64,
    /// Number of imbalance samples observed during this step.
    pub imbalance_samples: usize,
}

impl StepOutcome {
    /// A step outcome with no imbalance samples (non-NDP systems).
    pub fn balanced(latency: LatencyBreakdown) -> Self {
        StepOutcome {
            latency,
            imbalance_sum: 0.0,
            imbalance_samples: 0,
        }
    }
}

/// One chunk of prefill work co-scheduled with a decode step: `tokens`
/// prompt tokens of a request whose full prompt is `prompt_len` tokens long.
///
/// Carrying the parent prompt length lets cost models amortize a prompt's
/// one-shot prefill cost over its chunks instead of re-pricing every chunk
/// as a standalone prompt — prefill in the offloading engines is dominated
/// by streaming the non-resident weights once, a cost that is independent of
/// the prompt length, so pricing each chunk as its own prompt would multiply
/// that fixed cost by the number of chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefillChunk {
    /// Full prompt length of the request this chunk belongs to.
    pub prompt_len: usize,
    /// Prompt tokens processed in this chunk (1 ..= `prompt_len`).
    pub tokens: usize,
}

/// Prices the work of a planned run as a function of the current batch
/// composition.
///
/// A cost model is produced by [`InferenceEngine::plan`] and owns all the
/// per-run simulation state (activation traces, hot/cold plan, window
/// remapping counters, …): each [`StepCostModel::decode_cost`] call advances
/// that state by one token and prices the step for whatever batch
/// composition the caller is running — a fixed batch for the closed-loop
/// sessions, a changing one under continuous batching.
pub trait StepCostModel {
    /// Cost in seconds of the prompting phase for `batch` sequences of
    /// `prompt_len` tokens each, prefilled together.
    fn prefill_cost(&self, prompt_len: usize, batch: usize) -> f64;

    /// Price one decode step over the given batch composition and advance
    /// the model's internal per-token state.
    fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome;

    /// Price one combined step: the given prefill chunks piggybacked on a
    /// decode step over `batch` (chunked prefill — the serving scheduler
    /// splits admitted prompts into chunks and co-schedules a bounded amount
    /// of prefill work per token boundary instead of stalling the world).
    ///
    /// The default composes the two existing prices: the decode step is
    /// [`StepCostModel::decode_cost`] (skipped for an empty batch, so a
    /// pure-prefill step does not advance decode state), and the chunks are
    /// grouped by parent prompt length — like stall-the-world's grouped
    /// prefill passes — with each group of `count` chunks totalling `tokens`
    /// paying the *amortized* share `tokens / (prompt_len * count)` of the
    /// group's batched one-shot cost `prefill_cost(prompt_len, count)`.
    /// A prompt prefilled alone therefore chunks to exactly its solo
    /// one-shot cost, and same-length prompts whose chunks advance in
    /// lockstep (the budget covers them all each boundary) chunk to exactly
    /// their stall-the-world *group* cost — chunking redistributes prefill
    /// over token boundaries without changing the total work, while each
    /// in-flight decode token only absorbs a chunk-sized slice instead of a
    /// whole prompt. (Same-length prompts whose chunks do *not* co-schedule
    /// lose the batched-pass sharing and price as smaller groups, so a
    /// tight budget can cost more total prefill than stalling.) Engines can
    /// override this to price fused prefill+decode kernels.
    fn chunked_step_cost(&mut self, prefill: &[PrefillChunk], batch: &BatchState) -> StepOutcome {
        let mut outcome = if batch.is_empty() {
            StepOutcome::balanced(LatencyBreakdown::default())
        } else {
            self.decode_cost(batch)
        };
        // (prompt_len, chunk count, summed chunk tokens) per group of
        // same-length chunks sharing this step's prefill pass.
        let mut groups: Vec<(usize, usize, usize)> = Vec::new();
        for chunk in prefill {
            debug_assert!(chunk.tokens >= 1 && chunk.tokens <= chunk.prompt_len);
            match groups
                .iter_mut()
                .find(|(len, _, _)| *len == chunk.prompt_len)
            {
                Some((_, count, tokens)) => {
                    *count += 1;
                    *tokens += chunk.tokens;
                }
                None => groups.push((chunk.prompt_len, 1, chunk.tokens)),
            }
        }
        for (prompt_len, count, tokens) in groups {
            let full = self.prefill_cost(prompt_len, count);
            outcome.latency.prefill += full * tokens as f64 / (prompt_len * count) as f64;
        }
        outcome
    }

    /// Cost in seconds of paging `bytes` of KV cache between GPU HBM and the
    /// swap tier (host DRAM / NDP-DIMM), in either direction.
    ///
    /// Used by the serving scheduler's swap-out preemption: a victim's held
    /// KV pages move to the swap tier when it is preempted and move back
    /// when it resumes, each leg priced by this hook. The default charges a
    /// transfer over the reference PCIe link; engines whose KV path has its
    /// own bandwidth terms (offloading baselines, the DIMM interconnect)
    /// override it with those.
    fn swap_cost(&self, bytes: u64) -> f64 {
        hermes_gpu::PcieLink::default().transfer_time(bytes)
    }
}

/// Static per-run metadata captured when the run is planned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Display name of the system.
    pub system: String,
    /// The workload the run was planned for.
    pub workload: Workload,
    /// Cost of the prompting phase in seconds (for the planned workload's
    /// prompt length and batch size).
    pub prefill_seconds: f64,
    /// Peak bytes of GPU memory used for weights.
    pub gpu_weight_bytes: u64,
    /// Bytes of hot-neuron weights resident on the GPU.
    pub hot_neuron_bytes: u64,
    /// Fraction of activation mass covered by the hot set.
    pub hot_coverage: f64,
}

/// A validated, planned run: the static metadata plus the dynamic-batch
/// cost model that prices it, produced by [`InferenceEngine::plan`].
pub struct PlannedRun {
    /// Static metadata of the planned run.
    pub spec: SessionSpec,
    /// The pricing function of the run.
    pub cost: Box<dyn StepCostModel>,
}

/// An inference system bound to a hardware configuration, able to plan runs
/// and open step-wise [`Session`]s for workloads.
///
/// Implemented by the Hermes family ([`HermesEngine`](crate::HermesEngine))
/// and every baseline ([`AccelerateEngine`](crate::AccelerateEngine),
/// [`FlexGenEngine`](crate::FlexGenEngine),
/// [`DejaVuEngine`](crate::DejaVuEngine),
/// [`TensorRtLlmEngine`](crate::TensorRtLlmEngine));
/// [`SystemKind::engine`](crate::SystemKind::engine) dispatches to the right
/// implementation.
pub trait InferenceEngine {
    /// Display name of the system (as used in the paper's figures).
    fn name(&self) -> String;

    /// Validate `workload` against this engine's configuration and plan a
    /// run for it: the static metadata plus the [`StepCostModel`] that
    /// prices decode steps for any batch composition.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] /
    /// [`HermesError::InvalidConfig`] for invalid inputs,
    /// [`HermesError::ModelNotSupported`] when the system cannot run the
    /// model family, and [`HermesError::InsufficientMemory`] when the model
    /// does not fit in the configuration's memory.
    fn plan(&self, workload: &Workload) -> Result<PlannedRun, HermesError>;

    /// Validate `workload` and open a closed-loop session for it: the plan's
    /// cost model driven at the workload's fixed batch size.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::plan`].
    fn start(&self, workload: &Workload) -> Result<Box<dyn Session>, HermesError> {
        Ok(Box::new(SimSession::from_plan(self.plan(workload)?)))
    }
}

/// The shared [`Session`] implementation used by every simulated engine:
/// a [`PlannedRun`] driven at the planned workload's fixed batch size, with
/// every sequence at the same context length.
pub(crate) struct SimSession {
    spec: SessionSpec,
    cost: Box<dyn StepCostModel>,
    prefilled: bool,
    t: usize,
    breakdown: LatencyBreakdown,
    token_latencies: Vec<f64>,
    imbalance_sum: f64,
    imbalance_samples: usize,
}

impl SimSession {
    /// Create a fixed-batch session from a planned run.
    pub(crate) fn from_plan(plan: PlannedRun) -> Self {
        SimSession {
            spec: plan.spec,
            cost: plan.cost,
            prefilled: false,
            t: 0,
            breakdown: LatencyBreakdown::default(),
            token_latencies: Vec::new(),
            imbalance_sum: 0.0,
            imbalance_samples: 0,
        }
    }

    fn running_imbalance(&self) -> f64 {
        if self.imbalance_samples > 0 {
            self.imbalance_sum / self.imbalance_samples as f64
        } else {
            1.0
        }
    }

    fn event(&self, phase: Phase, index: usize, latency: LatencyBreakdown) -> TokenEvent {
        TokenEvent {
            phase,
            index,
            latency,
            hot_neuron_bytes: self.spec.hot_neuron_bytes,
            hot_coverage: self.spec.hot_coverage,
            dimm_imbalance: self.running_imbalance(),
        }
    }
}

impl Session for SimSession {
    fn prefill(&mut self) -> Result<TokenEvent, HermesError> {
        if self.prefilled {
            return Err(HermesError::SessionState(
                "prefill() may only run once per session".to_string(),
            ));
        }
        self.prefilled = true;
        let latency = LatencyBreakdown {
            prefill: self.spec.prefill_seconds,
            ..Default::default()
        };
        self.breakdown.prefill += latency.prefill;
        Ok(self.event(Phase::Prefill, 0, latency))
    }

    fn step(&mut self) -> Result<Option<TokenEvent>, HermesError> {
        if !self.prefilled {
            return Err(HermesError::SessionState(
                "step() requires prefill() to run first".to_string(),
            ));
        }
        if self.t >= self.spec.workload.gen_len {
            return Ok(None);
        }
        let batch = BatchState::uniform(
            self.spec.workload.batch,
            self.spec.workload.prompt_len + self.t,
        );
        let outcome = self.cost.decode_cost(&batch);
        self.breakdown = self.breakdown.merged(&outcome.latency);
        self.token_latencies.push(outcome.latency.total());
        self.imbalance_sum += outcome.imbalance_sum;
        self.imbalance_samples += outcome.imbalance_samples;
        let index = self.t;
        self.t += 1;
        Ok(Some(self.event(Phase::Decode, index, outcome.latency)))
    }

    fn phase(&self) -> SessionPhase {
        if !self.prefilled {
            SessionPhase::Created
        } else if self.t >= self.spec.workload.gen_len {
            SessionPhase::Done
        } else {
            SessionPhase::Decoding
        }
    }

    fn generated(&self) -> usize {
        self.t
    }

    fn is_done(&self) -> bool {
        self.t >= self.spec.workload.gen_len
    }

    fn report(&self) -> InferenceReport {
        InferenceReport {
            system: self.spec.system.clone(),
            workload: self.spec.workload.clone(),
            breakdown: self.breakdown,
            gpu_weight_bytes: self.spec.gpu_weight_bytes,
            hot_neuron_bytes: self.spec.hot_neuron_bytes,
            dimm_imbalance: self.running_imbalance(),
            latency_stats: TokenLatencyStats::from_decode_latencies(
                self.breakdown.prefill,
                &self.token_latencies,
            ),
        }
    }
}

/// Drive an internally constructed session to completion; infallible because
/// the protocol is upheld by construction.
pub(crate) fn drive(mut session: SimSession) -> InferenceReport {
    match run_session(&mut session) {
        Ok(report) => report,
        // Unreachable: a fresh SimSession never reports protocol errors.
        Err(_) => session.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn spec(gen_len: usize) -> SessionSpec {
        let mut workload = Workload::paper_default(ModelId::Opt13B);
        workload.gen_len = gen_len;
        SessionSpec {
            system: "test".to_string(),
            workload,
            prefill_seconds: 2.0,
            gpu_weight_bytes: 10,
            hot_neuron_bytes: 4,
            hot_coverage: 0.5,
        }
    }

    /// A cost model computed from a closure over the batch composition.
    struct FnCost<F: FnMut(&BatchState) -> StepOutcome>(F);

    impl<F: FnMut(&BatchState) -> StepOutcome> StepCostModel for FnCost<F> {
        fn prefill_cost(&self, _prompt_len: usize, _batch: usize) -> f64 {
            2.0
        }

        fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome {
            (self.0)(batch)
        }
    }

    fn constant_session(gen_len: usize, per_token: f64) -> SimSession {
        SimSession::from_plan(PlannedRun {
            spec: spec(gen_len),
            cost: Box::new(FnCost(move |_| {
                StepOutcome::balanced(LatencyBreakdown {
                    fc: per_token,
                    ..Default::default()
                })
            })),
        })
    }

    #[test]
    fn protocol_is_enforced() {
        let mut s = constant_session(3, 0.1);
        assert_eq!(s.phase(), SessionPhase::Created);
        assert!(matches!(s.step(), Err(HermesError::SessionState(_))));
        let first = s.prefill().unwrap();
        assert_eq!(first.phase, Phase::Prefill);
        assert_eq!(s.phase(), SessionPhase::Decoding);
        assert!(matches!(s.prefill(), Err(HermesError::SessionState(_))));
        let mut n = 0;
        while let Some(ev) = s.step().unwrap() {
            assert_eq!(ev.phase, Phase::Decode);
            assert_eq!(ev.index, n);
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(s.is_done());
        assert_eq!(s.phase(), SessionPhase::Done);
        assert_eq!(s.generated(), 3);
        assert!(s.step().unwrap().is_none());
    }

    #[test]
    fn report_folds_events() {
        let mut s = constant_session(4, 0.5);
        s.prefill().unwrap();
        while s.step().unwrap().is_some() {}
        let report = s.report();
        assert!((report.breakdown.prefill - 2.0).abs() < 1e-12);
        assert!((report.breakdown.fc - 2.0).abs() < 1e-12);
        assert!((report.latency_stats.ttft - 2.5).abs() < 1e-12);
        assert!((report.latency_stats.tpot_mean - 0.5).abs() < 1e-12);
        assert!((report.latency_stats.tpot_p99 - 0.5).abs() < 1e-12);
        assert_eq!(report.gpu_weight_bytes, 10);
        assert_eq!(report.hot_neuron_bytes, 4);
    }

    #[test]
    fn partial_reports_cover_only_generated_tokens() {
        let mut s = constant_session(8, 0.25);
        s.prefill().unwrap();
        s.step().unwrap();
        s.step().unwrap();
        let partial = s.report();
        assert!((partial.breakdown.fc - 0.5).abs() < 1e-12);
        assert!(!s.is_done());
    }

    #[test]
    fn steps_see_the_workload_batch_and_growing_context() {
        let mut s = SimSession::from_plan(PlannedRun {
            spec: {
                let mut sp = spec(3);
                sp.workload.batch = 4;
                sp.workload.prompt_len = 32;
                sp
            },
            cost: Box::new(FnCost(|batch: &BatchState| {
                assert_eq!(batch.size(), 4);
                StepOutcome::balanced(LatencyBreakdown {
                    // Encode the (uniform) context length into the latency so
                    // the assertion below can observe it.
                    fc: batch.context_lens()[0] as f64,
                    ..Default::default()
                })
            })),
        });
        s.prefill().unwrap();
        let contexts: Vec<f64> = std::iter::from_fn(|| s.step().unwrap())
            .map(|e| e.latency.fc)
            .collect();
        assert_eq!(contexts, vec![32.0, 33.0, 34.0]);
    }

    #[test]
    fn imbalance_samples_average_across_steps() {
        let mut weights = vec![2.0, 4.0].into_iter();
        let mut s = SimSession::from_plan(PlannedRun {
            spec: spec(2),
            cost: Box::new(FnCost(move |_| StepOutcome {
                latency: LatencyBreakdown::default(),
                imbalance_sum: weights.next().unwrap(),
                imbalance_samples: 1,
            })),
        });
        s.prefill().unwrap();
        let e1 = s.step().unwrap().unwrap();
        assert!((e1.dimm_imbalance - 2.0).abs() < 1e-12);
        let e2 = s.step().unwrap().unwrap();
        assert!((e2.dimm_imbalance - 3.0).abs() < 1e-12);
        assert!((s.report().dimm_imbalance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn chunked_step_cost_amortizes_prefill_over_chunks() {
        // prefill_cost is a constant 2.0 regardless of prompt length (like
        // the stream-dominated offloading engines), decode costs 0.5.
        let mut cost = FnCost(|_| {
            StepOutcome::balanced(LatencyBreakdown {
                fc: 0.5,
                ..Default::default()
            })
        });
        // A 16-token chunk of a 64-token prompt pays a quarter of the
        // prompt's one-shot prefill cost, on top of the decode step.
        let outcome = cost.chunked_step_cost(
            &[PrefillChunk {
                prompt_len: 64,
                tokens: 16,
            }],
            &BatchState::uniform(2, 40),
        );
        assert!((outcome.latency.prefill - 0.5).abs() < 1e-12);
        assert!((outcome.latency.fc - 0.5).abs() < 1e-12);
        // A solo prompt's chunks across four boundaries sum to exactly its
        // one-shot stall-the-world prefill cost.
        let total: f64 = (0..4)
            .map(|_| {
                cost.chunked_step_cost(
                    &[PrefillChunk {
                        prompt_len: 64,
                        tokens: 16,
                    }],
                    &BatchState::new(vec![]),
                )
                .latency
                .prefill
            })
            .sum();
        assert!((total - 2.0).abs() < 1e-12);
        // Four same-length chunks co-scheduled in one step form one group
        // sharing a batched prefill pass (prefill_cost is constant here, as
        // in the stream-dominated engines): 64 of 64*4 group tokens.
        let chunks = [PrefillChunk {
            prompt_len: 64,
            tokens: 16,
        }; 4];
        let grouped = cost.chunked_step_cost(&chunks, &BatchState::new(vec![]));
        assert!((grouped.latency.prefill - 0.5).abs() < 1e-12);
        // A pure-prefill step over an empty batch prices no decode work.
        assert_eq!(grouped.latency.fc, 0.0);
        // Mixed prompt lengths price per group: a lone 32-token prompt
        // chunk (8/32 of its one-shot cost) plus the 64-token group above.
        let mixed = cost.chunked_step_cost(
            &[
                PrefillChunk {
                    prompt_len: 64,
                    tokens: 16,
                },
                PrefillChunk {
                    prompt_len: 32,
                    tokens: 8,
                },
                PrefillChunk {
                    prompt_len: 64,
                    tokens: 16,
                },
            ],
            &BatchState::new(vec![]),
        );
        assert!((mixed.latency.prefill - (2.0 * 32.0 / 128.0 + 2.0 * 8.0 / 32.0)).abs() < 1e-12);
        // No prefill chunks and an empty batch cost nothing.
        let idle = cost.chunked_step_cost(&[], &BatchState::new(vec![]));
        assert_eq!(idle.latency.total(), 0.0);
    }

    #[test]
    fn batch_state_groups_by_context_length() {
        let b = BatchState::new(vec![40, 32, 40, 33, 32]);
        assert_eq!(b.size(), 5);
        assert_eq!(b.context_groups(), vec![(32, 2), (33, 1), (40, 2)]);
        let u = BatchState::uniform(3, 128);
        assert_eq!(u.context_groups(), vec![(128, 3)]);
        assert!(BatchState::new(vec![]).is_empty());
        assert!(BatchState::new(vec![]).context_groups().is_empty());
    }
}
