//! The step-wise engine API: engines, sessions and per-token events.
//!
//! The Hermes workflow is inherently token-stepped — predictor lookups,
//! hot/cold adjustment churn and window-based remapping (Algorithm 1) all
//! happen *between* decode steps — so the public API exposes that structure
//! directly instead of hiding it behind a closed-loop batch simulation:
//!
//! * [`InferenceEngine`] — a system (Hermes family or baseline) bound to a
//!   hardware configuration; [`InferenceEngine::start`] validates a workload
//!   and opens a [`Session`].
//! * [`Session`] — explicit per-request state: [`Session::prefill`] runs the
//!   prompting phase, each [`Session::step`] generates one token, and
//!   [`Session::report`] folds everything executed so far into an
//!   [`InferenceReport`].
//! * [`TokenEvent`] — emitted by every `prefill`/`step` call, carrying the
//!   per-token latency breakdown (predictor, FC, attention, migration, …)
//!   and the current hot-set / DIMM-balance state.
//!
//! [`run_session`] is the one-shot driver: it drives a session to completion
//! and returns the folded report, which is exactly what
//! [`try_run_system`](crate::try_run_system) does under the hood. Step-wise
//! and one-shot execution therefore agree by construction.

use serde::{Deserialize, Serialize};

use crate::error::HermesError;
use crate::report::{InferenceReport, LatencyBreakdown, TokenLatencyStats};
use crate::workload::Workload;

/// Which phase of a run a [`TokenEvent`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// The prompting phase ([`Session::prefill`]).
    Prefill,
    /// One decode step ([`Session::step`]).
    Decode,
}

/// One event of a [`Session`]'s stream: the prefill event followed by one
/// event per generated token.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenEvent {
    /// Which phase produced this event.
    pub phase: Phase,
    /// Decode-step index (0-based); 0 for the prefill event as well.
    pub index: usize,
    /// Latency breakdown of this event alone (not cumulative).
    pub latency: LatencyBreakdown,
    /// Bytes of hot-neuron weights resident on the GPU (0 for systems that
    /// do not partition neurons).
    pub hot_neuron_bytes: u64,
    /// Fraction of the activation mass covered by the hot set (0 for
    /// systems without a hot/cold partition).
    pub hot_coverage: f64,
    /// Running average DIMM load imbalance observed so far (1.0 = balanced;
    /// only meaningful for NDP-based systems).
    pub dimm_imbalance: f64,
}

impl TokenEvent {
    /// Total latency of this event in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.latency.total()
    }
}

/// Explicit per-request state of an inference run, produced by
/// [`InferenceEngine::start`].
///
/// The protocol is `prefill()` once, then `step()` until it returns
/// `Ok(None)`; [`Session::report`] can be called at any point to fold what
/// has been executed so far into an [`InferenceReport`].
pub trait Session {
    /// Run the prompting phase and return its event.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::SessionState`] if the session was already
    /// prefilled.
    fn prefill(&mut self) -> Result<TokenEvent, HermesError>;

    /// Generate the next token, or `Ok(None)` once the workload's `gen_len`
    /// tokens have all been produced.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::SessionState`] if [`Session::prefill`] has not
    /// run yet.
    fn step(&mut self) -> Result<Option<TokenEvent>, HermesError>;

    /// Number of decode tokens generated so far.
    fn generated(&self) -> usize;

    /// Whether every token of the workload has been generated.
    fn is_done(&self) -> bool;

    /// Fold everything executed so far into an [`InferenceReport`].
    ///
    /// Calling this mid-run yields a partial report (the metrics of the
    /// tokens generated so far); after the session is driven to completion
    /// it matches the one-shot report of
    /// [`try_run_system`](crate::try_run_system) exactly.
    fn report(&self) -> InferenceReport;
}

/// An inference system bound to a hardware configuration, able to open
/// step-wise [`Session`]s for workloads.
///
/// Implemented by the Hermes family ([`HermesEngine`](crate::HermesEngine))
/// and every baseline ([`AccelerateEngine`](crate::AccelerateEngine),
/// [`FlexGenEngine`](crate::FlexGenEngine),
/// [`DejaVuEngine`](crate::DejaVuEngine),
/// [`TensorRtLlmEngine`](crate::TensorRtLlmEngine));
/// [`SystemKind::engine`](crate::SystemKind::engine) dispatches to the right
/// implementation.
pub trait InferenceEngine {
    /// Display name of the system (as used in the paper's figures).
    fn name(&self) -> String;

    /// Validate `workload` against this engine's configuration and open a
    /// session for it.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] /
    /// [`HermesError::InvalidConfig`] for invalid inputs,
    /// [`HermesError::ModelNotSupported`] when the system cannot run the
    /// model family, and [`HermesError::InsufficientMemory`] when the model
    /// does not fit in the configuration's memory.
    fn start(&self, workload: &Workload) -> Result<Box<dyn Session>, HermesError>;
}

/// Drive a session to completion and return the folded report.
///
/// Works on a fresh session (runs prefill itself) and on a partially driven
/// one (resumes stepping where the caller left off).
///
/// # Errors
///
/// Propagates any [`HermesError`] raised by the session protocol (none for
/// a freshly started session).
pub fn run_session(session: &mut dyn Session) -> Result<InferenceReport, HermesError> {
    match session.prefill() {
        Ok(_) => {}
        // Already prefilled by the caller: resume stepping.
        Err(HermesError::SessionState(_)) => {}
        Err(e) => return Err(e),
    }
    while session.step()?.is_some() {}
    Ok(session.report())
}

/// What one decode step of a simulated engine produced: the per-token
/// latency plus any DIMM load-imbalance samples observed during the step.
pub(crate) struct StepOutcome {
    /// Latency breakdown of this token.
    pub latency: LatencyBreakdown,
    /// Sum of per-block imbalance samples observed during this token.
    pub imbalance_sum: f64,
    /// Number of imbalance samples observed during this token.
    pub imbalance_samples: usize,
}

impl StepOutcome {
    /// A step outcome with no imbalance samples (non-NDP systems).
    pub(crate) fn balanced(latency: LatencyBreakdown) -> Self {
        StepOutcome {
            latency,
            imbalance_sum: 0.0,
            imbalance_samples: 0,
        }
    }
}

/// Static per-session metadata captured when the session is planned.
pub(crate) struct SessionSpec {
    /// Display name of the system.
    pub system: String,
    /// The workload being run.
    pub workload: Workload,
    /// Cost of the prompting phase in seconds.
    pub prefill_seconds: f64,
    /// Peak bytes of GPU memory used for weights.
    pub gpu_weight_bytes: u64,
    /// Bytes of hot-neuron weights resident on the GPU.
    pub hot_neuron_bytes: u64,
    /// Fraction of activation mass covered by the hot set.
    pub hot_coverage: f64,
}

/// The shared [`Session`] implementation used by every simulated engine:
/// the engine plans its run up front and hands over a stepper closure that
/// computes one decode token per call.
pub(crate) struct SimSession {
    spec: SessionSpec,
    stepper: Box<dyn FnMut(usize) -> StepOutcome>,
    prefilled: bool,
    t: usize,
    breakdown: LatencyBreakdown,
    token_latencies: Vec<f64>,
    imbalance_sum: f64,
    imbalance_samples: usize,
}

impl SimSession {
    /// Create a session from its planned metadata and per-token stepper.
    pub(crate) fn new(spec: SessionSpec, stepper: Box<dyn FnMut(usize) -> StepOutcome>) -> Self {
        SimSession {
            spec,
            stepper,
            prefilled: false,
            t: 0,
            breakdown: LatencyBreakdown::default(),
            token_latencies: Vec::new(),
            imbalance_sum: 0.0,
            imbalance_samples: 0,
        }
    }

    fn running_imbalance(&self) -> f64 {
        if self.imbalance_samples > 0 {
            self.imbalance_sum / self.imbalance_samples as f64
        } else {
            1.0
        }
    }

    fn event(&self, phase: Phase, index: usize, latency: LatencyBreakdown) -> TokenEvent {
        TokenEvent {
            phase,
            index,
            latency,
            hot_neuron_bytes: self.spec.hot_neuron_bytes,
            hot_coverage: self.spec.hot_coverage,
            dimm_imbalance: self.running_imbalance(),
        }
    }
}

impl Session for SimSession {
    fn prefill(&mut self) -> Result<TokenEvent, HermesError> {
        if self.prefilled {
            return Err(HermesError::SessionState(
                "prefill() may only run once per session".to_string(),
            ));
        }
        self.prefilled = true;
        let latency = LatencyBreakdown {
            prefill: self.spec.prefill_seconds,
            ..Default::default()
        };
        self.breakdown.prefill += latency.prefill;
        Ok(self.event(Phase::Prefill, 0, latency))
    }

    fn step(&mut self) -> Result<Option<TokenEvent>, HermesError> {
        if !self.prefilled {
            return Err(HermesError::SessionState(
                "step() requires prefill() to run first".to_string(),
            ));
        }
        if self.t >= self.spec.workload.gen_len {
            return Ok(None);
        }
        let outcome = (self.stepper)(self.t);
        self.breakdown = self.breakdown.merged(&outcome.latency);
        self.token_latencies.push(outcome.latency.total());
        self.imbalance_sum += outcome.imbalance_sum;
        self.imbalance_samples += outcome.imbalance_samples;
        let index = self.t;
        self.t += 1;
        Ok(Some(self.event(Phase::Decode, index, outcome.latency)))
    }

    fn generated(&self) -> usize {
        self.t
    }

    fn is_done(&self) -> bool {
        self.t >= self.spec.workload.gen_len
    }

    fn report(&self) -> InferenceReport {
        InferenceReport {
            system: self.spec.system.clone(),
            workload: self.spec.workload.clone(),
            breakdown: self.breakdown,
            gpu_weight_bytes: self.spec.gpu_weight_bytes,
            hot_neuron_bytes: self.spec.hot_neuron_bytes,
            dimm_imbalance: self.running_imbalance(),
            latency_stats: TokenLatencyStats::from_decode_latencies(
                self.breakdown.prefill,
                &self.token_latencies,
            ),
        }
    }
}

/// Drive an internally constructed session to completion; infallible because
/// the protocol is upheld by construction.
pub(crate) fn drive(mut session: SimSession) -> InferenceReport {
    match run_session(&mut session) {
        Ok(report) => report,
        // Unreachable: a fresh SimSession never reports protocol errors.
        Err(_) => session.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn spec(gen_len: usize) -> SessionSpec {
        let mut workload = Workload::paper_default(ModelId::Opt13B);
        workload.gen_len = gen_len;
        SessionSpec {
            system: "test".to_string(),
            workload,
            prefill_seconds: 2.0,
            gpu_weight_bytes: 10,
            hot_neuron_bytes: 4,
            hot_coverage: 0.5,
        }
    }

    fn constant_session(gen_len: usize, per_token: f64) -> SimSession {
        SimSession::new(
            spec(gen_len),
            Box::new(move |_| {
                StepOutcome::balanced(LatencyBreakdown {
                    fc: per_token,
                    ..Default::default()
                })
            }),
        )
    }

    #[test]
    fn protocol_is_enforced() {
        let mut s = constant_session(3, 0.1);
        assert!(matches!(s.step(), Err(HermesError::SessionState(_))));
        let first = s.prefill().unwrap();
        assert_eq!(first.phase, Phase::Prefill);
        assert!(matches!(s.prefill(), Err(HermesError::SessionState(_))));
        let mut n = 0;
        while let Some(ev) = s.step().unwrap() {
            assert_eq!(ev.phase, Phase::Decode);
            assert_eq!(ev.index, n);
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(s.is_done());
        assert_eq!(s.generated(), 3);
        assert!(s.step().unwrap().is_none());
    }

    #[test]
    fn report_folds_events() {
        let mut s = constant_session(4, 0.5);
        s.prefill().unwrap();
        while s.step().unwrap().is_some() {}
        let report = s.report();
        assert!((report.breakdown.prefill - 2.0).abs() < 1e-12);
        assert!((report.breakdown.fc - 2.0).abs() < 1e-12);
        assert!((report.latency_stats.ttft - 2.5).abs() < 1e-12);
        assert!((report.latency_stats.tpot_mean - 0.5).abs() < 1e-12);
        assert!((report.latency_stats.tpot_p99 - 0.5).abs() < 1e-12);
        assert_eq!(report.gpu_weight_bytes, 10);
        assert_eq!(report.hot_neuron_bytes, 4);
    }

    #[test]
    fn partial_reports_cover_only_generated_tokens() {
        let mut s = constant_session(8, 0.25);
        s.prefill().unwrap();
        s.step().unwrap();
        s.step().unwrap();
        let partial = s.report();
        assert!((partial.breakdown.fc - 0.5).abs() < 1e-12);
        assert!(!s.is_done());
    }

    #[test]
    fn imbalance_samples_average_across_steps() {
        let mut weights = vec![2.0, 4.0].into_iter();
        let mut s = SimSession::new(
            spec(2),
            Box::new(move |_| StepOutcome {
                latency: LatencyBreakdown::default(),
                imbalance_sum: weights.next().unwrap(),
                imbalance_samples: 1,
            }),
        );
        s.prefill().unwrap();
        let e1 = s.step().unwrap().unwrap();
        assert!((e1.dimm_imbalance - 2.0).abs() < 1e-12);
        let e2 = s.step().unwrap().unwrap();
        assert!((e2.dimm_imbalance - 3.0).abs() < 1e-12);
        assert!((s.report().dimm_imbalance - 3.0).abs() < 1e-12);
    }
}
