//! Dispatch over every inference system evaluated in the paper.
//!
//! [`SystemKind`] names a system; [`SystemKind::engine`] binds it to a
//! hardware configuration as a `Box<dyn InferenceEngine>`, from which
//! step-wise [`Session`](crate::Session)s are opened. [`try_run_system`] is
//! the one-shot convenience driver over that machinery.

use serde::{Deserialize, Serialize};

use crate::baselines::{AccelerateEngine, DejaVuEngine, FlexGenEngine, TensorRtLlmEngine};
use crate::engine::{run_session, InferenceEngine};
use crate::error::HermesError;
use crate::hermes::{HermesEngine, HermesOptions};
use crate::report::InferenceReport;
use crate::{SystemConfig, Workload};

/// Every inference system that appears in the evaluation figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystemKind {
    /// HuggingFace Accelerate offloading.
    Accelerate,
    /// FlexGen zig-zag offloading.
    FlexGen,
    /// Deja Vu sparsity-aware offloading (OPT models only).
    DejaVu,
    /// A Hermes-family system (full Hermes, Hermes-host, Hermes-base or one
    /// of the scheduling ablations, selected by the options).
    Hermes(HermesOptions),
    /// TensorRT-LLM running on `num_gpus` A100-40GB GPUs.
    TensorRtLlm {
        /// Number of A100 GPUs.
        num_gpus: usize,
    },
}

impl SystemKind {
    /// The full Hermes system.
    pub fn hermes() -> Self {
        SystemKind::Hermes(HermesOptions::full())
    }

    /// Hermes-host (cold neurons on the host CPU).
    pub fn hermes_host() -> Self {
        SystemKind::Hermes(HermesOptions::host())
    }

    /// Hermes-base (no activation sparsity).
    pub fn hermes_base() -> Self {
        SystemKind::Hermes(HermesOptions::base())
    }

    /// The five systems compared in Fig. 9 and Fig. 11, in plot order.
    pub fn figure9_lineup() -> Vec<SystemKind> {
        vec![
            SystemKind::Accelerate,
            SystemKind::FlexGen,
            SystemKind::DejaVu,
            SystemKind::hermes_host(),
            SystemKind::hermes_base(),
            SystemKind::hermes(),
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            SystemKind::Accelerate => "Huggingface Accelerate".to_string(),
            SystemKind::FlexGen => "FlexGen".to_string(),
            SystemKind::DejaVu => "Deja Vu".to_string(),
            SystemKind::Hermes(options) => options.name().to_string(),
            SystemKind::TensorRtLlm { num_gpus } => format!("TensorRT-LLM ({num_gpus}x A100)"),
        }
    }

    /// Bind this system to a hardware configuration, returning the engine
    /// that opens step-wise sessions for it.
    ///
    /// The TensorRT-LLM reference runs on its own multi-A100 platform and
    /// ignores `config`.
    pub fn engine(&self, config: &SystemConfig) -> Box<dyn InferenceEngine> {
        match *self {
            SystemKind::Accelerate => Box::new(AccelerateEngine::new(config.clone())),
            SystemKind::FlexGen => Box::new(FlexGenEngine::new(config.clone())),
            SystemKind::DejaVu => Box::new(DejaVuEngine::new(config.clone())),
            SystemKind::Hermes(options) => Box::new(HermesEngine::new(config.clone(), options)),
            SystemKind::TensorRtLlm { num_gpus } => {
                Box::new(TensorRtLlmEngine::new(num_gpus).with_host_config(config.clone()))
            }
        }
    }
}

/// Simulate a system on a workload in one shot: open a session via
/// [`SystemKind::engine`], drive it to completion and fold its per-token
/// events into the report.
///
/// # Errors
///
/// Returns [`HermesError::InvalidWorkload`] / [`HermesError::InvalidConfig`]
/// for invalid inputs, [`HermesError::ModelNotSupported`] for FlexGen and
/// Deja Vu on non-OPT models, and [`HermesError::InsufficientMemory`] when
/// the model does not fit in the configuration's memory (the "N.P." entries
/// of Figs. 11 and 14).
pub fn try_run_system(
    kind: SystemKind,
    workload: &Workload,
    config: &SystemConfig,
) -> Result<InferenceReport, HermesError> {
    // Validation happens in `InferenceEngine::start`, the single entry point
    // shared with callers who drive sessions themselves.
    let mut session = kind.engine(config).start(workload)?;
    run_session(session.as_mut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn quick(model: ModelId) -> Workload {
        let mut w = Workload::paper_default(model);
        w.gen_len = 8;
        w.prompt_len = 32;
        w
    }

    #[test]
    fn figure9_ordering_holds_for_opt_models() {
        // The paper's headline ordering: Hermes > Hermes-host > Deja Vu >
        // FlexGen > Accelerate.
        let config = SystemConfig::paper_default();
        let w = quick(ModelId::Opt30B);
        let tps: Vec<f64> = [
            SystemKind::Accelerate,
            SystemKind::FlexGen,
            SystemKind::DejaVu,
            SystemKind::hermes_host(),
            SystemKind::hermes(),
        ]
        .into_iter()
        .map(|k| try_run_system(k, &w, &config).unwrap().tokens_per_second())
        .collect();
        for pair in tps.windows(2) {
            assert!(
                pair[1] > pair[0],
                "expected increasing throughput, got {tps:?}"
            );
        }
    }

    #[test]
    fn flexgen_and_dejavu_reject_llama() {
        let config = SystemConfig::paper_default();
        let w = quick(ModelId::Llama2_13B);
        assert!(matches!(
            try_run_system(SystemKind::FlexGen, &w, &config),
            Err(HermesError::ModelNotSupported { .. })
        ));
        assert!(matches!(
            try_run_system(SystemKind::DejaVu, &w, &config),
            Err(HermesError::ModelNotSupported { .. })
        ));
        // Accelerate and Hermes support every model.
        assert!(try_run_system(SystemKind::Accelerate, &w, &config).is_ok());
        assert!(try_run_system(SystemKind::hermes(), &w, &config).is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SystemKind::hermes().name(), "Hermes");
        assert_eq!(SystemKind::FlexGen.name(), "FlexGen");
        assert_eq!(
            SystemKind::TensorRtLlm { num_gpus: 5 }.name(),
            "TensorRT-LLM (5x A100)"
        );
        assert_eq!(SystemKind::figure9_lineup().len(), 6);
    }

    #[test]
    fn engine_names_match_kind_names() {
        let config = SystemConfig::paper_default();
        let mut kinds = SystemKind::figure9_lineup();
        kinds.push(SystemKind::TensorRtLlm { num_gpus: 5 });
        for kind in kinds {
            assert_eq!(kind.engine(&config).name(), kind.name());
        }
    }

    #[test]
    fn hermes_speedup_over_offloading_is_large() {
        // Fig. 9: Hermes achieves orders-of-magnitude speedups over
        // Accelerate and large speedups over Deja Vu on OPT models.
        let config = SystemConfig::paper_default();
        let w = quick(ModelId::Opt30B);
        let tps = |kind| {
            try_run_system(kind, &w, &config)
                .unwrap()
                .tokens_per_second()
        };
        let hermes = tps(SystemKind::hermes());
        let accelerate = tps(SystemKind::Accelerate);
        let dejavu = tps(SystemKind::DejaVu);
        assert!(
            hermes / accelerate > 20.0,
            "vs accelerate {:.1}",
            hermes / accelerate
        );
        assert!(hermes / dejavu > 5.0, "vs dejavu {:.1}", hermes / dejavu);
    }

    #[test]
    fn invalid_workloads_and_configs_return_errors_not_panics() {
        let config = SystemConfig::paper_default();
        let mut w = quick(ModelId::Opt13B);
        w.batch = 0;
        assert!(matches!(
            try_run_system(SystemKind::hermes(), &w, &config),
            Err(HermesError::InvalidWorkload(_))
        ));
        let w = quick(ModelId::Opt13B);
        let mut bad_config = SystemConfig::paper_default();
        bad_config.num_dimms = 0;
        assert!(matches!(
            try_run_system(SystemKind::hermes(), &w, &bad_config),
            Err(HermesError::InvalidConfig(_))
        ));
        // Invalid inputs are rejected for every system kind, including ones
        // that do not otherwise touch the offending field.
        assert!(matches!(
            try_run_system(SystemKind::Accelerate, &w, &bad_config),
            Err(HermesError::InvalidConfig(_))
        ));
        assert!(matches!(
            try_run_system(SystemKind::TensorRtLlm { num_gpus: 5 }, &w, &bad_config),
            Err(HermesError::InvalidConfig(_))
        ));
    }
}
