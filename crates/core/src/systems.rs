//! Dispatch over every inference system evaluated in the paper.

use serde::{Deserialize, Serialize};

use crate::baselines::{run_accelerate, run_dejavu, run_flexgen, run_tensorrt_llm};
use crate::hermes::{HermesOptions, HermesSystem, Unsupported};
use crate::report::InferenceReport;
use crate::{SystemConfig, Workload};

/// Every inference system that appears in the evaluation figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystemKind {
    /// HuggingFace Accelerate offloading.
    Accelerate,
    /// FlexGen zig-zag offloading.
    FlexGen,
    /// Deja Vu sparsity-aware offloading (OPT models only).
    DejaVu,
    /// A Hermes-family system (full Hermes, Hermes-host, Hermes-base or one
    /// of the scheduling ablations, selected by the options).
    Hermes(HermesOptions),
    /// TensorRT-LLM running on `num_gpus` A100-40GB GPUs.
    TensorRtLlm {
        /// Number of A100 GPUs.
        num_gpus: usize,
    },
}

impl SystemKind {
    /// The full Hermes system.
    pub fn hermes() -> Self {
        SystemKind::Hermes(HermesOptions::full())
    }

    /// Hermes-host (cold neurons on the host CPU).
    pub fn hermes_host() -> Self {
        SystemKind::Hermes(HermesOptions::host())
    }

    /// Hermes-base (no activation sparsity).
    pub fn hermes_base() -> Self {
        SystemKind::Hermes(HermesOptions::base())
    }

    /// The five systems compared in Fig. 9 and Fig. 11, in plot order.
    pub fn figure9_lineup() -> Vec<SystemKind> {
        vec![
            SystemKind::Accelerate,
            SystemKind::FlexGen,
            SystemKind::DejaVu,
            SystemKind::hermes_host(),
            SystemKind::hermes_base(),
            SystemKind::hermes(),
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            SystemKind::Accelerate => "Huggingface Accelerate".to_string(),
            SystemKind::FlexGen => "FlexGen".to_string(),
            SystemKind::DejaVu => "Deja Vu".to_string(),
            SystemKind::Hermes(options) => options.name().to_string(),
            SystemKind::TensorRtLlm { num_gpus } => format!("TensorRT-LLM ({num_gpus}x A100)"),
        }
    }
}

/// Simulate a system on a workload, reporting why it cannot run when the
/// combination is unsupported (the "N.P." entries of Figs. 11 and 14).
///
/// # Errors
///
/// Returns [`Unsupported::ModelNotSupported`] for FlexGen/Deja Vu on
/// non-OPT models and [`Unsupported::InsufficientMemory`] when the model
/// does not fit in the configuration's memory.
pub fn try_run_system(
    kind: SystemKind,
    workload: &Workload,
    config: &SystemConfig,
) -> Result<InferenceReport, Unsupported> {
    workload.validate().expect("workload must be valid");
    config.validate().expect("system config must be valid");
    match kind {
        SystemKind::Accelerate => Ok(run_accelerate(workload, config)),
        SystemKind::FlexGen => {
            if workload.model.is_opt_family() {
                Ok(run_flexgen(workload, config))
            } else {
                Err(Unsupported::ModelNotSupported)
            }
        }
        SystemKind::DejaVu => {
            if workload.model.is_opt_family() {
                Ok(run_dejavu(workload, config))
            } else {
                Err(Unsupported::ModelNotSupported)
            }
        }
        SystemKind::Hermes(options) => {
            HermesSystem::new(workload.clone(), config.clone(), options).run()
        }
        SystemKind::TensorRtLlm { num_gpus } => Ok(run_tensorrt_llm(workload, num_gpus, 300.0e9)),
    }
}

/// Simulate a system on a workload.
///
/// # Panics
///
/// Panics if the combination is unsupported; use [`try_run_system`] when
/// "not supported" is an expected outcome.
pub fn run_system(kind: SystemKind, workload: &Workload, config: &SystemConfig) -> InferenceReport {
    try_run_system(kind, workload, config)
        .unwrap_or_else(|e| panic!("{} cannot run {}: {:?}", kind.name(), workload.model, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn quick(model: ModelId) -> Workload {
        let mut w = Workload::paper_default(model);
        w.gen_len = 8;
        w.prompt_len = 32;
        w
    }

    #[test]
    fn figure9_ordering_holds_for_opt_models() {
        // The paper's headline ordering: Hermes > Hermes-host > Deja Vu >
        // FlexGen > Accelerate.
        let config = SystemConfig::paper_default();
        let w = quick(ModelId::Opt30B);
        let tps: Vec<f64> = [
            SystemKind::Accelerate,
            SystemKind::FlexGen,
            SystemKind::DejaVu,
            SystemKind::hermes_host(),
            SystemKind::hermes(),
        ]
        .into_iter()
        .map(|k| run_system(k, &w, &config).tokens_per_second())
        .collect();
        for pair in tps.windows(2) {
            assert!(
                pair[1] > pair[0],
                "expected increasing throughput, got {tps:?}"
            );
        }
    }

    #[test]
    fn flexgen_and_dejavu_reject_llama() {
        let config = SystemConfig::paper_default();
        let w = quick(ModelId::Llama2_13B);
        assert!(matches!(
            try_run_system(SystemKind::FlexGen, &w, &config),
            Err(Unsupported::ModelNotSupported)
        ));
        assert!(matches!(
            try_run_system(SystemKind::DejaVu, &w, &config),
            Err(Unsupported::ModelNotSupported)
        ));
        // Accelerate and Hermes support every model.
        assert!(try_run_system(SystemKind::Accelerate, &w, &config).is_ok());
        assert!(try_run_system(SystemKind::hermes(), &w, &config).is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SystemKind::hermes().name(), "Hermes");
        assert_eq!(SystemKind::FlexGen.name(), "FlexGen");
        assert_eq!(
            SystemKind::TensorRtLlm { num_gpus: 5 }.name(),
            "TensorRT-LLM (5x A100)"
        );
        assert_eq!(SystemKind::figure9_lineup().len(), 6);
    }

    #[test]
    fn hermes_speedup_over_offloading_is_large() {
        // Fig. 9: Hermes achieves orders-of-magnitude speedups over
        // Accelerate and large speedups over Deja Vu on OPT models.
        let config = SystemConfig::paper_default();
        let w = quick(ModelId::Opt30B);
        let hermes = run_system(SystemKind::hermes(), &w, &config).tokens_per_second();
        let accelerate = run_system(SystemKind::Accelerate, &w, &config).tokens_per_second();
        let dejavu = run_system(SystemKind::DejaVu, &w, &config).tokens_per_second();
        assert!(
            hermes / accelerate > 20.0,
            "vs accelerate {:.1}",
            hermes / accelerate
        );
        assert!(hermes / dejavu > 5.0, "vs dejavu {:.1}", hermes / dejavu);
    }
}
