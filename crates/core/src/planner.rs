//! Neuron planning for the Hermes-family engines: choosing the GPU-resident
//! hot set and laying the cold neurons out over the DIMMs, at the cluster
//! granularity the end-to-end engines simulate with.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};
use hermes_scheduler::{ClusterColdPlacement, ColdPlacementPolicy};
use hermes_sparsity::{
    ClusterPopSums, NeuronPopularity, SparsityProfile, StatisticalActivityModel,
};

/// How the hot (GPU-resident) set is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Hot set chosen by the true runtime activation frequencies — what the
    /// online-adjusted system converges to (the oracle of Section III-B).
    Oracle,
    /// Hot set chosen from offline-profiled frequencies that have drifted
    /// from the runtime behaviour: `drift` is the fraction of neurons whose
    /// profiled rank no longer matches reality (the paper observes that
    /// ~52% of initially-hot neurons change activity during inference).
    OfflineProfile {
        /// Fraction of neurons whose profiled score is stale.
        drift: f64,
    },
    /// Random hot set (the Hermes-random ablation of Fig. 13).
    Random,
}

/// The planned placement of a model's neurons for one engine run.
#[derive(Debug, Clone)]
pub struct NeuronPlan {
    /// Per (layer, block): cluster-level popularity sums of the whole block.
    pub full: Vec<[ClusterPopSums; 2]>,
    /// Per (layer, block): cluster-level popularity sums of the hot set.
    pub hot: Vec<[ClusterPopSums; 2]>,
    /// Per (layer, block): cluster-level popularity sums of the cold set.
    pub cold: Vec<[ClusterPopSums; 2]>,
    /// Cold-neuron placement across the DIMMs.
    pub cold_placement: ClusterColdPlacement,
    /// Bytes of hot-neuron weights resident in GPU memory (surfaced on every
    /// [`TokenEvent`](crate::TokenEvent) of a Hermes session).
    pub hot_bytes: u64,
    /// Fraction of total activation mass covered by the hot set (surfaced as
    /// [`TokenEvent::hot_coverage`](crate::TokenEvent::hot_coverage)).
    pub hot_coverage: f64,
}

impl NeuronPlan {
    /// Build a plan: select hot neurons by `policy` under `gpu_budget_bytes`,
    /// then place the cold remainder over `num_dimms` DIMMs.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        cfg: &ModelConfig,
        profile: &SparsityProfile,
        popularity: &NeuronPopularity,
        activity: &StatisticalActivityModel,
        gpu_budget_bytes: u64,
        policy: MappingPolicy,
        num_dimms: usize,
        placement: ColdPlacementPolicy,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9);
        // Scores used to rank neurons for the hot set.
        let scores: Vec<[Vec<f64>; 2]> = (0..cfg.num_layers)
            .map(|layer| {
                let mut per_block: Vec<Vec<f64>> = Vec::with_capacity(2);
                for block in Block::ALL {
                    let pop = popularity.block(layer, block);
                    let mut s: Vec<f64> = (0..pop.len()).map(|i| pop.prob(i)).collect();
                    match policy {
                        MappingPolicy::Oracle => {}
                        MappingPolicy::OfflineProfile { drift } => {
                            // A `drift` fraction of neurons have stale
                            // profiled scores: swap them with random peers.
                            let n = s.len();
                            let stale = ((n as f64) * drift) as usize;
                            for _ in 0..stale / 2 {
                                let a = rng.gen_range(0..n);
                                let b = rng.gen_range(0..n);
                                s.swap(a, b);
                            }
                        }
                        MappingPolicy::Random => {
                            s.shuffle(&mut rng);
                        }
                    }
                    per_block.push(s);
                }
                // hermes-lint: allow(D3, reason = "the loop above pushed exactly one entry per Block::ALL member")
                let mlp = per_block.pop().expect("mlp");
                // hermes-lint: allow(D3, reason = "the loop above pushed exactly one entry per Block::ALL member")
                let attn = per_block.pop().expect("attention");
                [attn, mlp]
            })
            .collect();

        // Global greedy selection by score density (score per byte).
        struct Candidate {
            layer: u32,
            block: Block,
            neuron: u32,
            density: f64,
            bytes: u64,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for (layer, layer_scores) in scores.iter().enumerate() {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let bytes = cfg.neuron_weight_bytes(block);
                let flops = cfg.neuron_flops(block) as f64;
                for (i, &score) in layer_scores[bi].iter().enumerate() {
                    candidates.push(Candidate {
                        layer: layer as u32,
                        block,
                        neuron: i as u32,
                        density: score * flops / bytes as f64,
                        bytes,
                    });
                }
            }
        }
        candidates.sort_by(|a, b| b.density.total_cmp(&a.density));
        // Hot membership flags per (layer, block).
        let mut hot_flags: Vec<[Vec<bool>; 2]> = (0..cfg.num_layers)
            .map(|layer| {
                [
                    vec![false; popularity.block(layer, Block::Attention).len()],
                    vec![false; popularity.block(layer, Block::Mlp).len()],
                ]
            })
            .collect();
        let mut hot_bytes = 0u64;
        for c in &candidates {
            if hot_bytes + c.bytes > gpu_budget_bytes {
                continue;
            }
            hot_bytes += c.bytes;
            let bi = match c.block {
                Block::Attention => 0,
                Block::Mlp => 1,
            };
            hot_flags[c.layer as usize][bi][c.neuron as usize] = true;
        }

        // Cluster-level popularity sums of the full / hot / cold sets.
        let mut full = Vec::with_capacity(cfg.num_layers);
        let mut hot = Vec::with_capacity(cfg.num_layers);
        let mut cold = Vec::with_capacity(cfg.num_layers);
        let mut hot_mass = 0.0;
        let mut total_mass = 0.0;
        for (layer, layer_flags) in hot_flags.iter().enumerate() {
            let mut full_blocks = Vec::with_capacity(2);
            let mut hot_blocks = Vec::with_capacity(2);
            let mut cold_blocks = Vec::with_capacity(2);
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let pop = popularity.block(layer, block);
                let clusters = activity.clusters().block(layer, block);
                let flags = &layer_flags[bi];
                let hot_sums = ClusterPopSums::from_subset(
                    pop,
                    clusters,
                    (0..pop.len() as u32).filter(|&i| flags[i as usize]),
                );
                let cold_sums = ClusterPopSums::from_subset(
                    pop,
                    clusters,
                    (0..pop.len() as u32).filter(|&i| !flags[i as usize]),
                );
                let full_sums = ClusterPopSums::full(pop, clusters);
                let flops = cfg.neuron_flops(block) as f64;
                hot_mass += hot_sums.total_popsum() * flops;
                total_mass += full_sums.total_popsum() * flops;
                full_blocks.push(full_sums);
                hot_blocks.push(hot_sums);
                cold_blocks.push(cold_sums);
            }
            let to_array = |mut v: Vec<ClusterPopSums>| -> [ClusterPopSums; 2] {
                // hermes-lint: allow(D3, reason = "callers pass exactly one entry per Block::ALL member")
                let mlp = v.pop().expect("mlp");
                // hermes-lint: allow(D3, reason = "callers pass exactly one entry per Block::ALL member")
                let attn = v.pop().expect("attention");
                [attn, mlp]
            };
            full.push(to_array(full_blocks));
            hot.push(to_array(hot_blocks));
            cold.push(to_array(cold_blocks));
        }
        let cold_placement = ClusterColdPlacement::build(&cold, num_dimms, placement);
        let _ = profile;
        NeuronPlan {
            full,
            hot,
            cold,
            cold_placement,
            hot_bytes,
            hot_coverage: if total_mass > 0.0 {
                hot_mass / total_mass
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 3;
        cfg.hidden_size = 64;
        cfg.ffn_hidden = 256;
        cfg.num_heads = 8;
        cfg.num_kv_heads = 8;
        cfg
    }

    fn build_plan(policy: MappingPolicy, budget_fraction: f64) -> (ModelConfig, NeuronPlan) {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let popularity = NeuronPopularity::generate(&cfg, &profile, 7);
        let activity = StatisticalActivityModel::new(&cfg, &profile, 7);
        let budget = (cfg.memory_footprint().sparse_bytes() as f64 * budget_fraction) as u64;
        let plan = NeuronPlan::build(
            &cfg,
            &profile,
            &popularity,
            &activity,
            budget,
            policy,
            4,
            ColdPlacementPolicy::Contiguous,
            7,
        );
        (cfg, plan)
    }

    #[test]
    fn hot_bytes_respect_budget() {
        let (cfg, plan) = build_plan(MappingPolicy::Oracle, 0.2);
        let budget = (cfg.memory_footprint().sparse_bytes() as f64 * 0.2) as u64;
        assert!(plan.hot_bytes <= budget);
        assert!(plan.hot_bytes > 0);
    }

    #[test]
    fn oracle_covers_more_activation_mass_than_random() {
        let (_, oracle) = build_plan(MappingPolicy::Oracle, 0.2);
        let (_, random) = build_plan(MappingPolicy::Random, 0.2);
        assert!(
            oracle.hot_coverage > random.hot_coverage + 0.05,
            "oracle {:.3} vs random {:.3}",
            oracle.hot_coverage,
            random.hot_coverage
        );
    }

    #[test]
    fn drifted_profile_sits_between_oracle_and_random() {
        let (_, oracle) = build_plan(MappingPolicy::Oracle, 0.2);
        let (_, drifted) = build_plan(MappingPolicy::OfflineProfile { drift: 0.5 }, 0.2);
        let (_, random) = build_plan(MappingPolicy::Random, 0.2);
        assert!(oracle.hot_coverage >= drifted.hot_coverage - 1e-9);
        assert!(drifted.hot_coverage >= random.hot_coverage - 0.05);
    }

    #[test]
    fn paper_20_80_observation_holds_for_oracle_plan() {
        // With a budget of ~20% of the sparse bytes, the oracle hot set
        // should cover well over half of the activation-weighted compute.
        let (_, plan) = build_plan(MappingPolicy::Oracle, 0.2);
        assert!(
            plan.hot_coverage > 0.55,
            "hot coverage {:.3}",
            plan.hot_coverage
        );
    }

    #[test]
    fn hot_and_cold_partition_every_neuron() {
        let (cfg, plan) = build_plan(MappingPolicy::Oracle, 0.3);
        for layer in 0..cfg.num_layers {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let total = plan.full[layer][bi].total_count();
                let split = plan.hot[layer][bi].total_count() + plan.cold[layer][bi].total_count();
                assert!((total - split).abs() < 1e-9, "layer {layer} {block}");
            }
        }
    }

    #[test]
    fn zero_budget_means_everything_cold() {
        let (_, plan) = build_plan(MappingPolicy::Oracle, 0.0);
        assert_eq!(plan.hot_bytes, 0);
        assert!(plan.hot_coverage.abs() < 1e-12);
    }
}
