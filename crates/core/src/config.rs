//! Hardware configuration of a simulated system.

use serde::{Deserialize, Serialize};

use hermes_gpu::{GpuDevice, HostCpu, PcieLink};
use hermes_ndp::DimmConfig;

use crate::error::HermesError;

/// The hardware a system is simulated on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The (single) consumer GPU.
    pub gpu: GpuDevice,
    /// The host↔GPU PCIe link.
    pub pcie: PcieLink,
    /// Effective PCIe bandwidth fraction achieved by framework-driven
    /// offloading baselines (HuggingFace Accelerate, FlexGen, Deja Vu).
    /// Real frameworks move weights from pageable host memory through
    /// framework buffers and reach only a fraction of the pinned-DMA peak;
    /// Hermes's small, pinned hot-neuron copies use the full link.
    pub offload_bandwidth_derate: f64,
    /// The host CPU (used by Hermes-host and for scheduling overheads).
    pub host_cpu: HostCpu,
    /// NDP-DIMM configuration.
    pub dimm: DimmConfig,
    /// Number of NDP-DIMMs attached (8 in the paper's evaluation).
    pub num_dimms: usize,
}

impl SystemConfig {
    /// The paper's evaluation platform: one RTX 4090, PCIe 4.0 ×16,
    /// i9-13900K host, 8 × 32 GB DDR4-3200 NDP-DIMMs (Table II).
    pub fn paper_default() -> Self {
        SystemConfig {
            gpu: GpuDevice::rtx_4090(),
            pcie: PcieLink::gen4_x16(),
            offload_bandwidth_derate: 0.25,
            host_cpu: HostCpu::i9_13900k(),
            dimm: DimmConfig::ddr4_3200(),
            num_dimms: 8,
        }
    }

    /// Same platform with a different GPU (Fig. 15).
    pub fn with_gpu(mut self, gpu: GpuDevice) -> Self {
        self.gpu = gpu;
        self
    }

    /// Same platform with a different number of DIMMs (Fig. 14).
    pub fn with_num_dimms(mut self, num_dimms: usize) -> Self {
        self.num_dimms = num_dimms;
        self
    }

    /// Same platform with a different GEMV-unit width (Fig. 16).
    pub fn with_gemv_multipliers(mut self, multipliers: u32) -> Self {
        self.dimm = self.dimm.clone().with_multipliers(multipliers);
        self
    }

    /// Effective PCIe bandwidth (bytes/s) available to framework-driven
    /// offloading of bulk weights.
    pub fn offload_bandwidth(&self) -> f64 {
        self.pcie.effective_bandwidth() * self.offload_bandwidth_derate
    }

    /// Total NDP-DIMM capacity in bytes.
    pub fn dimm_capacity_total(&self) -> u64 {
        self.dimm.capacity_bytes * self.num_dimms as u64
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HermesError> {
        self.gpu.validate().map_err(HermesError::InvalidConfig)?;
        self.dimm.validate().map_err(HermesError::InvalidConfig)?;
        if self.num_dimms == 0 {
            return Err(HermesError::InvalidConfig(
                "num_dimms must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.offload_bandwidth_derate) {
            return Err(HermesError::InvalidConfig(
                "offload_bandwidth_derate must be within [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::GIB;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SystemConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.num_dimms, 8);
        assert_eq!(cfg.dimm_capacity_total(), 256 * GIB);
        assert!(cfg.offload_bandwidth() < cfg.pcie.effective_bandwidth());
    }

    #[test]
    fn builders_change_one_field() {
        let cfg = SystemConfig::paper_default()
            .with_gpu(GpuDevice::tesla_t4())
            .with_num_dimms(4)
            .with_gemv_multipliers(64);
        assert_eq!(cfg.gpu.name, "Tesla T4");
        assert_eq!(cfg.num_dimms, 4);
        assert_eq!(cfg.dimm.gemv_multipliers, 64);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = SystemConfig::paper_default();
        cfg.num_dimms = 0;
        assert!(matches!(cfg.validate(), Err(HermesError::InvalidConfig(_))));
        let mut cfg = SystemConfig::paper_default();
        cfg.offload_bandwidth_derate = 1.5;
        assert!(matches!(cfg.validate(), Err(HermesError::InvalidConfig(_))));
    }
}
