//! Checked numeric conversions for KV/token accounting.
//!
//! Lint rule S1 bans raw `as` casts in the accounting modules (`kv.rs`,
//! `prefix.rs`, `tallies.rs`, `report.rs`): a silent truncation there
//! corrupts block/token arithmetic that the bitwise-equivalence tests
//! certify. Every conversion instead goes through these helpers, which make
//! the domain assumptions explicit and auditable in one place:
//!
//! - `usize` ↔ `u64` are mutually lossless under the 64-bit platform
//!   assertion below (the simulator targets 64-bit hosts only).
//! - int → `f64` is exact for values below 2^53. Token, block and request
//!   counts in any representable workload sit far below that bound (2^53
//!   tokens at even 10⁶ tokens/s is ~285 years of simulated decode), so the
//!   conversions here are exact in practice; the helpers centralize that
//!   argument instead of scattering it over dozens of `as f64` sites.
//!
//! The helpers are deliberately infallible — the alternative (threading
//! `TryFrom` errors through every report fold) would turn arithmetic that
//! cannot fail on supported platforms into error-handling noise.

// The serving simulator's accounting assumes usize can hold any u64 block
// index and vice versa. Compilation fails on 32-bit targets rather than
// truncating at runtime.
const _: () = assert!(
    usize::BITS >= u64::BITS,
    "hermes KV/token accounting requires a 64-bit usize"
);

/// Widen a collection length / index to the `u64` accounting domain.
/// Lossless: `usize` is at most 64 bits wide here.
#[inline]
#[must_use]
pub fn u64_from_usize(v: usize) -> u64 {
    v as u64
}

/// Narrow a `u64` block/token count to an in-memory index. Lossless under
/// the 64-bit platform assertion above.
#[inline]
#[must_use]
pub fn usize_from_u64(v: u64) -> usize {
    v as usize
}

/// Exact for lengths below 2^53 — guaranteed for any in-memory collection.
#[inline]
#[must_use]
pub fn f64_from_usize(v: usize) -> f64 {
    v as f64
}

/// Exact for counts below 2^53; see the module docs for why accounting
/// values stay in that range.
#[inline]
#[must_use]
pub fn f64_from_u64(v: u64) -> f64 {
    v as f64
}

/// Exact for counts below 2^53 in magnitude.
#[inline]
#[must_use]
pub fn f64_from_u32(v: u32) -> f64 {
    f64::from(v)
}

/// The nearest-rank percentile index into a sorted slice of `len` samples:
/// `ceil(p/100 · len)`, clamped to `1..=len`, minus one. The float→index
/// conversion is exact: the ceiled rank is a small non-negative integer
/// bounded by `len + 1`.
#[inline]
#[must_use]
pub fn nearest_rank_index(p: f64, len: usize) -> usize {
    let rank = ((p / 100.0) * f64_from_usize(len)).ceil();
    let rank = if rank < 0.0 { 0.0 } else { rank };
    (rank as usize).clamp(1, len) - 1
}

/// The nearest-rank target weight for weighted percentiles over a total
/// sample weight: `ceil(p/100 · total)`, clamped to `1..=total`, as a `u64`.
#[inline]
#[must_use]
pub fn nearest_rank_weight(p: f64, total: u64) -> u64 {
    let target = ((p / 100.0) * f64_from_u64(total)).ceil();
    let target = if target < 0.0 { 0.0 } else { target };
    (target as u64).clamp(1, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_lossless() {
        for v in [0u64, 1, u64::from(u32::MAX), 1 << 53, u64::MAX] {
            assert_eq!(u64_from_usize(usize_from_u64(v)), v);
        }
    }

    #[test]
    fn f64_conversions_exact_below_2_53() {
        assert_eq!(f64_from_u64((1 << 53) - 1), 9_007_199_254_740_991.0);
        assert_eq!(f64_from_usize(12_345), 12_345.0);
        assert_eq!(f64_from_u32(u32::MAX), 4_294_967_295.0);
    }

    #[test]
    fn nearest_rank_matches_manual_formula() {
        // p50 of 4 samples → ceil(2.0) = 2 → index 1.
        assert_eq!(nearest_rank_index(50.0, 4), 1);
        // p99 of 10 → ceil(9.9) = 10 → index 9.
        assert_eq!(nearest_rank_index(99.0, 10), 9);
        // p0 clamps to the first sample.
        assert_eq!(nearest_rank_index(0.0, 10), 0);
        // Single sample: every percentile is that sample.
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(nearest_rank_index(p, 1), 0);
        }
        // Weighted variant clamps into 1..=total.
        assert_eq!(nearest_rank_weight(50.0, 10), 5);
        assert_eq!(nearest_rank_weight(0.0, 10), 1);
        assert_eq!(nearest_rank_weight(100.0, 10), 10);
    }
}
