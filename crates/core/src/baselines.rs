//! Baseline inference systems: HuggingFace Accelerate, FlexGen, Deja Vu and
//! the TensorRT-LLM multi-A100 reference (Section V-A2, Fig. 9/11/17).
//!
//! Each baseline is modelled as a step-wise engine like the Hermes family:
//! a `*_plan` planner precomputes the run and hands pricing over to a
//! [`StepCostModel`] that prices one decode step for the *current* batch
//! composition, and an [`InferenceEngine`] wrapper ([`AccelerateEngine`],
//! [`FlexGenEngine`], [`DejaVuEngine`], [`TensorRtLlmEngine`]) validates
//! inputs and opens sessions over the plan. The classic `run_*` helpers
//! remain as thin one-shot drivers over those plans.

use hermes_gpu::{GpuDevice, KernelCostModel};
use hermes_model::{Block, LayerShape, ModelConfig};
use hermes_predictor::MlpPredictorModel;
use hermes_sparsity::{
    ClusterPopSums, NeuronPopularity, SparsityProfile, StatisticalActivityModel,
};

use crate::engine::{
    drive, BatchState, InferenceEngine, PlannedRun, SessionSpec, SimSession, StepCostModel,
    StepOutcome,
};
use crate::error::HermesError;
use crate::report::{InferenceReport, LatencyBreakdown};
use crate::{SystemConfig, Workload};

/// Default GPU-to-GPU interconnect bandwidth of the TensorRT-LLM reference
/// platform (NVLink-class, bytes/s).
pub const TENSORRT_INTERCONNECT_BANDWIDTH: f64 = 300.0e9;

/// Cost model of a HuggingFace Accelerate run: weights that do not fit on
/// the GPU are streamed from host memory layer by layer, synchronously, for
/// every token.
struct AccelerateCostModel {
    cfg: ModelConfig,
    shape: LayerShape,
    kernel: KernelCostModel,
    streamed: u64,
    bandwidth: f64,
    pcie_latency: f64,
}

impl StepCostModel for AccelerateCostModel {
    fn swap_cost(&self, bytes: u64) -> f64 {
        self.pcie_latency + bytes as f64 / self.bandwidth
    }

    fn prefill_cost(&self, prompt_len: usize, batch: usize) -> f64 {
        // Prefill: stream the non-resident weights once and run the prompt.
        let prompt_flops = hermes_model::flops::model_flops_per_token(&self.cfg, prompt_len / 2)
            * (prompt_len * batch) as u64;
        self.streamed as f64 / self.bandwidth
            + self
                .kernel
                .gemm_time(self.cfg.total_param_bytes(), prompt_flops)
    }

    fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome {
        if batch.is_empty() {
            return StepOutcome::balanced(LatencyBreakdown::default());
        }
        let b = batch.size();
        let mut latency = LatencyBreakdown::default();
        // Synchronous per-layer weight loads.
        latency.communication +=
            self.streamed as f64 / self.bandwidth + self.cfg.num_layers as f64 * self.pcie_latency;
        // Dense compute for every layer.
        let fc_bytes = self.shape.sparse_block_bytes(Block::Attention)
            + self.shape.sparse_block_bytes(Block::Mlp)
            + self.shape.projection_bytes();
        let fc_flops = 2 * fc_bytes / self.cfg.dtype_bytes;
        latency.fc +=
            self.cfg.num_layers as f64 * self.kernel.kernel_time(fc_bytes, fc_flops * b as u64);
        for &(kv_len, count) in batch.context_groups() {
            latency.attention += self.cfg.num_layers as f64
                * self.kernel.attention_time(
                    self.shape.attention_kv_bytes(kv_len),
                    self.shape.attention_flops(kv_len),
                    count,
                );
        }
        StepOutcome::balanced(latency)
    }
}

/// Plan a HuggingFace Accelerate run.
pub(crate) fn accelerate_plan(workload: &Workload, config: &SystemConfig) -> PlannedRun {
    let cfg = workload.model_config();
    let shape = cfg.layer_shape();
    let kernel = KernelCostModel::new(config.gpu.clone());

    let total = cfg.total_param_bytes();
    let resident = config.gpu.usable_weight_bytes().min(total);
    let streamed = total - resident;
    // Accelerate issues blocking, module-granularity copies from pageable
    // memory: it reaches an even smaller share of the PCIe peak than the
    // pipelined offloaders.
    let bandwidth = config.offload_bandwidth() * 0.5;

    let cost = AccelerateCostModel {
        cfg,
        shape,
        kernel,
        streamed,
        bandwidth,
        pcie_latency: config.pcie.latency,
    };
    let spec = SessionSpec {
        system: "Huggingface Accelerate".to_string(),
        workload: workload.clone(),
        prefill_seconds: cost.prefill_cost(workload.prompt_len, workload.batch),
        gpu_weight_bytes: resident,
        hot_neuron_bytes: 0,
        hot_coverage: 0.0,
    };
    PlannedRun {
        spec,
        cost: Box::new(cost),
    }
}

/// HuggingFace Accelerate, one-shot: drive the planned run to completion.
///
/// Low-level and unchecked: the workload/config are simulated as given,
/// without validation. Use [`AccelerateEngine`] (or
/// [`try_run_system`](crate::try_run_system)) for the validating entry
/// point that reports invalid inputs as [`HermesError`].
pub fn run_accelerate(workload: &Workload, config: &SystemConfig) -> InferenceReport {
    drive(SimSession::from_plan(accelerate_plan(workload, config)))
}

/// Cost model of a FlexGen run: zig-zag block scheduling that overlaps
/// weight prefetch with the computation of a block of tokens, maximising
/// throughput under the PCIe bandwidth limit.
struct FlexGenCostModel {
    cfg: ModelConfig,
    shape: LayerShape,
    kernel: KernelCostModel,
    streamed: u64,
    bandwidth: f64,
}

impl StepCostModel for FlexGenCostModel {
    fn swap_cost(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    fn prefill_cost(&self, prompt_len: usize, batch: usize) -> f64 {
        let prompt_flops = hermes_model::flops::model_flops_per_token(&self.cfg, prompt_len / 2)
            * (prompt_len * batch) as u64;
        (self.streamed as f64 / self.bandwidth).max(
            self.kernel
                .gemm_time(self.cfg.total_param_bytes(), prompt_flops),
        )
    }

    fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome {
        if batch.is_empty() {
            return StepOutcome::balanced(LatencyBreakdown::default());
        }
        let b = batch.size();
        let mut latency = LatencyBreakdown::default();
        let fc_bytes = self.shape.sparse_block_bytes(Block::Attention)
            + self.shape.sparse_block_bytes(Block::Mlp)
            + self.shape.projection_bytes();
        let fc_flops = 2 * fc_bytes / self.cfg.dtype_bytes;
        let mut compute =
            self.cfg.num_layers as f64 * self.kernel.kernel_time(fc_bytes, fc_flops * b as u64);
        for &(kv_len, count) in batch.context_groups() {
            compute += self.cfg.num_layers as f64
                * self.kernel.attention_time(
                    self.shape.attention_kv_bytes(kv_len),
                    self.shape.attention_flops(kv_len),
                    count,
                );
        }
        let stream = self.streamed as f64 / self.bandwidth;
        // The zig-zag schedule overlaps the stream of the next layer with the
        // computation of the whole token block on the current layer, so each
        // step costs the longer of the two; the overlapped communication is
        // charged to the communication bucket, the exposed remainder to fc.
        let step = stream.max(compute);
        latency.communication += stream;
        latency.fc += step - stream;
        StepOutcome::balanced(latency)
    }
}

/// Plan a FlexGen run.
pub(crate) fn flexgen_plan(workload: &Workload, config: &SystemConfig) -> PlannedRun {
    let cfg = workload.model_config();
    let shape = cfg.layer_shape();
    let kernel = KernelCostModel::new(config.gpu.clone());

    let total = cfg.total_param_bytes();
    let resident = config.gpu.usable_weight_bytes().min(total);
    let streamed = total - resident;
    let bandwidth = config.offload_bandwidth();

    let cost = FlexGenCostModel {
        cfg,
        shape,
        kernel,
        streamed,
        bandwidth,
    };
    let spec = SessionSpec {
        system: "FlexGen".to_string(),
        workload: workload.clone(),
        prefill_seconds: cost.prefill_cost(workload.prompt_len, workload.batch),
        gpu_weight_bytes: resident,
        hot_neuron_bytes: 0,
        hot_coverage: 0.0,
    };
    PlannedRun {
        spec,
        cost: Box::new(cost),
    }
}

/// FlexGen, one-shot: drive the planned run to completion.
///
/// Low-level and unchecked: no validation and no OPT-family guard — the
/// caller is responsible for only passing OPT workloads. Use
/// [`FlexGenEngine`] (or [`try_run_system`](crate::try_run_system)) for the
/// validating entry point that reports unsupported models as
/// [`HermesError::ModelNotSupported`].
pub fn run_flexgen(workload: &Workload, config: &SystemConfig) -> InferenceReport {
    drive(SimSession::from_plan(flexgen_plan(workload, config)))
}

/// Cost model of a Deja Vu run (adapted to offloading): activation sparsity
/// reduces the weights that must cross PCIe to the activated neurons of each
/// token, predicted by per-layer MLP predictors.
struct DejaVuCostModel {
    cfg: ModelConfig,
    shape: LayerShape,
    kernel: KernelCostModel,
    activity: StatisticalActivityModel,
    /// Cluster sums of the full sparse set, for expected activated unions.
    full: Vec<[ClusterPopSums; 2]>,
    resident_fraction: f64,
    bandwidth: f64,
    pcie_latency: f64,
    predictor_bytes: u64,
    predictor_flops_per_token: u64,
    prefill_streamed: u64,
}

impl StepCostModel for DejaVuCostModel {
    fn swap_cost(&self, bytes: u64) -> f64 {
        self.pcie_latency + bytes as f64 / self.bandwidth
    }

    fn prefill_cost(&self, prompt_len: usize, batch: usize) -> f64 {
        let prompt_flops = hermes_model::flops::model_flops_per_token(&self.cfg, prompt_len / 2)
            * (prompt_len * batch) as u64;
        (self.prefill_streamed as f64 / self.bandwidth).max(
            self.kernel
                .gemm_time(self.cfg.total_param_bytes(), prompt_flops),
        )
    }

    fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome {
        if batch.is_empty() {
            return StepOutcome::balanced(LatencyBreakdown::default());
        }
        let b = batch.size();
        let token = self.activity.next_token();
        let mut latency = LatencyBreakdown {
            predictor: self.kernel.kernel_time(
                self.predictor_bytes,
                self.predictor_flops_per_token * b as u64,
            ),
            ..Default::default()
        };
        // The attention pass is layer-invariant (all layers share one
        // shape), so its kernels are priced once and charged per layer.
        let attn_step: f64 = batch
            .context_groups()
            .iter()
            .map(|&(kv_len, count)| {
                self.kernel.attention_time(
                    self.shape.attention_kv_bytes(kv_len),
                    self.shape.attention_flops(kv_len),
                    count,
                )
            })
            .sum();
        for (layer, full_layer) in self.full.iter().enumerate() {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let ba = token.block(layer, block);
                let neuron_bytes = self.cfg.neuron_weight_bytes(block);
                let neuron_flops = self.cfg.neuron_flops(block);
                let union = ba.expected_union(&full_layer[bi], b);
                let active = ba.expected_active(&full_layer[bi]);
                // The share of activated neurons not already cached on the
                // GPU must be fetched over PCIe before the layer can run.
                let fetched_bytes = union * (1.0 - self.resident_fraction) * neuron_bytes as f64;
                latency.communication += fetched_bytes / self.bandwidth + self.pcie_latency;
                latency.fc += self.kernel.kernel_time(
                    (union * neuron_bytes as f64) as u64,
                    (active * b as f64 * neuron_flops as f64) as u64,
                );
            }
            latency.attention += attn_step;
            latency.others += self.kernel.kernel_time(
                self.shape.projection_bytes(),
                self.shape.projection_flops() * b as u64,
            );
        }
        StepOutcome::balanced(latency)
    }
}

/// Plan a Deja Vu run.
pub(crate) fn dejavu_plan(workload: &Workload, config: &SystemConfig) -> PlannedRun {
    let cfg = workload.model_config();
    let shape = cfg.layer_shape();
    let kernel = KernelCostModel::new(config.gpu.clone());
    let profile = SparsityProfile::for_model_on(&cfg, workload.dataset);
    let popularity = NeuronPopularity::generate(&cfg, &profile, workload.seed);
    let activity = StatisticalActivityModel::new(&cfg, &profile, workload.seed);
    let mlp_predictor = MlpPredictorModel::default();

    // GPU memory: dense weights + MLP predictors stay resident, the rest of
    // the space caches the most popular neurons.
    let dense = cfg.memory_footprint().dense_resident_bytes();
    let predictor_bytes = mlp_predictor.storage_bytes(&cfg);
    let cache_budget = config
        .gpu
        .usable_weight_bytes()
        .saturating_sub(dense + predictor_bytes);
    let sparse = cfg.memory_footprint().sparse_bytes();
    let resident_fraction = (cache_budget as f64 / sparse as f64).min(1.0);
    let bandwidth = config.offload_bandwidth();

    // Cluster sums of the full sparse set, for expected activated unions.
    let full: Vec<[ClusterPopSums; 2]> = (0..cfg.num_layers)
        .map(|l| {
            [
                ClusterPopSums::full(
                    popularity.block(l, Block::Attention),
                    activity.clusters().block(l, Block::Attention),
                ),
                ClusterPopSums::full(
                    popularity.block(l, Block::Mlp),
                    activity.clusters().block(l, Block::Mlp),
                ),
            ]
        })
        .collect();

    let gpu_weight_bytes = dense + predictor_bytes + cache_budget.min(sparse);
    let prefill_streamed = cfg.total_param_bytes() - cache_budget.min(sparse);
    let predictor_flops_per_token = mlp_predictor.flops_per_token(&cfg);
    let cost = DejaVuCostModel {
        cfg,
        shape,
        kernel,
        activity,
        full,
        resident_fraction,
        bandwidth,
        pcie_latency: config.pcie.latency,
        predictor_bytes,
        predictor_flops_per_token,
        prefill_streamed,
    };
    let spec = SessionSpec {
        system: "Deja Vu".to_string(),
        workload: workload.clone(),
        prefill_seconds: cost.prefill_cost(workload.prompt_len, workload.batch),
        gpu_weight_bytes,
        hot_neuron_bytes: 0,
        hot_coverage: 0.0,
    };
    PlannedRun {
        spec,
        cost: Box::new(cost),
    }
}

/// Deja Vu, one-shot: drive the planned run to completion.
///
/// Low-level and unchecked: no validation and no OPT-family guard — the
/// caller is responsible for only passing OPT workloads. Use
/// [`DejaVuEngine`] (or [`try_run_system`](crate::try_run_system)) for the
/// validating entry point that reports unsupported models as
/// [`HermesError::ModelNotSupported`].
pub fn run_dejavu(workload: &Workload, config: &SystemConfig) -> InferenceReport {
    drive(SimSession::from_plan(dejavu_plan(workload, config)))
}

/// Cost model of a TensorRT-LLM run on `num_gpus` A100-40GB GPUs with
/// tensor parallelism.
struct TensorRtCostModel {
    cfg: ModelConfig,
    shape: LayerShape,
    kernel: KernelCostModel,
    num_gpus: usize,
    interconnect_bandwidth: f64,
    effective_gpus: f64,
}

impl StepCostModel for TensorRtCostModel {
    fn swap_cost(&self, bytes: u64) -> f64 {
        bytes as f64 / self.interconnect_bandwidth
    }

    fn prefill_cost(&self, prompt_len: usize, batch: usize) -> f64 {
        let prompt_flops = hermes_model::flops::model_flops_per_token(&self.cfg, prompt_len / 2)
            * (prompt_len * batch) as u64;
        self.kernel
            .gemm_time(self.cfg.total_param_bytes(), prompt_flops)
            / self.effective_gpus
    }

    fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome {
        if batch.is_empty() {
            return StepOutcome::balanced(LatencyBreakdown::default());
        }
        let b = batch.size();
        let mut latency = LatencyBreakdown::default();
        let fc_bytes = self.shape.sparse_block_bytes(Block::Attention)
            + self.shape.sparse_block_bytes(Block::Mlp)
            + self.shape.projection_bytes();
        let fc_flops = 2 * fc_bytes / self.cfg.dtype_bytes;
        latency.fc += self.cfg.num_layers as f64
            * self.kernel.kernel_time(
                fc_bytes / self.num_gpus as u64,
                fc_flops * b as u64 / self.num_gpus as u64,
            );
        for &(kv_len, count) in batch.context_groups() {
            latency.attention += self.cfg.num_layers as f64
                * self.kernel.attention_time(
                    self.shape.attention_kv_bytes(kv_len) / self.num_gpus as u64,
                    self.shape.attention_flops(kv_len) / self.num_gpus as u64,
                    count,
                );
        }
        // Two all-reduces per layer (attention output + MLP output).
        let allreduce_bytes = (self.cfg.hidden_size * b) as u64 * self.cfg.dtype_bytes;
        let allreduce = 2.0
            * self.cfg.num_layers as f64
            * (10e-6 + allreduce_bytes as f64 / self.interconnect_bandwidth)
            * (self.num_gpus as f64 - 1.0).max(0.0)
            / self.num_gpus as f64;
        latency.communication += allreduce;
        StepOutcome::balanced(latency)
    }
}

/// Plan a TensorRT-LLM run on `num_gpus` A100-40GB GPUs with tensor
/// parallelism — the high-performance (and high-cost) reference of Fig. 17.
///
/// `num_gpus` must be at least 1; [`TensorRtLlmEngine`] validates this
/// before reaching here.
pub(crate) fn tensorrt_plan(
    workload: &Workload,
    num_gpus: usize,
    interconnect_bandwidth: f64,
) -> PlannedRun {
    let cfg = workload.model_config();
    let shape = cfg.layer_shape();
    let gpu = GpuDevice::a100_40gb();
    let kernel = KernelCostModel::new(gpu.clone());
    // Tensor parallelism splits weights across GPUs but pays an all-reduce
    // per block; the achievable scaling efficiency is well below linear.
    let parallel_efficiency = 0.62;
    let effective_gpus = 1.0 + (num_gpus as f64 - 1.0) * parallel_efficiency;

    let gpu_weight_bytes = cfg.total_param_bytes() / num_gpus as u64;
    let cost = TensorRtCostModel {
        cfg,
        shape,
        kernel,
        num_gpus,
        interconnect_bandwidth,
        effective_gpus,
    };
    let spec = SessionSpec {
        system: format!("TensorRT-LLM ({num_gpus}x A100)"),
        workload: workload.clone(),
        prefill_seconds: cost.prefill_cost(workload.prompt_len, workload.batch),
        gpu_weight_bytes,
        hot_neuron_bytes: 0,
        hot_coverage: 0.0,
    };
    PlannedRun {
        spec,
        cost: Box::new(cost),
    }
}

/// TensorRT-LLM, one-shot: drive the planned run to completion.
///
/// # Panics
///
/// Panics if `num_gpus` is 0; use [`TensorRtLlmEngine`] for a validating,
/// non-panicking entry point.
pub fn run_tensorrt_llm(
    workload: &Workload,
    num_gpus: usize,
    interconnect_bandwidth: f64,
) -> InferenceReport {
    assert!(num_gpus > 0, "need at least one GPU");
    drive(SimSession::from_plan(tensorrt_plan(
        workload,
        num_gpus,
        interconnect_bandwidth,
    )))
}

/// HuggingFace Accelerate as an [`InferenceEngine`].
#[derive(Debug, Clone)]
pub struct AccelerateEngine {
    config: SystemConfig,
}

impl AccelerateEngine {
    /// Create an engine for a hardware configuration.
    pub fn new(config: SystemConfig) -> Self {
        AccelerateEngine { config }
    }
}

impl InferenceEngine for AccelerateEngine {
    fn name(&self) -> String {
        "Huggingface Accelerate".to_string()
    }

    fn plan(&self, workload: &Workload) -> Result<PlannedRun, HermesError> {
        workload.validate()?;
        self.config.validate()?;
        Ok(accelerate_plan(workload, &self.config))
    }
}

/// FlexGen as an [`InferenceEngine`] (OPT models only).
#[derive(Debug, Clone)]
pub struct FlexGenEngine {
    config: SystemConfig,
}

impl FlexGenEngine {
    /// Create an engine for a hardware configuration.
    pub fn new(config: SystemConfig) -> Self {
        FlexGenEngine { config }
    }
}

impl InferenceEngine for FlexGenEngine {
    fn name(&self) -> String {
        "FlexGen".to_string()
    }

    fn plan(&self, workload: &Workload) -> Result<PlannedRun, HermesError> {
        workload.validate()?;
        self.config.validate()?;
        if !workload.model.is_opt_family() {
            return Err(HermesError::ModelNotSupported {
                system: self.name(),
            });
        }
        Ok(flexgen_plan(workload, &self.config))
    }
}

/// Deja Vu as an [`InferenceEngine`] (OPT models only).
#[derive(Debug, Clone)]
pub struct DejaVuEngine {
    config: SystemConfig,
}

impl DejaVuEngine {
    /// Create an engine for a hardware configuration.
    pub fn new(config: SystemConfig) -> Self {
        DejaVuEngine { config }
    }
}

impl InferenceEngine for DejaVuEngine {
    fn name(&self) -> String {
        "Deja Vu".to_string()
    }

    fn plan(&self, workload: &Workload) -> Result<PlannedRun, HermesError> {
        workload.validate()?;
        self.config.validate()?;
        if !workload.model.is_opt_family() {
            return Err(HermesError::ModelNotSupported {
                system: self.name(),
            });
        }
        Ok(dejavu_plan(workload, &self.config))
    }
}

/// The TensorRT-LLM multi-A100 reference as an [`InferenceEngine`].
///
/// Runs on its own A100 platform, so the simulation takes no
/// [`SystemConfig`]; when built via
/// [`SystemKind::engine`](crate::SystemKind::engine) the host configuration
/// is still carried for input validation, so the step-wise path rejects
/// exactly the inputs the one-shot [`try_run_system`](crate::try_run_system)
/// driver rejects.
#[derive(Debug, Clone)]
pub struct TensorRtLlmEngine {
    num_gpus: usize,
    interconnect_bandwidth: f64,
    host_config: Option<SystemConfig>,
}

impl TensorRtLlmEngine {
    /// Create an engine for `num_gpus` A100-40GB GPUs with the default
    /// NVLink-class interconnect ([`TENSORRT_INTERCONNECT_BANDWIDTH`]).
    pub fn new(num_gpus: usize) -> Self {
        TensorRtLlmEngine {
            num_gpus,
            interconnect_bandwidth: TENSORRT_INTERCONNECT_BANDWIDTH,
            host_config: None,
        }
    }

    /// Same engine with a different GPU-to-GPU interconnect bandwidth
    /// (bytes/s).
    pub fn with_interconnect_bandwidth(mut self, bandwidth: f64) -> Self {
        self.interconnect_bandwidth = bandwidth;
        self
    }

    /// Same engine, additionally validating `config` on every
    /// [`InferenceEngine::plan`] even though the A100 platform does not use
    /// it (keeps session-path validation consistent with the one-shot
    /// driver).
    pub fn with_host_config(mut self, config: SystemConfig) -> Self {
        self.host_config = Some(config);
        self
    }
}

impl InferenceEngine for TensorRtLlmEngine {
    fn name(&self) -> String {
        format!("TensorRT-LLM ({}x A100)", self.num_gpus)
    }

    fn plan(&self, workload: &Workload) -> Result<PlannedRun, HermesError> {
        workload.validate()?;
        if let Some(config) = &self.host_config {
            config.validate()?;
        }
        if self.num_gpus == 0 {
            return Err(HermesError::InvalidConfig(
                "num_gpus must be at least 1".to_string(),
            ));
        }
        if !self.interconnect_bandwidth.is_finite() || self.interconnect_bandwidth <= 0.0 {
            return Err(HermesError::InvalidConfig(
                "interconnect_bandwidth must be positive".to_string(),
            ));
        }
        Ok(tensorrt_plan(
            workload,
            self.num_gpus,
            self.interconnect_bandwidth,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn quick_workload(model: ModelId, batch: usize) -> Workload {
        let mut w = Workload::paper_default(model).with_batch(batch);
        w.gen_len = 8;
        w.prompt_len = 32;
        w
    }

    #[test]
    fn offloading_baselines_are_pcie_bound() {
        let config = SystemConfig::paper_default();
        let w = quick_workload(ModelId::Opt30B, 1);
        for report in [run_accelerate(&w, &config), run_dejavu(&w, &config)] {
            let comm = report.breakdown.communication;
            let decode = report.breakdown.decode_total();
            assert!(
                comm / decode > 0.5,
                "{}: communication share {:.2}",
                report.system,
                comm / decode
            );
        }
    }

    #[test]
    fn dejavu_beats_flexgen_beats_accelerate() {
        let config = SystemConfig::paper_default();
        let w = quick_workload(ModelId::Opt30B, 1);
        let acc = run_accelerate(&w, &config).tokens_per_second();
        let flex = run_flexgen(&w, &config).tokens_per_second();
        let dv = run_dejavu(&w, &config).tokens_per_second();
        assert!(flex > acc, "flexgen {flex:.3} vs accelerate {acc:.3}");
        assert!(dv > flex, "dejavu {dv:.3} vs flexgen {flex:.3}");
    }

    #[test]
    fn flexgen_scales_with_batch() {
        let config = SystemConfig::paper_default();
        let b1 = run_flexgen(&quick_workload(ModelId::Opt30B, 1), &config).tokens_per_second();
        let b16 = run_flexgen(&quick_workload(ModelId::Opt30B, 16), &config).tokens_per_second();
        assert!(b16 > 5.0 * b1, "b16 {b16:.2} vs b1 {b1:.2}");
    }

    #[test]
    fn tensorrt_on_five_a100s_is_fast() {
        let w = quick_workload(ModelId::Llama2_70B, 1);
        let report = run_tensorrt_llm(&w, 5, 300.0e9);
        let tps = report.tokens_per_second();
        assert!(tps > 5.0, "TensorRT-LLM throughput {tps:.2}");
        // More GPUs help.
        let single = run_tensorrt_llm(&w, 2, 300.0e9).tokens_per_second();
        assert!(tps > single);
    }

    #[test]
    fn dejavu_predictor_overhead_is_visible() {
        let config = SystemConfig::paper_default();
        let report = run_dejavu(&quick_workload(ModelId::Opt13B, 1), &config);
        assert!(report.breakdown.predictor > 0.0);
        let frac = report.breakdown.predictor
            / (report.breakdown.decode_total() - report.breakdown.communication);
        assert!(
            (0.02..0.6).contains(&frac),
            "predictor share of compute {frac:.3}"
        );
    }

    #[test]
    fn baseline_engines_validate_inputs() {
        let config = SystemConfig::paper_default();
        let llama = quick_workload(ModelId::Llama2_13B, 1);
        assert!(matches!(
            FlexGenEngine::new(config.clone()).start(&llama),
            Err(HermesError::ModelNotSupported { .. })
        ));
        assert!(matches!(
            DejaVuEngine::new(config.clone()).start(&llama),
            Err(HermesError::ModelNotSupported { .. })
        ));
        assert!(AccelerateEngine::new(config.clone()).start(&llama).is_ok());
        assert!(matches!(
            TensorRtLlmEngine::new(0).start(&llama),
            Err(HermesError::InvalidConfig(_))
        ));
        let mut invalid = llama.clone();
        invalid.batch = 0;
        assert!(matches!(
            AccelerateEngine::new(config).start(&invalid),
            Err(HermesError::InvalidWorkload(_))
        ));
    }

    #[test]
    fn tensorrt_engine_matches_one_shot_runner() {
        let w = quick_workload(ModelId::Llama2_70B, 1);
        let engine = TensorRtLlmEngine::new(5);
        assert_eq!(engine.name(), "TensorRT-LLM (5x A100)");
        let mut session = engine.start(&w).unwrap();
        let report = crate::engine::run_session(session.as_mut()).unwrap();
        assert_eq!(report, run_tensorrt_llm(&w, 5, 300.0e9));
    }

    #[test]
    fn decode_cost_scales_with_batch_composition() {
        // The same plan prices different batch compositions differently:
        // more sequences cost more, and longer contexts cost more attention.
        let config = SystemConfig::paper_default();
        let w = quick_workload(ModelId::Opt30B, 1);
        let mut plan = flexgen_plan(&w, &config);
        let small = plan.cost.decode_cost(&BatchState::uniform(1, 64));
        let large = plan.cost.decode_cost(&BatchState::uniform(16, 64));
        assert!(large.latency.total() >= small.latency.total());
        let mut plan = tensorrt_plan(&w, 5, 300.0e9);
        let short = plan.cost.decode_cost(&BatchState::uniform(4, 64));
        let long = plan.cost.decode_cost(&BatchState::uniform(4, 4096));
        assert!(long.latency.attention > short.latency.attention);
    }
}
