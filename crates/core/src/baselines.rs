//! Baseline inference systems: HuggingFace Accelerate, FlexGen, Deja Vu and
//! the TensorRT-LLM multi-A100 reference (Section V-A2, Fig. 9/11/17).

use hermes_gpu::{GpuDevice, KernelCostModel};
use hermes_model::Block;
use hermes_predictor::MlpPredictorModel;
use hermes_sparsity::{
    ClusterPopSums, NeuronPopularity, SparsityProfile, StatisticalActivityModel,
};

use crate::hermes::layer_shape;
use crate::report::{InferenceReport, LatencyBreakdown};
use crate::{SystemConfig, Workload};

/// HuggingFace Accelerate: weights that do not fit on the GPU are streamed
/// from host memory layer by layer, synchronously, for every token.
pub fn run_accelerate(workload: &Workload, config: &SystemConfig) -> InferenceReport {
    let cfg = workload.model_config();
    let shape = layer_shape(&cfg);
    let kernel = KernelCostModel::new(config.gpu.clone());
    let batch = workload.batch;

    let total = cfg.total_param_bytes();
    let resident = config.gpu.usable_weight_bytes().min(total);
    let streamed = total - resident;
    // Accelerate issues blocking, module-granularity copies from pageable
    // memory: it reaches an even smaller share of the PCIe peak than the
    // pipelined offloaders.
    let bandwidth = config.offload_bandwidth() * 0.5;

    let mut breakdown = LatencyBreakdown::default();
    // Prefill: stream the non-resident weights once and run the prompt.
    let prompt_flops = hermes_model::flops::model_flops_per_token(&cfg, workload.prompt_len / 2)
        * (workload.prompt_len * batch) as u64;
    breakdown.prefill = streamed as f64 / bandwidth + kernel.gemm_time(total, prompt_flops);

    for t in 0..workload.gen_len {
        let kv_len = workload.prompt_len + t;
        // Synchronous per-layer weight loads.
        breakdown.communication +=
            streamed as f64 / bandwidth + cfg.num_layers as f64 * config.pcie.latency;
        // Dense compute for every layer.
        let fc_bytes = shape.sparse_block_bytes(Block::Attention)
            + shape.sparse_block_bytes(Block::Mlp)
            + shape.projection_bytes();
        let fc_flops = 2 * fc_bytes / cfg.dtype_bytes;
        breakdown.fc +=
            cfg.num_layers as f64 * kernel.kernel_time(fc_bytes, fc_flops * batch as u64);
        breakdown.attention += cfg.num_layers as f64
            * kernel.attention_time(
                shape.attention_kv_bytes(kv_len),
                shape.attention_flops(kv_len),
                batch,
            );
    }

    InferenceReport {
        system: "Huggingface Accelerate".to_string(),
        workload: workload.clone(),
        breakdown,
        gpu_weight_bytes: resident,
        hot_neuron_bytes: 0,
        dimm_imbalance: 1.0,
    }
}

/// FlexGen: zig-zag block scheduling that overlaps weight prefetch with the
/// computation of a block of tokens, maximising throughput under the PCIe
/// bandwidth limit.
pub fn run_flexgen(workload: &Workload, config: &SystemConfig) -> InferenceReport {
    let cfg = workload.model_config();
    let shape = layer_shape(&cfg);
    let kernel = KernelCostModel::new(config.gpu.clone());
    let batch = workload.batch;

    let total = cfg.total_param_bytes();
    let resident = config.gpu.usable_weight_bytes().min(total);
    let streamed = total - resident;
    let bandwidth = config.offload_bandwidth();

    let mut breakdown = LatencyBreakdown::default();
    let prompt_flops = hermes_model::flops::model_flops_per_token(&cfg, workload.prompt_len / 2)
        * (workload.prompt_len * batch) as u64;
    breakdown.prefill = (streamed as f64 / bandwidth).max(kernel.gemm_time(total, prompt_flops));

    for t in 0..workload.gen_len {
        let kv_len = workload.prompt_len + t;
        let fc_bytes = shape.sparse_block_bytes(Block::Attention)
            + shape.sparse_block_bytes(Block::Mlp)
            + shape.projection_bytes();
        let fc_flops = 2 * fc_bytes / cfg.dtype_bytes;
        let compute = cfg.num_layers as f64 * kernel.kernel_time(fc_bytes, fc_flops * batch as u64)
            + cfg.num_layers as f64
                * kernel.attention_time(
                    shape.attention_kv_bytes(kv_len),
                    shape.attention_flops(kv_len),
                    batch,
                );
        let stream = streamed as f64 / bandwidth;
        // The zig-zag schedule overlaps the stream of the next layer with the
        // computation of the whole token block on the current layer, so each
        // step costs the longer of the two; the overlapped communication is
        // charged to the communication bucket, the exposed remainder to fc.
        let step = stream.max(compute);
        breakdown.communication += stream;
        breakdown.fc += step - stream;
    }

    InferenceReport {
        system: "FlexGen".to_string(),
        workload: workload.clone(),
        breakdown,
        gpu_weight_bytes: resident,
        hot_neuron_bytes: 0,
        dimm_imbalance: 1.0,
    }
}

/// Deja Vu (adapted to offloading): activation sparsity reduces the weights
/// that must cross PCIe to the activated neurons of each token, predicted by
/// per-layer MLP predictors.
pub fn run_dejavu(workload: &Workload, config: &SystemConfig) -> InferenceReport {
    let cfg = workload.model_config();
    let shape = layer_shape(&cfg);
    let kernel = KernelCostModel::new(config.gpu.clone());
    let batch = workload.batch;
    let profile = SparsityProfile::for_model_on(&cfg, workload.dataset);
    let popularity = NeuronPopularity::generate(&cfg, &profile, workload.seed);
    let mut activity = StatisticalActivityModel::new(&cfg, &profile, workload.seed);
    let mlp_predictor = MlpPredictorModel::default();

    // GPU memory: dense weights + MLP predictors stay resident, the rest of
    // the space caches the most popular neurons.
    let dense = cfg.memory_footprint().dense_resident_bytes();
    let predictor_bytes = mlp_predictor.storage_bytes(&cfg);
    let cache_budget = config
        .gpu
        .usable_weight_bytes()
        .saturating_sub(dense + predictor_bytes);
    let sparse = cfg.memory_footprint().sparse_bytes();
    let resident_fraction = (cache_budget as f64 / sparse as f64).min(1.0);
    let bandwidth = config.offload_bandwidth();

    // Cluster sums of the full sparse set, for expected activated unions.
    let full: Vec<[ClusterPopSums; 2]> = (0..cfg.num_layers)
        .map(|l| {
            [
                ClusterPopSums::full(
                    popularity.block(l, Block::Attention),
                    activity.clusters().block(l, Block::Attention),
                ),
                ClusterPopSums::full(
                    popularity.block(l, Block::Mlp),
                    activity.clusters().block(l, Block::Mlp),
                ),
            ]
        })
        .collect();

    let mut breakdown = LatencyBreakdown::default();
    let prompt_flops = hermes_model::flops::model_flops_per_token(&cfg, workload.prompt_len / 2)
        * (workload.prompt_len * batch) as u64;
    breakdown.prefill = ((cfg.total_param_bytes() - cache_budget.min(sparse)) as f64 / bandwidth)
        .max(kernel.gemm_time(cfg.total_param_bytes(), prompt_flops));
    let predictor_time_per_token = kernel.kernel_time(
        predictor_bytes,
        mlp_predictor.flops_per_token(&cfg) * batch as u64,
    );

    for t in 0..workload.gen_len {
        let token = activity.next_token();
        let kv_len = workload.prompt_len + t;
        breakdown.predictor += predictor_time_per_token;
        for (layer, full_layer) in full.iter().enumerate() {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let ba = token.block(layer, block);
                let neuron_bytes = cfg.neuron_weight_bytes(block);
                let neuron_flops = cfg.neuron_flops(block);
                let union = ba.expected_union(&full_layer[bi], batch);
                let active = ba.expected_active(&full_layer[bi]);
                // The share of activated neurons not already cached on the
                // GPU must be fetched over PCIe before the layer can run.
                let fetched_bytes = union * (1.0 - resident_fraction) * neuron_bytes as f64;
                breakdown.communication += fetched_bytes / bandwidth + config.pcie.latency;
                breakdown.fc += kernel.kernel_time(
                    (union * neuron_bytes as f64) as u64,
                    (active * batch as f64 * neuron_flops as f64) as u64,
                );
            }
            breakdown.attention += kernel.attention_time(
                shape.attention_kv_bytes(kv_len),
                shape.attention_flops(kv_len),
                batch,
            );
            breakdown.others += kernel.kernel_time(
                shape.projection_bytes(),
                shape.projection_flops() * batch as u64,
            );
        }
    }

    InferenceReport {
        system: "Deja Vu".to_string(),
        workload: workload.clone(),
        breakdown,
        gpu_weight_bytes: dense + predictor_bytes + cache_budget.min(sparse),
        hot_neuron_bytes: 0,
        dimm_imbalance: 1.0,
    }
}

/// TensorRT-LLM on `num_gpus` A100-40GB GPUs with tensor parallelism — the
/// high-performance (and high-cost) reference of Fig. 17.
pub fn run_tensorrt_llm(
    workload: &Workload,
    num_gpus: usize,
    interconnect_bandwidth: f64,
) -> InferenceReport {
    assert!(num_gpus > 0, "need at least one GPU");
    let cfg = workload.model_config();
    let shape = layer_shape(&cfg);
    let gpu = GpuDevice::a100_40gb();
    let kernel = KernelCostModel::new(gpu.clone());
    let batch = workload.batch;
    // Tensor parallelism splits weights across GPUs but pays an all-reduce
    // per block; the achievable scaling efficiency is well below linear.
    let parallel_efficiency = 0.62;
    let effective_gpus = 1.0 + (num_gpus as f64 - 1.0) * parallel_efficiency;

    let mut breakdown = LatencyBreakdown::default();
    let prompt_flops = hermes_model::flops::model_flops_per_token(&cfg, workload.prompt_len / 2)
        * (workload.prompt_len * batch) as u64;
    breakdown.prefill = kernel.gemm_time(cfg.total_param_bytes(), prompt_flops) / effective_gpus;

    for t in 0..workload.gen_len {
        let kv_len = workload.prompt_len + t;
        let fc_bytes = shape.sparse_block_bytes(Block::Attention)
            + shape.sparse_block_bytes(Block::Mlp)
            + shape.projection_bytes();
        let fc_flops = 2 * fc_bytes / cfg.dtype_bytes;
        breakdown.fc += cfg.num_layers as f64
            * kernel.kernel_time(
                fc_bytes / num_gpus as u64,
                fc_flops * batch as u64 / num_gpus as u64,
            );
        breakdown.attention += cfg.num_layers as f64
            * kernel.attention_time(
                shape.attention_kv_bytes(kv_len) / num_gpus as u64,
                shape.attention_flops(kv_len) / num_gpus as u64,
                batch,
            );
        // Two all-reduces per layer (attention output + MLP output).
        let allreduce_bytes = (cfg.hidden_size * batch) as u64 * cfg.dtype_bytes;
        let allreduce = 2.0
            * cfg.num_layers as f64
            * (10e-6 + allreduce_bytes as f64 / interconnect_bandwidth)
            * (num_gpus as f64 - 1.0).max(0.0)
            / num_gpus as f64;
        breakdown.communication += allreduce;
    }

    InferenceReport {
        system: format!("TensorRT-LLM ({num_gpus}x A100)"),
        workload: workload.clone(),
        breakdown,
        gpu_weight_bytes: cfg.total_param_bytes() / num_gpus as u64,
        hot_neuron_bytes: 0,
        dimm_imbalance: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn quick_workload(model: ModelId, batch: usize) -> Workload {
        let mut w = Workload::paper_default(model).with_batch(batch);
        w.gen_len = 8;
        w.prompt_len = 32;
        w
    }

    #[test]
    fn offloading_baselines_are_pcie_bound() {
        let config = SystemConfig::paper_default();
        let w = quick_workload(ModelId::Opt30B, 1);
        for report in [run_accelerate(&w, &config), run_dejavu(&w, &config)] {
            let comm = report.breakdown.communication;
            let decode = report.breakdown.decode_total();
            assert!(
                comm / decode > 0.5,
                "{}: communication share {:.2}",
                report.system,
                comm / decode
            );
        }
    }

    #[test]
    fn dejavu_beats_flexgen_beats_accelerate() {
        let config = SystemConfig::paper_default();
        let w = quick_workload(ModelId::Opt30B, 1);
        let acc = run_accelerate(&w, &config).tokens_per_second();
        let flex = run_flexgen(&w, &config).tokens_per_second();
        let dv = run_dejavu(&w, &config).tokens_per_second();
        assert!(flex > acc, "flexgen {flex:.3} vs accelerate {acc:.3}");
        assert!(dv > flex, "dejavu {dv:.3} vs flexgen {flex:.3}");
    }

    #[test]
    fn flexgen_scales_with_batch() {
        let config = SystemConfig::paper_default();
        let b1 = run_flexgen(&quick_workload(ModelId::Opt30B, 1), &config).tokens_per_second();
        let b16 = run_flexgen(&quick_workload(ModelId::Opt30B, 16), &config).tokens_per_second();
        assert!(b16 > 5.0 * b1, "b16 {b16:.2} vs b1 {b1:.2}");
    }

    #[test]
    fn tensorrt_on_five_a100s_is_fast() {
        let w = quick_workload(ModelId::Llama2_70B, 1);
        let report = run_tensorrt_llm(&w, 5, 300.0e9);
        let tps = report.tokens_per_second();
        assert!(tps > 5.0, "TensorRT-LLM throughput {tps:.2}");
        // More GPUs help.
        let single = run_tensorrt_llm(&w, 2, 300.0e9).tokens_per_second();
        assert!(tps > single);
    }

    #[test]
    fn dejavu_predictor_overhead_is_visible() {
        let config = SystemConfig::paper_default();
        let report = run_dejavu(&quick_workload(ModelId::Opt13B, 1), &config);
        assert!(report.breakdown.predictor > 0.0);
        let frac = report.breakdown.predictor
            / (report.breakdown.decode_total() - report.breakdown.communication);
        assert!(
            (0.02..0.6).contains(&frac),
            "predictor share of compute {frac:.3}"
        );
    }
}
