//! The unified error type of the `hermes-core` crate.
//!
//! Every fallible public entry point of this crate — workload/config
//! validation, [`InferenceEngine::start`](crate::InferenceEngine::start),
//! [`HermesSystem::run`](crate::HermesSystem::run) and
//! [`try_run_system`](crate::try_run_system) — reports failures through
//! [`HermesError`], so callers match on one enum instead of juggling
//! stringly-typed validation errors and a separate "unsupported" type.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Everything that can go wrong when configuring or running an inference
/// engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HermesError {
    /// The workload failed validation (zero batch, empty prompt, …). The
    /// message names the first offending field.
    InvalidWorkload(String),
    /// The hardware configuration failed validation (zero DIMMs, derate out
    /// of range, …). The message names the first offending field.
    InvalidConfig(String),
    /// The model's weights plus KV cache do not fit in the memory available
    /// to the system (the "N.P." entries of Figs. 11 and 14).
    InsufficientMemory {
        /// Bytes required to hold the model and KV cache.
        required: u64,
        /// Bytes available in the configuration.
        available: u64,
    },
    /// The inference system does not support this model family (FlexGen and
    /// Deja Vu only support OPT models).
    ModelNotSupported {
        /// Display name of the system that rejected the model.
        system: String,
    },
    /// A [`Session`](crate::Session) was driven out of order, e.g. `step()`
    /// before `prefill()` or `prefill()` twice.
    SessionState(String),
}

impl fmt::Display for HermesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HermesError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            HermesError::InvalidConfig(msg) => write!(f, "invalid system config: {msg}"),
            HermesError::InsufficientMemory {
                required,
                available,
            } => write!(
                f,
                "insufficient memory: {required} bytes required, {available} available"
            ),
            HermesError::ModelNotSupported { system } => {
                write!(f, "{system} does not support this model family")
            }
            HermesError::SessionState(msg) => write!(f, "session driven out of order: {msg}"),
        }
    }
}

impl Error for HermesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HermesError::InsufficientMemory {
            required: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10 bytes required"));
        let e = HermesError::ModelNotSupported {
            system: "FlexGen".to_string(),
        };
        assert!(e.to_string().contains("FlexGen"));
        assert!(HermesError::InvalidWorkload("batch".into())
            .to_string()
            .contains("batch"));
        assert!(HermesError::InvalidConfig("dimms".into())
            .to_string()
            .contains("dimms"));
        assert!(HermesError::SessionState("step before prefill".into())
            .to_string()
            .contains("prefill"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(HermesError::ModelNotSupported {
            system: "Deja Vu".to_string(),
        });
        assert!(e.source().is_none());
    }
}
