//! The Hermes engine: NDP-DIMM augmented GPU inference (Sections IV and V),
//! including the Hermes-host and Hermes-base comparison points and the
//! scheduling ablations of Fig. 13.

use serde::{Deserialize, Serialize};

use hermes_gpu::{HostCpu, KernelCostModel, PcieLink};
use hermes_model::{Block, LayerShape, ModelConfig};
use hermes_ndp::NdpDimm;
use hermes_predictor::{HermesPredictor, PredictorConfig};
use hermes_scheduler::ColdPlacementPolicy;
use hermes_sparsity::{NeuronPopularity, SparsityProfile, StatisticalActivityModel};

use crate::engine::{
    run_session, BatchState, InferenceEngine, PlannedRun, Session, SessionSpec, SimSession,
    StepCostModel, StepOutcome,
};
use crate::error::HermesError;
pub use crate::planner::MappingPolicy;
use crate::planner::NeuronPlan;
use crate::report::{InferenceReport, LatencyBreakdown};
use crate::{SystemConfig, Workload};

/// Which online hot/cold adjustment (Section IV-C) is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnlineAdjustment {
    /// No online adjustment: the offline mapping is kept for the whole run.
    None,
    /// Adjustment guided by the token-wise (state table) predictor only.
    TokenOnly,
    /// Adjustment guided by the layer-wise (correlation table) predictor only.
    LayerOnly,
    /// The full combined predictor (paper default).
    Full,
}

impl OnlineAdjustment {
    /// Effective quality of the hot-set tracking: the fraction of the oracle
    /// hot activation mass the adjusted partition actually captures. The
    /// paper reports 98% accuracy for the combined predictor and shows that
    /// either component alone is noticeably weaker (Fig. 13).
    pub fn tracking_quality(self) -> f64 {
        match self {
            // With no online adjustment the static mapping is executed
            // exactly as planned — there is no predictor in the loop, so no
            // activation mass is lost to tracking error.
            OnlineAdjustment::None => 1.0,
            OnlineAdjustment::TokenOnly => 0.90,
            OnlineAdjustment::LayerOnly => 0.91,
            OnlineAdjustment::Full => 0.98,
        }
    }
}

/// Which device computes the cold neurons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColdExecutor {
    /// NDP cores inside the DIMMs (Hermes).
    NdpDimm,
    /// The host CPU (the Hermes-host / PowerInfer-style configuration).
    HostCpu,
}

/// Configuration of a Hermes-family engine run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HermesOptions {
    /// Whether activation sparsity is exploited at all (`false` = Hermes-base).
    pub use_sparsity: bool,
    /// Initial hot/cold mapping policy (used when no online adjustment runs;
    /// with adjustment enabled the partition converges towards the oracle).
    pub mapping: MappingPolicy,
    /// Online hot/cold adjustment mode.
    pub adjustment: OnlineAdjustment,
    /// Whether the window-based cold-neuron remapping (Algorithm 1) runs.
    pub window_remapping: bool,
    /// Where cold neurons are computed.
    pub cold_executor: ColdExecutor,
}

impl HermesOptions {
    /// The full Hermes system.
    pub fn full() -> Self {
        HermesOptions {
            use_sparsity: true,
            mapping: MappingPolicy::OfflineProfile { drift: 0.5 },
            adjustment: OnlineAdjustment::Full,
            window_remapping: true,
            cold_executor: ColdExecutor::NdpDimm,
        }
    }

    /// Hermes-host: hot/cold split, but cold neurons on the host CPU.
    pub fn host() -> Self {
        HermesOptions {
            cold_executor: ColdExecutor::HostCpu,
            window_remapping: false,
            ..Self::full()
        }
    }

    /// Hermes-base: NDP-DIMM extension without activation sparsity.
    pub fn base() -> Self {
        HermesOptions {
            use_sparsity: false,
            adjustment: OnlineAdjustment::None,
            window_remapping: false,
            ..Self::full()
        }
    }

    /// Hermes-random ablation: random offline mapping, no online scheduling.
    pub fn random_mapping() -> Self {
        HermesOptions {
            mapping: MappingPolicy::Random,
            adjustment: OnlineAdjustment::None,
            window_remapping: false,
            ..Self::full()
        }
    }

    /// Hermes-partition ablation: optimal offline mapping only.
    pub fn partition_only() -> Self {
        HermesOptions {
            adjustment: OnlineAdjustment::None,
            window_remapping: false,
            ..Self::full()
        }
    }

    /// Hermes-token-adjustment ablation.
    pub fn token_adjustment() -> Self {
        HermesOptions {
            adjustment: OnlineAdjustment::TokenOnly,
            window_remapping: false,
            ..Self::full()
        }
    }

    /// Hermes-layer-adjustment ablation.
    pub fn layer_adjustment() -> Self {
        HermesOptions {
            adjustment: OnlineAdjustment::LayerOnly,
            window_remapping: false,
            ..Self::full()
        }
    }

    /// Hermes-adjustment ablation: full online adjustment, no remapping.
    pub fn adjustment_only() -> Self {
        HermesOptions {
            window_remapping: false,
            ..Self::full()
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        if !self.use_sparsity {
            return "Hermes-base";
        }
        if self.cold_executor == ColdExecutor::HostCpu {
            return "Hermes-host";
        }
        match (self.mapping, self.adjustment, self.window_remapping) {
            (MappingPolicy::Random, OnlineAdjustment::None, _) => "Hermes-random",
            (_, OnlineAdjustment::None, _) => "Hermes-partition",
            (_, OnlineAdjustment::TokenOnly, false) => "Hermes-token-adjustment",
            (_, OnlineAdjustment::LayerOnly, false) => "Hermes-layer-adjustment",
            (_, OnlineAdjustment::Full, false) => "Hermes-adjustment",
            (_, _, true) => "Hermes",
        }
    }
}

/// Prompting-phase cost shared by the Hermes-family cost models: the prompt
/// is processed on the GPU following a traditional offloading strategy
/// (weights not resident stream over PCIe once), while the scheduler records
/// neuron activity.
fn offload_prefill_cost(
    cfg: &ModelConfig,
    kernel: &KernelCostModel,
    pcie: &PcieLink,
    resident_bytes: u64,
    prompt_len: usize,
    batch: usize,
) -> f64 {
    let total = cfg.total_param_bytes();
    let streamed =
        total.saturating_sub(resident_bytes + cfg.memory_footprint().dense_resident_bytes());
    let stream_time = pcie.transfer_time(streamed);
    let tokens = (prompt_len * batch) as u64;
    let flops = hermes_model::flops::model_flops_per_token(cfg, prompt_len / 2) * tokens;
    let compute_time = kernel.gemm_time(total, flops);
    stream_time.max(compute_time)
}

/// Cost model of the sparsity-aware Hermes / Hermes-host configurations: hot
/// neurons on the GPU, cold neurons on the DIMMs (or host CPU), with online
/// hot/cold adjustment and window-based remapping advancing per step.
struct SparseCostModel {
    cfg: ModelConfig,
    shape: LayerShape,
    kernel: KernelCostModel,
    dimm: NdpDimm,
    num_dimms: usize,
    options: HermesOptions,
    quality: f64,
    predictor_time_per_token: f64,
    plan: NeuronPlan,
    activity: StatisticalActivityModel,
    host_cpu: HostCpu,
    pcie: PcieLink,
    hot_bytes: u64,
    /// Decode steps already priced (drives the remapping window).
    steps: usize,
    window: usize,
    window_multipliers: Vec<[Vec<f64>; 2]>,
    pending_remap_bytes: u64,
}

impl SparseCostModel {
    /// Per-direction synchronisation cost of a GPU kernel in the Hermes
    /// workflow (Eq. 3): shipping an activation vector across PCIe for the
    /// current batch size.
    fn sync_time(&self, batch: usize) -> f64 {
        let bytes = (self.cfg.hidden_size * batch) as u64 * self.cfg.dtype_bytes;
        self.pcie.transfer_time(bytes)
    }
}

impl StepCostModel for SparseCostModel {
    fn prefill_cost(&self, prompt_len: usize, batch: usize) -> f64 {
        offload_prefill_cost(
            &self.cfg,
            &self.kernel,
            &self.pcie,
            self.hot_bytes,
            prompt_len,
            batch,
        )
    }

    fn swap_cost(&self, bytes: u64) -> f64 {
        self.pcie.transfer_time(bytes)
    }

    fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome {
        if batch.is_empty() {
            return StepOutcome::balanced(LatencyBreakdown::default());
        }
        let b = batch.size();
        // The attention pass is layer-invariant (all layers share one
        // shape), so its kernels are priced once and charged per layer.
        let attn_step: f64 = batch
            .context_groups()
            .iter()
            .map(|&(kv_len, count)| {
                let kv_bytes = self.shape.attention_kv_bytes(kv_len);
                let attn_flops = self.shape.attention_flops(kv_len);
                match self.options.cold_executor {
                    ColdExecutor::NdpDimm => {
                        // KV cache sharded across the DIMMs.
                        self.dimm.attention_time(
                            kv_bytes / self.num_dimms as u64,
                            attn_flops / self.num_dimms as u64,
                            count,
                        )
                    }
                    // In the PowerInfer-style host configuration the KV
                    // cache lives in host DRAM (the GPU memory is reserved
                    // for hot neurons), so attention streams it through the
                    // host CPU.
                    ColdExecutor::HostCpu => {
                        self.host_cpu
                            .gemv_time(kv_bytes * count as u64, attn_flops, count)
                    }
                }
            })
            .sum();
        let token = self.activity.next_token();
        let cfg = &self.cfg;
        let sync = self.sync_time(b);
        let mut latency = LatencyBreakdown {
            predictor: self.predictor_time_per_token,
            ..Default::default()
        };
        let mut imbalance_sum = 0.0;
        let mut imbalance_samples = 0usize;
        // Hot/cold adjustment churn: a small share of the hot set is
        // refreshed each token; the copies ride PCIe under the
        // projection computation.
        let churn_fraction = match self.options.adjustment {
            OnlineAdjustment::None => 0.0,
            _ => 0.01,
        };
        let mut promoted_bytes_token =
            (self.hot_bytes as f64 * churn_fraction) as u64 / cfg.num_layers.max(1) as u64;

        for layer in 0..cfg.num_layers {
            // ---- Sparse FC blocks: QKV generation and MLP. ----
            let mut fc_time = 0.0;
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let ba = token.block(layer, block);
                let neuron_bytes = cfg.neuron_weight_bytes(block);
                let neuron_flops = cfg.neuron_flops(block);

                let hot = &self.plan.hot[layer][bi];
                let hot_active = ba.expected_active(hot) * self.quality;
                let hot_union = ba.expected_union(hot, b) * self.quality;
                // Mispredicted hot activations fall back to the cold side.
                let spill_active = ba.expected_active(hot) * (1.0 - self.quality);
                let spill_union = ba.expected_union(hot, b) * (1.0 - self.quality);

                let gpu_bytes = (hot_union * neuron_bytes as f64) as u64;
                let gpu_flops = (hot_active * b as f64 * neuron_flops as f64) as u64;
                let t_gpu = self.kernel.kernel_time(gpu_bytes, gpu_flops) + 2.0 * sync;

                let placement = self.plan.cold_placement.block(layer, block);
                let per_seq = placement.dimm_loads(ba);
                let per_union = placement.dimm_union_loads(ba, b);
                let t_cold = match self.options.cold_executor {
                    ColdExecutor::NdpDimm => {
                        let mut worst: f64 = 0.0;
                        for d in 0..self.num_dimms {
                            let load_union = per_union[d] + spill_union / self.num_dimms as f64;
                            let load_seq = per_seq[d] + spill_active / self.num_dimms as f64;
                            let bytes = (load_union * neuron_bytes as f64) as u64;
                            let flops = (load_seq * neuron_flops as f64) as u64;
                            worst = worst.max(self.dimm.gemv_time(bytes, flops, b));
                        }
                        let loads_total: f64 = per_seq.iter().sum();
                        if loads_total > 0.0 {
                            let max = per_seq.iter().copied().fold(0.0, f64::max);
                            imbalance_sum += max / (loads_total / self.num_dimms as f64);
                            imbalance_samples += 1;
                        }
                        worst
                    }
                    ColdExecutor::HostCpu => {
                        let union_total: f64 = per_union.iter().sum::<f64>() + spill_union;
                        let seq_total: f64 = per_seq.iter().sum::<f64>() + spill_active;
                        let bytes = (union_total * neuron_bytes as f64) as u64;
                        let flops = (seq_total * neuron_flops as f64) as u64;
                        self.host_cpu.gemv_time(bytes, flops, b)
                    }
                };
                fc_time += t_gpu.max(t_cold);
            }
            latency.fc += fc_time;

            // ---- Attention over the KV cache: one kernel per group of
            // sequences sharing a context length, priced once above. ----
            latency.attention += attn_step;

            // ---- Dense projection on the GPU; migrations hide under it.
            let proj_time = self.kernel.kernel_time(
                self.shape.projection_bytes(),
                self.shape.projection_flops() * b as u64,
            );
            let migration_time = self.pcie.transfer_time(promoted_bytes_token)
                + self
                    .dimm
                    .link()
                    .transfer_time(self.pending_remap_bytes / cfg.num_layers.max(1) as u64);
            promoted_bytes_token = 0;
            latency.others += proj_time + sync;
            latency.migration += (migration_time - proj_time).max(0.0);
        }
        self.pending_remap_bytes = 0;

        // ---- Window-based remapping (Algorithm 1). ----
        if self.options.window_remapping {
            if self.window_multipliers.is_empty() {
                self.window_multipliers = (0..cfg.num_layers)
                    .map(|l| {
                        [
                            vec![0.0; token.block(l, Block::Attention).num_clusters()],
                            vec![0.0; token.block(l, Block::Mlp).num_clusters()],
                        ]
                    })
                    .collect();
            }
            for (l, layer_mults) in self.window_multipliers.iter_mut().enumerate() {
                for (bi, block) in Block::ALL.into_iter().enumerate() {
                    let ba = token.block(l, block);
                    for (c, slot) in layer_mults[bi].iter_mut().enumerate() {
                        *slot += ba.multiplier(c);
                    }
                }
            }
            if (self.steps + 1).is_multiple_of(self.window) {
                let mut moved_bytes = 0.0;
                for (l, layer_mults) in self.window_multipliers.iter_mut().enumerate() {
                    for (bi, block) in Block::ALL.into_iter().enumerate() {
                        let avg: Vec<f64> = layer_mults[bi]
                            .iter()
                            .map(|m| m / self.window as f64)
                            .collect();
                        moved_bytes += self.plan.cold_placement.block_mut(l, block).rebalance(&avg)
                            * cfg.neuron_weight_bytes(block) as f64;
                        layer_mults[bi].iter_mut().for_each(|m| *m = 0.0);
                    }
                }
                // The greedy remapper only migrates as much as the
                // DIMM-links can hide under the next token's projection
                // computations (Section IV-D: "minimal data transfer");
                // the rest of the logical rebalancing is deferred to the
                // following windows.
                let hideable = cfg.num_layers as u64 * (2 << 20);
                self.pending_remap_bytes = (moved_bytes as u64).min(hideable);
            }
        }
        self.steps += 1;

        StepOutcome {
            latency,
            imbalance_sum,
            imbalance_samples,
        }
    }
}

/// Cost model of Hermes-base: whole layers resident on the GPU, the rest
/// computed by the DIMMs, no activation sparsity.
struct BaseCostModel {
    cfg: ModelConfig,
    shape: LayerShape,
    kernel: KernelCostModel,
    dimm: NdpDimm,
    num_dimms: usize,
    resident_layers: usize,
    pcie: PcieLink,
}

impl StepCostModel for BaseCostModel {
    fn prefill_cost(&self, prompt_len: usize, batch: usize) -> f64 {
        offload_prefill_cost(
            &self.cfg,
            &self.kernel,
            &self.pcie,
            self.resident_layers as u64 * self.shape.total_bytes(),
            prompt_len,
            batch,
        )
    }

    fn swap_cost(&self, bytes: u64) -> f64 {
        self.pcie.transfer_time(bytes)
    }

    fn decode_cost(&mut self, batch: &BatchState) -> StepOutcome {
        if batch.is_empty() {
            return StepOutcome::balanced(LatencyBreakdown::default());
        }
        let b = batch.size();
        let sync = self
            .pcie
            .transfer_time((self.cfg.hidden_size * b) as u64 * self.cfg.dtype_bytes);
        let mut latency = LatencyBreakdown::default();
        // Every per-layer term is layer-invariant (all layers share one
        // shape), so each kernel is priced once and charged per layer —
        // pricing kernels inside the layer loop dominated the serving hot
        // path at O(layers * context groups) per step.
        let fc_bytes = self.shape.sparse_block_bytes(Block::Attention)
            + self.shape.sparse_block_bytes(Block::Mlp);
        let fc_flops = 2 * fc_bytes / self.cfg.dtype_bytes;
        // GPU computes the whole FC of a resident layer; the DIMMs stream
        // and compute the full FC of the rest, split evenly.
        let fc_gpu = self.kernel.kernel_time(fc_bytes, fc_flops * b as u64) + 2.0 * sync;
        let fc_dimm = self.dimm.gemv_time(
            fc_bytes / self.num_dimms as u64,
            fc_flops / self.num_dimms as u64,
            b,
        );
        let attn_step: f64 = batch
            .context_groups()
            .iter()
            .map(|&(kv_len, count)| {
                self.dimm.attention_time(
                    self.shape.attention_kv_bytes(kv_len) / self.num_dimms as u64,
                    self.shape.attention_flops(kv_len) / self.num_dimms as u64,
                    count,
                )
            })
            .sum();
        let others_step = self.kernel.kernel_time(
            self.shape.projection_bytes(),
            self.shape.projection_flops() * b as u64,
        ) + sync;
        for layer in 0..self.cfg.num_layers {
            latency.fc += if layer < self.resident_layers {
                fc_gpu
            } else {
                fc_dimm
            };
            latency.attention += attn_step;
            latency.others += others_step;
        }
        StepOutcome::balanced(latency)
    }
}

/// The Hermes-family inference engine.
#[derive(Debug, Clone)]
pub struct HermesSystem {
    workload: Workload,
    config: SystemConfig,
    options: HermesOptions,
}

impl HermesSystem {
    /// Create an engine for a workload on a hardware configuration.
    pub fn new(workload: Workload, config: SystemConfig, options: HermesOptions) -> Self {
        HermesSystem {
            workload,
            config,
            options,
        }
    }

    /// GPU bytes available for hot-neuron weights after the dense weights
    /// (projections, embeddings) that must stay resident.
    fn gpu_hot_budget(&self, cfg: &ModelConfig) -> u64 {
        let dense = cfg.memory_footprint().dense_resident_bytes();
        self.config.gpu.usable_weight_bytes().saturating_sub(dense)
    }

    /// Validate the inputs and open a step-wise [`Session`] for this
    /// workload: `prefill()` runs the prompting phase, each `step()`
    /// generates one token. This is the `start` path of [`HermesEngine`].
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] /
    /// [`HermesError::InvalidConfig`] for invalid inputs and
    /// [`HermesError::InsufficientMemory`] when the model does not fit in
    /// the combined DIMM capacity of the configuration.
    pub fn session(&self) -> Result<Box<dyn Session>, HermesError> {
        Ok(Box::new(SimSession::from_plan(self.plan()?)))
    }

    /// Validate the inputs and plan the run: static metadata plus the
    /// dynamic-batch [`StepCostModel`] that prices it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HermesSystem::session`].
    pub fn plan(&self) -> Result<PlannedRun, HermesError> {
        self.workload.validate()?;
        self.config.validate()?;
        let cfg = self.workload.model_config();
        // Every weight parameter is stored on the DIMMs (Section IV-C2); the
        // GPU only holds *copies* of hot neurons plus the dense weights, so
        // the DIMM pool alone must be able to hold the model (plus the KV
        // cache, which also lives on the DIMMs).
        let kv_bytes = cfg.memory_footprint().kv_cache_bytes(
            self.workload.prompt_len + self.workload.gen_len,
            self.workload.batch,
        );
        let total_bytes = cfg.total_param_bytes() + kv_bytes;
        let available = self.config.dimm_capacity_total();
        if total_bytes > available {
            return Err(HermesError::InsufficientMemory {
                required: total_bytes,
                available,
            });
        }
        if self.options.use_sparsity {
            Ok(self.sparse_plan(&cfg))
        } else {
            Ok(self.base_plan(&cfg))
        }
    }

    /// Simulate the run end to end: a thin driver that opens a session and
    /// folds its per-token events into the report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HermesSystem::session`].
    pub fn run(&self) -> Result<InferenceReport, HermesError> {
        let mut session = SimSession::from_plan(self.plan()?);
        run_session(&mut session)
    }

    /// Plan the full sparsity-aware Hermes / Hermes-host engine.
    fn sparse_plan(&self, cfg: &ModelConfig) -> PlannedRun {
        let cfg = cfg.clone();
        let profile = SparsityProfile::for_model_on(&cfg, self.workload.dataset);
        let popularity = NeuronPopularity::generate(&cfg, &profile, self.workload.seed);
        let activity = StatisticalActivityModel::new(&cfg, &profile, self.workload.seed);
        let shape = cfg.layer_shape();
        let kernel = KernelCostModel::new(self.config.gpu.clone());
        let dimm = NdpDimm::new(self.config.dimm.clone());
        let num_dimms = self.config.num_dimms;

        // With online adjustment the partition converges to the oracle hot
        // set (tracked at `tracking_quality`); without it the static mapping
        // of `options.mapping` is used as-is.
        let effective_mapping = if self.options.adjustment == OnlineAdjustment::None {
            self.options.mapping
        } else {
            MappingPolicy::Oracle
        };
        let plan = NeuronPlan::build(
            &cfg,
            &profile,
            &popularity,
            &activity,
            self.gpu_hot_budget(&cfg),
            effective_mapping,
            num_dimms,
            ColdPlacementPolicy::Contiguous,
            self.workload.seed,
        );
        let quality = self.options.adjustment.tracking_quality();

        // Lightweight predictor bookkeeping (storage + per-token overhead).
        let predictor = HermesPredictor::new(&cfg, PredictorConfig::default());
        let predictor_time_per_token = predictor.lookups_per_token() as f64 * 1e-9;

        let hot_bytes = plan.hot_bytes;
        let hot_coverage = plan.hot_coverage;
        let cost = SparseCostModel {
            shape,
            kernel,
            dimm,
            num_dimms,
            options: self.options,
            quality,
            predictor_time_per_token,
            plan,
            activity,
            host_cpu: self.config.host_cpu.clone(),
            pcie: self.config.pcie.clone(),
            hot_bytes,
            steps: 0,
            window: 5,
            window_multipliers: Vec::new(),
            pending_remap_bytes: 0,
            cfg: cfg.clone(),
        };
        let spec = SessionSpec {
            system: self.options.name().to_string(),
            workload: self.workload.clone(),
            prefill_seconds: cost.prefill_cost(self.workload.prompt_len, self.workload.batch),
            gpu_weight_bytes: cfg.memory_footprint().dense_resident_bytes() + hot_bytes,
            hot_neuron_bytes: hot_bytes,
            hot_coverage,
        };
        PlannedRun {
            spec,
            cost: Box::new(cost),
        }
    }

    /// Plan Hermes-base: the NDP-DIMM extension without activation sparsity.
    fn base_plan(&self, cfg: &ModelConfig) -> PlannedRun {
        let cfg = cfg.clone();
        let shape = cfg.layer_shape();
        let kernel = KernelCostModel::new(self.config.gpu.clone());
        let dimm = NdpDimm::new(self.config.dimm.clone());
        let num_dimms = self.config.num_dimms;

        // Whole layers resident on the GPU, the rest computed by the DIMMs.
        let layer_bytes = shape.total_bytes();
        let budget = self.gpu_hot_budget(&cfg) + cfg.memory_footprint().projection_bytes;
        let resident_layers = ((budget / layer_bytes.max(1)) as usize).min(cfg.num_layers);

        let cost = BaseCostModel {
            cfg,
            shape,
            kernel,
            dimm,
            num_dimms,
            resident_layers,
            pcie: self.config.pcie.clone(),
        };
        let spec = SessionSpec {
            system: self.options.name().to_string(),
            workload: self.workload.clone(),
            prefill_seconds: cost.prefill_cost(self.workload.prompt_len, self.workload.batch),
            gpu_weight_bytes: resident_layers as u64 * layer_bytes,
            hot_neuron_bytes: 0,
            hot_coverage: 0.0,
        };
        PlannedRun {
            spec,
            cost: Box::new(cost),
        }
    }
}

/// The Hermes family as an [`InferenceEngine`]: a hardware configuration
/// plus [`HermesOptions`], opening one [`Session`] per workload.
#[derive(Debug, Clone)]
pub struct HermesEngine {
    config: SystemConfig,
    options: HermesOptions,
}

impl HermesEngine {
    /// Create an engine for a hardware configuration and option set.
    pub fn new(config: SystemConfig, options: HermesOptions) -> Self {
        HermesEngine { config, options }
    }
}

impl InferenceEngine for HermesEngine {
    fn name(&self) -> String {
        self.options.name().to_string()
    }

    fn plan(&self, workload: &Workload) -> Result<PlannedRun, HermesError> {
        HermesSystem::new(workload.clone(), self.config.clone(), self.options).plan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn quick_workload(model: ModelId) -> Workload {
        let mut w = Workload::paper_default(model);
        w.gen_len = 16;
        w.prompt_len = 32;
        w
    }

    fn run(model: ModelId, options: HermesOptions) -> InferenceReport {
        HermesSystem::new(
            quick_workload(model),
            SystemConfig::paper_default(),
            options,
        )
        .run()
        .expect("supported configuration")
    }

    #[test]
    fn hermes_beats_hermes_host_and_base() {
        let hermes = run(ModelId::Opt13B, HermesOptions::full());
        let host = run(ModelId::Opt13B, HermesOptions::host());
        let base = run(ModelId::Opt13B, HermesOptions::base());
        assert!(
            hermes.tokens_per_second() > host.tokens_per_second(),
            "hermes {:.2} vs host {:.2}",
            hermes.tokens_per_second(),
            host.tokens_per_second()
        );
        assert!(
            hermes.tokens_per_second() > base.tokens_per_second(),
            "hermes {:.2} vs base {:.2}",
            hermes.tokens_per_second(),
            base.tokens_per_second()
        );
    }

    #[test]
    fn ablation_ordering_matches_paper() {
        // Use a small-memory GPU so that, as for the paper's 70B-scale
        // models on a 24 GB card, only a small fraction of the sparse
        // weights fits on the GPU and the partition choice matters.
        let mut small_gpu = hermes_gpu::GpuDevice::tesla_t4();
        small_gpu.memory_bytes = 8 * hermes_model::GIB;
        let config = SystemConfig::paper_default().with_gpu(small_gpu);
        let run_on = |options: HermesOptions| {
            HermesSystem::new(quick_workload(ModelId::Opt13B), config.clone(), options)
                .run()
                .unwrap()
        };
        let random = run_on(HermesOptions::random_mapping());
        let partition = run_on(HermesOptions::partition_only());
        let adjustment = run_on(HermesOptions::adjustment_only());
        let full = run_on(HermesOptions::full());
        // Fig. 13 compares the latency of the sparse FC blocks; the ordering
        // random ≥ partition ≥ adjustment ≳ full must hold (lower is better).
        assert!(
            random.breakdown.fc >= partition.breakdown.fc,
            "random {:.4} vs partition {:.4}",
            random.breakdown.fc,
            partition.breakdown.fc
        );
        assert!(
            partition.breakdown.fc >= adjustment.breakdown.fc,
            "partition {:.4} vs adjustment {:.4}",
            partition.breakdown.fc,
            adjustment.breakdown.fc
        );
        assert!(
            full.breakdown.fc <= adjustment.breakdown.fc * 1.02,
            "full {:.4} vs adjustment {:.4}",
            full.breakdown.fc,
            adjustment.breakdown.fc
        );
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(HermesOptions::full().name(), "Hermes");
        assert_eq!(HermesOptions::host().name(), "Hermes-host");
        assert_eq!(HermesOptions::base().name(), "Hermes-base");
        assert_eq!(HermesOptions::random_mapping().name(), "Hermes-random");
        assert_eq!(HermesOptions::partition_only().name(), "Hermes-partition");
        assert_eq!(
            HermesOptions::token_adjustment().name(),
            "Hermes-token-adjustment"
        );
        assert_eq!(
            HermesOptions::layer_adjustment().name(),
            "Hermes-layer-adjustment"
        );
        assert_eq!(HermesOptions::adjustment_only().name(), "Hermes-adjustment");
    }

    #[test]
    fn larger_batches_increase_throughput() {
        let b1 = run(ModelId::Opt13B, HermesOptions::full());
        let mut w = quick_workload(ModelId::Opt13B);
        w.batch = 8;
        let b8 = HermesSystem::new(w, SystemConfig::paper_default(), HermesOptions::full())
            .run()
            .unwrap();
        assert!(b8.tokens_per_second() > b1.tokens_per_second());
    }

    #[test]
    fn insufficient_memory_is_reported() {
        let workload = quick_workload(ModelId::Llama2_70B);
        let config = SystemConfig::paper_default().with_num_dimms(2);
        let result = HermesSystem::new(workload, config, HermesOptions::full()).run();
        assert!(matches!(
            result,
            Err(HermesError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn engine_start_matches_system_run() {
        let workload = quick_workload(ModelId::Opt13B);
        let config = SystemConfig::paper_default();
        let engine = HermesEngine::new(config.clone(), HermesOptions::full());
        assert_eq!(engine.name(), "Hermes");
        let mut session = engine.start(&workload).unwrap();
        let report = run_session(session.as_mut()).unwrap();
        let oneshot = HermesSystem::new(workload, config, HermesOptions::full())
            .run()
            .unwrap();
        assert_eq!(report, oneshot);
    }

    #[test]
    fn hermes_report_has_hot_neurons_and_balanced_dimms() {
        let report = run(ModelId::Opt13B, HermesOptions::full());
        assert!(report.hot_neuron_bytes > 0);
        assert!(report.gpu_weight_bytes <= SystemConfig::paper_default().gpu.memory_bytes);
        assert!(report.dimm_imbalance >= 1.0);
        // With remapping the average imbalance should stay modest.
        assert!(
            report.dimm_imbalance < 2.5,
            "imbalance {}",
            report.dimm_imbalance
        );
    }

    #[test]
    fn plan_prices_mixed_context_batches() {
        // A heterogeneous batch prices attention per context group; a
        // uniform batch of the same size must match the closed-loop formula
        // exactly (one group), and a longer-context group must cost more.
        let w = quick_workload(ModelId::Opt13B);
        let config = SystemConfig::paper_default();
        let mk = || {
            HermesSystem::new(w.clone(), config.clone(), HermesOptions::full())
                .plan()
                .unwrap()
        };
        let mut uniform = mk();
        let mut mixed = mk();
        let u = uniform.cost.decode_cost(&BatchState::uniform(4, 64));
        let m = mixed
            .cost
            .decode_cost(&BatchState::new(vec![64, 64, 256, 256]));
        // Same sampled token (same seed, same step), same batch size, but
        // the mixed batch carries longer contexts → more attention time.
        assert!(m.latency.attention > u.latency.attention);
        assert_eq!(u.latency.fc, m.latency.fc);
    }
}
