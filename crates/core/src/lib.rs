//! The Hermes inference system and the baseline offloading systems it is
//! evaluated against.
//!
//! This crate ties every substrate together into end-to-end inference
//! engines that reproduce the paper's evaluation:
//!
//! * [`HermesSystem`] — the full NDP-DIMM augmented GPU system of the paper
//!   (Fig. 5/6): hot neurons on the GPU, cold neurons computed in place on
//!   the DIMMs, attention on the DIMMs, projection on the GPU with hot/cold
//!   adjustment and window-based remapping hidden underneath it.
//! * Baselines — HuggingFace Accelerate, FlexGen, Deja Vu, Hermes-host
//!   (cold neurons on the host CPU), Hermes-base (NDP-DIMMs without
//!   activation sparsity) and the TensorRT-LLM 5×A100 reference.
//!
//! Every engine produces an [`InferenceReport`] with the latency breakdown
//! the paper plots in Fig. 12 and the tokens/s metric used everywhere else.
//!
//! # Example
//!
//! ```
//! use hermes_core::{SystemKind, SystemConfig, Workload, run_system};
//! use hermes_model::ModelId;
//!
//! let workload = Workload::paper_default(ModelId::Opt13B);
//! let config = SystemConfig::paper_default();
//! let report = run_system(SystemKind::hermes(), &workload, &config);
//! assert!(report.tokens_per_second() > 1.0);
//! ```

pub mod baselines;
pub mod config;
pub mod hermes;
pub mod planner;
pub mod report;
pub mod systems;
pub mod workload;

pub use config::SystemConfig;
pub use hermes::{HermesOptions, HermesSystem, MappingPolicy, OnlineAdjustment, Unsupported};
pub use planner::NeuronPlan;
pub use report::{InferenceReport, LatencyBreakdown};
pub use systems::{run_system, try_run_system, SystemKind};
pub use workload::Workload;
