//! The Hermes inference system and the baseline offloading systems it is
//! evaluated against, exposed through a step-wise engine API.
//!
//! This crate ties every substrate together into end-to-end inference
//! engines that reproduce the paper's evaluation:
//!
//! * [`HermesSystem`] / [`HermesEngine`] — the full NDP-DIMM augmented GPU
//!   system of the paper (Fig. 5/6): hot neurons on the GPU, cold neurons
//!   computed in place on the DIMMs, attention on the DIMMs, projection on
//!   the GPU with hot/cold adjustment and window-based remapping hidden
//!   underneath it.
//! * Baselines — HuggingFace Accelerate, FlexGen, Deja Vu, Hermes-host
//!   (cold neurons on the host CPU), Hermes-base (NDP-DIMMs without
//!   activation sparsity) and the TensorRT-LLM 5×A100 reference.
//!
//! # The session API
//!
//! The engines are token-stepped: per-token predictor lookups, hot/cold
//! adjustment churn and window-based remapping (Algorithm 1) all happen
//! *between* decode steps. The API exposes that structure directly:
//!
//! * [`SystemKind::engine`] binds a system to a [`SystemConfig`], returning
//!   a `Box<dyn `[`InferenceEngine`]`>`.
//! * [`InferenceEngine::start`] validates a [`Workload`] and opens a
//!   [`Session`]; every failure is a [`HermesError`].
//! * [`Session::prefill`] runs the prompting phase and each
//!   [`Session::step`] generates one token, emitting a [`TokenEvent`] with
//!   that token's latency breakdown and the current hot-set / DIMM-balance
//!   state.
//! * [`Session::report`] (or the [`run_session`] / [`try_run_system`]
//!   drivers) folds the event stream into an [`InferenceReport`] carrying
//!   the Fig. 12 latency breakdown plus serving-grade metrics: TTFT and
//!   p50/p95/p99 per-token latency ([`TokenLatencyStats`]).
//!
//! # Example: start → prefill → step
//!
//! ```
//! use hermes_core::{Phase, SystemConfig, SystemKind, Workload};
//! use hermes_model::ModelId;
//!
//! let mut workload = Workload::paper_default(ModelId::Opt13B);
//! workload.gen_len = 16;
//! let engine = SystemKind::hermes().engine(&SystemConfig::paper_default());
//!
//! let mut session = engine.start(&workload)?;
//! let first = session.prefill()?;
//! assert_eq!(first.phase, Phase::Prefill);
//! while let Some(event) = session.step()? {
//!     // Each event carries this token's latency breakdown and hot-set
//!     // state; stream it, log it, or feed it to a scheduler.
//!     assert!(event.latency_seconds() > 0.0);
//! }
//!
//! let report = session.report();
//! assert!(report.latency_stats.ttft > 0.0);
//! assert!(report.latency_stats.tpot_p99 >= report.latency_stats.tpot_p50);
//! assert!(report.tokens_per_second() > 1.0);
//! # Ok::<(), hermes_core::HermesError>(())
//! ```
//!
//! The one-shot [`try_run_system`] driver does exactly the loop above, so
//! step-wise and one-shot execution agree by construction.

pub mod baselines;
pub mod cast;
pub mod config;
pub mod engine;
pub mod error;
pub mod hermes;
pub mod planner;
pub mod report;
pub mod systems;
pub mod workload;

pub use baselines::{AccelerateEngine, DejaVuEngine, FlexGenEngine, TensorRtLlmEngine};
pub use config::SystemConfig;
pub use engine::{
    run_session, BatchState, InferenceEngine, Phase, PlannedRun, PrefillChunk, Session,
    SessionPhase, SessionSpec, StepCostModel, StepOutcome, TokenEvent,
};
pub use error::HermesError;
pub use hermes::{HermesEngine, HermesOptions, HermesSystem, MappingPolicy, OnlineAdjustment};
pub use planner::NeuronPlan;
pub use report::{
    ClassReport, ClusterReport, DistributionStats, InferenceReport, KvPoolReport, LatencyBreakdown,
    PrefixCacheReport, ReplicaReport, ServingReport, SwapReport, TokenLatencyStats,
};
pub use systems::{try_run_system, SystemKind};
pub use workload::{
    ArrivalProcess, LengthDistribution, PrioritySpec, PromptSpec, RequestClass, RequestLength,
    Workload,
};
