//! Inference workload description.

use serde::{Deserialize, Serialize};

use hermes_model::{ModelConfig, ModelId};
use hermes_sparsity::Dataset;

use crate::error::HermesError;

/// One end-to-end inference workload (Section V-A3/A4: sequence lengths
/// fixed at 128/128, batch sizes 1–16, ChatGPT-prompts / Alpaca datasets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The model to run.
    pub model: ModelId,
    /// Batch size (1–16 in the paper).
    pub batch: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of generated tokens.
    pub gen_len: usize,
    /// Dataset whose sparsity calibration to use.
    pub dataset: Dataset,
    /// Seed for the synthetic activation traces.
    pub seed: u64,
}

impl Workload {
    /// The paper's default workload: batch 1, 128-token prompt, 128 generated
    /// tokens, ChatGPT-prompts dataset.
    pub fn paper_default(model: ModelId) -> Self {
        Workload {
            model,
            batch: 1,
            prompt_len: 128,
            gen_len: 128,
            dataset: Dataset::ChatGptPrompts,
            seed: 0x4e44_5044,
        }
    }

    /// Same workload with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Same workload with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The model configuration.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig::from_id(self.model)
    }

    /// Total tokens generated across the batch.
    pub fn total_generated_tokens(&self) -> usize {
        self.batch * self.gen_len
    }

    /// Validate the workload.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HermesError> {
        if self.batch == 0 {
            return Err(HermesError::InvalidWorkload(
                "batch must be at least 1".into(),
            ));
        }
        if self.gen_len == 0 {
            return Err(HermesError::InvalidWorkload(
                "gen_len must be at least 1".into(),
            ));
        }
        if self.prompt_len == 0 {
            return Err(HermesError::InvalidWorkload(
                "prompt_len must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let w = Workload::paper_default(ModelId::Llama2_70B);
        assert_eq!(w.batch, 1);
        assert_eq!(w.prompt_len, 128);
        assert_eq!(w.gen_len, 128);
        w.validate().unwrap();
        assert_eq!(w.total_generated_tokens(), 128);
    }

    #[test]
    fn with_batch_scales_token_count() {
        let w = Workload::paper_default(ModelId::Opt13B).with_batch(16);
        assert_eq!(w.total_generated_tokens(), 16 * 128);
        assert_eq!(w.with_seed(9).seed, 9);
    }

    #[test]
    fn invalid_workloads_rejected() {
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.batch = 0;
        assert!(matches!(w.validate(), Err(HermesError::InvalidWorkload(_))));
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.gen_len = 0;
        assert!(matches!(w.validate(), Err(HermesError::InvalidWorkload(_))));
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.prompt_len = 0;
        assert!(matches!(w.validate(), Err(HermesError::InvalidWorkload(_))));
    }
}
