//! Inference workload descriptions: the closed-loop [`Workload`] of the
//! paper's evaluation and the open-loop [`ArrivalProcess`] specs consumed by
//! the `hermes-serve` request-level simulator.

use serde::{Deserialize, Serialize};

use hermes_model::{ModelConfig, ModelId};
use hermes_sparsity::Dataset;

use crate::error::HermesError;

/// One end-to-end inference workload (Section V-A3/A4: sequence lengths
/// fixed at 128/128, batch sizes 1–16, ChatGPT-prompts / Alpaca datasets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The model to run.
    pub model: ModelId,
    /// Batch size (1–16 in the paper).
    pub batch: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of generated tokens.
    pub gen_len: usize,
    /// Dataset whose sparsity calibration to use.
    pub dataset: Dataset,
    /// Seed for the synthetic activation traces.
    pub seed: u64,
}

impl Workload {
    /// The paper's default workload: batch 1, 128-token prompt, 128 generated
    /// tokens, ChatGPT-prompts dataset.
    pub fn paper_default(model: ModelId) -> Self {
        Workload {
            model,
            batch: 1,
            prompt_len: 128,
            gen_len: 128,
            dataset: Dataset::ChatGptPrompts,
            seed: 0x4e44_5044,
        }
    }

    /// Same workload with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Same workload with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The model configuration.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig::from_id(self.model)
    }

    /// Total tokens generated across the batch.
    pub fn total_generated_tokens(&self) -> usize {
        self.batch * self.gen_len
    }

    /// Validate the workload.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HermesError> {
        if self.batch == 0 {
            return Err(HermesError::InvalidWorkload(
                "batch must be at least 1".into(),
            ));
        }
        if self.gen_len == 0 {
            return Err(HermesError::InvalidWorkload(
                "gen_len must be at least 1".into(),
            ));
        }
        if self.prompt_len == 0 {
            return Err(HermesError::InvalidWorkload(
                "prompt_len must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The prompt and generation length of one serving request, in tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestLength {
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of tokens to generate.
    pub gen_len: usize,
}

impl RequestLength {
    /// Validate one request's lengths.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] when either length is zero.
    pub fn validate(&self) -> Result<(), HermesError> {
        if self.prompt_len == 0 {
            return Err(HermesError::InvalidWorkload(
                "request prompt_len must be at least 1".into(),
            ));
        }
        if self.gen_len == 0 {
            return Err(HermesError::InvalidWorkload(
                "request gen_len must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The scheduling class of one serving request: a priority tier (0 is the
/// most important) and an optional time-to-first-token deadline in seconds
/// from the request's arrival.
///
/// Classes are consumed by the `hermes-serve` scheduler: priority ordering
/// sorts the ready queue by tier, earliest-deadline-first by the absolute
/// deadline (`arrival + ttft_deadline`), and KV-pressure preemption evicts
/// strictly lower-priority active sequences to make room. The deadline also
/// feeds SLO attainment in the serving report (fraction of deadline-carrying
/// requests whose TTFT met the deadline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestClass {
    /// Priority tier; 0 is the most important, larger values are less
    /// important.
    pub priority: u8,
    /// TTFT deadline in seconds from arrival, when this request carries an
    /// SLO (`None` for best-effort requests).
    pub ttft_deadline: Option<f64>,
}

impl Default for RequestClass {
    /// Best effort at the most important tier: priority 0, no deadline —
    /// the class every request gets when a scenario assigns none.
    fn default() -> Self {
        RequestClass {
            priority: 0,
            ttft_deadline: None,
        }
    }
}

impl RequestClass {
    /// A best-effort class at the given priority tier.
    pub fn new(priority: u8) -> Self {
        RequestClass {
            priority,
            ttft_deadline: None,
        }
    }

    /// Same class with a TTFT deadline in seconds from arrival.
    pub fn with_ttft_deadline(mut self, seconds: f64) -> Self {
        self.ttft_deadline = Some(seconds);
        self
    }

    /// Validate the class.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] for a deadline that is not
    /// positive and finite.
    pub fn validate(&self) -> Result<(), HermesError> {
        if let Some(deadline) = self.ttft_deadline {
            if !deadline.is_finite() || deadline <= 0.0 {
                return Err(HermesError::InvalidWorkload(
                    "request TTFT deadline must be positive and finite".into(),
                ));
            }
        }
        Ok(())
    }
}

/// How request classes (priority tier + optional TTFT deadline) are assigned
/// to the requests of an open-loop serving simulation.
///
/// Like [`LengthDistribution`], the spec is pure data consumed by the
/// `hermes-serve` crate; unlike the length sampler, class assignment is
/// deterministic (no seeded draws), so a scenario pins each request's class
/// by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PrioritySpec {
    /// Every request gets [`RequestClass::default`] — the single-tenant
    /// shape where scheduling degenerates to FCFS.
    Fixed,
    /// Classes assigned round-robin in arrival order: request `i` gets
    /// `classes[i % classes.len()]` — a deterministic interleaving of
    /// tenants.
    Cycle {
        /// The class cycle, assigned in arrival order.
        classes: Vec<RequestClass>,
    },
    /// Explicit per-request classes, in arrival order — e.g. replayed from a
    /// production trace alongside [`ArrivalProcess::Trace`].
    Trace {
        /// Class of each request, in arrival order.
        classes: Vec<RequestClass>,
    },
}

impl PrioritySpec {
    /// Validate the priority spec.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] for an empty cycle or any
    /// invalid class.
    pub fn validate(&self) -> Result<(), HermesError> {
        match self {
            PrioritySpec::Fixed => Ok(()),
            PrioritySpec::Cycle { classes } => {
                if classes.is_empty() {
                    return Err(HermesError::InvalidWorkload(
                        "priority cycle must name at least one class".into(),
                    ));
                }
                for class in classes {
                    class.validate()?;
                }
                Ok(())
            }
            PrioritySpec::Trace { classes } => {
                for class in classes {
                    class.validate()?;
                }
                Ok(())
            }
        }
    }
}

/// How per-request prompt and generation lengths are drawn in an open-loop
/// serving simulation.
///
/// Like [`ArrivalProcess`], the spec is pure data; the `hermes-serve` crate
/// samples it with a seeded generator (derived from the arrival seed), so
/// equal seeds always produce equal per-request lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LengthDistribution {
    /// Every request uses the template workload's `prompt_len`/`gen_len` —
    /// the homogeneous shape of the paper's closed-loop evaluation.
    Fixed,
    /// Per-request lengths drawn independently and uniformly from the given
    /// inclusive ranges.
    Uniform {
        /// Smallest prompt length (inclusive).
        prompt_min: usize,
        /// Largest prompt length (inclusive).
        prompt_max: usize,
        /// Smallest generation length (inclusive).
        gen_min: usize,
        /// Largest generation length (inclusive).
        gen_max: usize,
    },
    /// Explicit per-request lengths, in arrival order — e.g. replayed from a
    /// production trace alongside [`ArrivalProcess::Trace`].
    Trace {
        /// Lengths of each request, in arrival order.
        lengths: Vec<RequestLength>,
    },
}

impl LengthDistribution {
    /// Validate the length spec.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HermesError> {
        match self {
            LengthDistribution::Fixed => Ok(()),
            LengthDistribution::Uniform {
                prompt_min,
                prompt_max,
                gen_min,
                gen_max,
            } => {
                if *prompt_min == 0 || *gen_min == 0 {
                    return Err(HermesError::InvalidWorkload(
                        "uniform length bounds must be at least 1".into(),
                    ));
                }
                if prompt_min > prompt_max || gen_min > gen_max {
                    return Err(HermesError::InvalidWorkload(
                        "uniform length ranges must satisfy min <= max".into(),
                    ));
                }
                Ok(())
            }
            LengthDistribution::Trace { lengths } => {
                for length in lengths {
                    length.validate()?;
                }
                Ok(())
            }
        }
    }
}

/// How requests arrive at an open-loop serving simulation.
///
/// The spec is pure data (how inter-arrival gaps are distributed); the
/// `hermes-serve` crate samples it into concrete arrival times with a seeded
/// generator, so equal seeds always produce equal traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Every request is already queued at time zero — the closed-loop batch
    /// shape of the paper's evaluation.
    AllAtOnce,
    /// Memoryless arrivals at `rate` requests per second (exponential
    /// inter-arrival gaps).
    Poisson {
        /// Offered load in requests per second.
        rate: f64,
    },
    /// Bursts of `burst` requests arriving together; bursts are spaced so
    /// the long-run offered load is still `rate` requests per second.
    Bursty {
        /// Offered load in requests per second.
        rate: f64,
        /// Number of requests arriving together in each burst.
        burst: usize,
    },
    /// Replay explicit arrival offsets in seconds since simulation start
    /// (sorted, non-negative) — e.g. timestamps from a production trace.
    Trace {
        /// Arrival time of each request, in seconds.
        times: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Validate the arrival spec.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HermesError> {
        match self {
            ArrivalProcess::AllAtOnce => Ok(()),
            ArrivalProcess::Poisson { rate } => {
                if !rate.is_finite() || *rate <= 0.0 {
                    return Err(HermesError::InvalidWorkload(
                        "arrival rate must be positive and finite".into(),
                    ));
                }
                Ok(())
            }
            ArrivalProcess::Bursty { rate, burst } => {
                if !rate.is_finite() || *rate <= 0.0 {
                    return Err(HermesError::InvalidWorkload(
                        "arrival rate must be positive and finite".into(),
                    ));
                }
                if *burst == 0 {
                    return Err(HermesError::InvalidWorkload(
                        "burst size must be at least 1".into(),
                    ));
                }
                Ok(())
            }
            ArrivalProcess::Trace { times } => {
                if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
                    return Err(HermesError::InvalidWorkload(
                        "trace arrival times must be non-negative and finite".into(),
                    ));
                }
                if times.windows(2).any(|w| w[0] > w[1]) {
                    return Err(HermesError::InvalidWorkload(
                        "trace arrival times must be sorted".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// The offered load in requests per second, when the spec defines one
    /// (`None` for all-at-once and traces).
    pub fn offered_rps(&self) -> Option<f64> {
        match self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Bursty { rate, .. } => Some(*rate),
            ArrivalProcess::AllAtOnce | ArrivalProcess::Trace { .. } => None,
        }
    }
}

/// Which prompt-token prefixes the requests of a serving scenario share —
/// the workload-side declaration a prefix cache and prefix-affinity
/// scheduling act on.
///
/// Like [`LengthDistribution`] and [`PrioritySpec`], the spec is pure data:
/// the `hermes-serve` crate samples it into concrete per-request prefix
/// token ids with a seeded generator, so equal seeds always produce equal
/// prefix assignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PromptSpec {
    /// Every prompt is unique: no request declares any shared prefix, so a
    /// prefix cache can never hit across requests.
    Unique,
    /// Requests draw one of `groups` shared-prefix groups uniformly; every
    /// request of a group starts with the same `prefix_len` prompt tokens
    /// (the shared-system-prompt / shared-RAG-context shape). A prefix
    /// longer than a request's sampled prompt is clamped to the prompt.
    SharedGroups {
        /// Number of distinct shared prefixes.
        groups: usize,
        /// Length in tokens of each shared prefix.
        prefix_len: usize,
    },
    /// Explicit per-request prefix token ids, in arrival order — e.g.
    /// replayed from a production trace alongside [`ArrivalProcess::Trace`].
    /// Requests sharing leading token ids share that prefix; an empty
    /// prefix declares no sharing.
    Trace {
        /// Prefix token ids of each request, in arrival order.
        prefixes: Vec<Vec<u64>>,
    },
}

impl PromptSpec {
    /// Validate the prompt spec.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HermesError> {
        match self {
            PromptSpec::Unique | PromptSpec::Trace { .. } => Ok(()),
            PromptSpec::SharedGroups { groups, prefix_len } => {
                if *groups == 0 {
                    return Err(HermesError::InvalidWorkload(
                        "shared-prefix group count must be at least 1".into(),
                    ));
                }
                if *prefix_len == 0 {
                    return Err(HermesError::InvalidWorkload(
                        "shared prefix length must be at least 1".into(),
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let w = Workload::paper_default(ModelId::Llama2_70B);
        assert_eq!(w.batch, 1);
        assert_eq!(w.prompt_len, 128);
        assert_eq!(w.gen_len, 128);
        w.validate().unwrap();
        assert_eq!(w.total_generated_tokens(), 128);
    }

    #[test]
    fn with_batch_scales_token_count() {
        let w = Workload::paper_default(ModelId::Opt13B).with_batch(16);
        assert_eq!(w.total_generated_tokens(), 16 * 128);
        assert_eq!(w.with_seed(9).seed, 9);
    }

    #[test]
    fn arrival_specs_validate() {
        ArrivalProcess::AllAtOnce.validate().unwrap();
        ArrivalProcess::Poisson { rate: 2.0 }.validate().unwrap();
        ArrivalProcess::Bursty {
            rate: 2.0,
            burst: 4,
        }
        .validate()
        .unwrap();
        ArrivalProcess::Trace {
            times: vec![0.0, 0.5, 0.5, 2.0],
        }
        .validate()
        .unwrap();
        for bad in [
            ArrivalProcess::Poisson { rate: 0.0 },
            ArrivalProcess::Poisson {
                rate: f64::INFINITY,
            },
            ArrivalProcess::Bursty {
                rate: 1.0,
                burst: 0,
            },
            ArrivalProcess::Trace {
                times: vec![1.0, 0.5],
            },
            ArrivalProcess::Trace { times: vec![-1.0] },
        ] {
            assert!(
                matches!(bad.validate(), Err(HermesError::InvalidWorkload(_))),
                "{bad:?} should be rejected"
            );
        }
        assert_eq!(
            ArrivalProcess::Poisson { rate: 3.0 }.offered_rps(),
            Some(3.0)
        );
        assert_eq!(ArrivalProcess::AllAtOnce.offered_rps(), None);
    }

    #[test]
    fn length_distributions_validate() {
        LengthDistribution::Fixed.validate().unwrap();
        LengthDistribution::Uniform {
            prompt_min: 16,
            prompt_max: 128,
            gen_min: 1,
            gen_max: 64,
        }
        .validate()
        .unwrap();
        LengthDistribution::Trace {
            lengths: vec![
                RequestLength {
                    prompt_len: 8,
                    gen_len: 1,
                },
                RequestLength {
                    prompt_len: 64,
                    gen_len: 32,
                },
            ],
        }
        .validate()
        .unwrap();
        for bad in [
            LengthDistribution::Uniform {
                prompt_min: 0,
                prompt_max: 8,
                gen_min: 1,
                gen_max: 8,
            },
            LengthDistribution::Uniform {
                prompt_min: 8,
                prompt_max: 4,
                gen_min: 1,
                gen_max: 8,
            },
            LengthDistribution::Uniform {
                prompt_min: 1,
                prompt_max: 8,
                gen_min: 4,
                gen_max: 2,
            },
            LengthDistribution::Trace {
                lengths: vec![RequestLength {
                    prompt_len: 8,
                    gen_len: 0,
                }],
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(HermesError::InvalidWorkload(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn request_classes_validate() {
        RequestClass::default().validate().unwrap();
        RequestClass::new(3).validate().unwrap();
        let slo = RequestClass::new(1).with_ttft_deadline(0.5);
        slo.validate().unwrap();
        assert_eq!(slo.priority, 1);
        assert_eq!(slo.ttft_deadline, Some(0.5));
        for bad in [
            RequestClass::new(0).with_ttft_deadline(0.0),
            RequestClass::new(0).with_ttft_deadline(-1.0),
            RequestClass::new(0).with_ttft_deadline(f64::INFINITY),
            RequestClass::new(0).with_ttft_deadline(f64::NAN),
        ] {
            assert!(
                matches!(bad.validate(), Err(HermesError::InvalidWorkload(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn priority_specs_validate() {
        PrioritySpec::Fixed.validate().unwrap();
        PrioritySpec::Cycle {
            classes: vec![RequestClass::new(0), RequestClass::new(2)],
        }
        .validate()
        .unwrap();
        PrioritySpec::Trace { classes: vec![] }.validate().unwrap();
        for bad in [
            PrioritySpec::Cycle { classes: vec![] },
            PrioritySpec::Cycle {
                classes: vec![RequestClass::new(0).with_ttft_deadline(-2.0)],
            },
            PrioritySpec::Trace {
                classes: vec![RequestClass::new(1).with_ttft_deadline(0.0)],
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(HermesError::InvalidWorkload(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn prompt_specs_validate() {
        PromptSpec::Unique.validate().unwrap();
        PromptSpec::SharedGroups {
            groups: 2,
            prefix_len: 48,
        }
        .validate()
        .unwrap();
        PromptSpec::Trace {
            prefixes: vec![vec![1, 2, 3], vec![], vec![1, 2]],
        }
        .validate()
        .unwrap();
        for bad in [
            PromptSpec::SharedGroups {
                groups: 0,
                prefix_len: 48,
            },
            PromptSpec::SharedGroups {
                groups: 2,
                prefix_len: 0,
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(HermesError::InvalidWorkload(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn invalid_workloads_rejected() {
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.batch = 0;
        assert!(matches!(w.validate(), Err(HermesError::InvalidWorkload(_))));
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.gen_len = 0;
        assert!(matches!(w.validate(), Err(HermesError::InvalidWorkload(_))));
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.prompt_len = 0;
        assert!(matches!(w.validate(), Err(HermesError::InvalidWorkload(_))));
    }
}
