//! Offline neuron partition: the greedy equivalent of the paper's ILP
//! (Eq. 1–7), plus an exact solver for small instances used to validate it.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};
use hermes_sparsity::NeuronFrequencies;

use crate::assignment::{NeuronAssignment, Placement};

/// How the offline mapper chooses hot neurons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionGoal {
    /// Place the most frequently activated neurons on the GPU
    /// (the paper's optimal offline mapping).
    FrequencyOptimal,
    /// Place a random subset on the GPU (the Hermes-random ablation).
    Random {
        /// RNG seed for the random placement.
        seed: u64,
    },
}

/// Inputs of the offline partitioning problem (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionInput {
    /// Bytes of GPU memory available for hot-neuron weights (S_GPU after
    /// subtracting dense weights, activations and KV-cache reservations).
    pub gpu_budget_bytes: u64,
    /// Number of NDP-DIMMs.
    pub num_dimms: usize,
    /// Capacity of each DIMM in bytes (S_dimm).
    pub dimm_capacity_bytes: u64,
    /// Seconds to compute one activated neuron on the GPU (T^GPU_l, assumed
    /// layer-independent here).
    pub gpu_time_per_neuron: f64,
    /// Seconds to compute one activated neuron on an NDP-DIMM (T^DIMM_l).
    pub dimm_time_per_neuron: f64,
    /// Per-layer GPU synchronisation overhead (T_sync), seconds.
    pub sync_time: f64,
}

/// The offline neuron mapper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflinePartitioner {
    input: PartitionInput,
}

impl OfflinePartitioner {
    /// Create a partitioner for the given problem input.
    pub fn new(input: PartitionInput) -> Self {
        assert!(input.num_dimms > 0, "need at least one DIMM");
        OfflinePartitioner { input }
    }

    /// The problem input.
    pub fn input(&self) -> &PartitionInput {
        &self.input
    }

    /// Produce the offline assignment with the greedy heuristic:
    ///
    /// 1. rank all neurons globally by expected compute mass
    ///    (frequency × FLOPs per activation) per byte of GPU memory,
    /// 2. mark the top of that ranking as hot until the GPU budget is full,
    /// 3. distribute the cold neurons of each (layer, block) across DIMMs by
    ///    longest-processing-time-first (LPT) on expected load, respecting
    ///    DIMM capacities.
    pub fn partition(
        &self,
        cfg: &ModelConfig,
        freqs: &NeuronFrequencies,
        goal: PartitionGoal,
    ) -> NeuronAssignment {
        let mut assignment = NeuronAssignment::all_on_dimm_zero(cfg, self.input.num_dimms);

        // --- Step 1 & 2: choose the hot set. ---
        struct Candidate {
            layer: usize,
            block: Block,
            neuron: usize,
            score: f64,
            bytes: u64,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for layer in 0..cfg.num_layers {
            for block in Block::ALL {
                let bytes = cfg.neuron_weight_bytes(block);
                let flops = cfg.neuron_flops(block) as f64;
                for (neuron, &f) in freqs.block(layer, block).iter().enumerate() {
                    candidates.push(Candidate {
                        layer,
                        block,
                        neuron,
                        score: f * flops / bytes as f64,
                        bytes,
                    });
                }
            }
        }
        match goal {
            PartitionGoal::FrequencyOptimal => {
                candidates.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
            }
            PartitionGoal::Random { seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                candidates.shuffle(&mut rng);
            }
        }
        let mut used = 0u64;
        for c in &candidates {
            if used + c.bytes > self.input.gpu_budget_bytes {
                continue;
            }
            used += c.bytes;
            assignment.set_placement(c.layer, c.block, c.neuron, Placement::Gpu);
        }

        // --- Step 3: LPT distribution of cold neurons across DIMMs. ---
        let per_dimm_capacity = self.input.dimm_capacity_bytes;
        let mut dimm_bytes = vec![0u64; self.input.num_dimms];
        let mut dimm_load = vec![0f64; self.input.num_dimms];
        for layer in 0..cfg.num_layers {
            for block in Block::ALL {
                let bytes = cfg.neuron_weight_bytes(block);
                // Sort cold neurons of this block by frequency, heaviest first.
                let mut cold: Vec<(usize, f64)> = freqs
                    .block(layer, block)
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| assignment.placement(layer, block, *i) != Placement::Gpu)
                    .map(|(i, &f)| (i, f))
                    .collect();
                cold.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                for (neuron, f) in cold {
                    // Least-loaded DIMM with remaining capacity; ties (many
                    // cold neurons have near-zero frequency) are broken by
                    // stored bytes so storage stays balanced as well.
                    let key = |d: usize| (dimm_load[d], dimm_bytes[d]);
                    let target = (0..self.input.num_dimms)
                        .filter(|&d| dimm_bytes[d] + bytes <= per_dimm_capacity)
                        .min_by(|&a, &b| key(a).partial_cmp(&key(b)).unwrap())
                        .unwrap_or_else(|| {
                            // Out of capacity everywhere: fall back to the
                            // least-loaded DIMM (validation will flag it).
                            (0..self.input.num_dimms)
                                .min_by(|&a, &b| key(a).partial_cmp(&key(b)).unwrap())
                                .expect("at least one DIMM")
                        });
                    dimm_bytes[target] += bytes;
                    dimm_load[target] += f;
                    assignment.set_placement(layer, block, neuron, Placement::Dimm(target as u16));
                }
            }
        }
        assignment
    }

    /// Objective value of an assignment (Eq. 1–3): the sum over layers of
    /// the max of the GPU time (plus 2× sync) and the slowest DIMM time,
    /// evaluated with the given per-neuron frequencies.
    pub fn objective(
        &self,
        cfg: &ModelConfig,
        freqs: &NeuronFrequencies,
        assignment: &NeuronAssignment,
    ) -> f64 {
        let mut total = 0.0;
        for layer in 0..cfg.num_layers {
            let mut gpu = 0.0;
            let mut dimm = vec![0.0f64; self.input.num_dimms];
            for block in Block::ALL {
                for (i, &f) in freqs.block(layer, block).iter().enumerate() {
                    match assignment.placement(layer, block, i) {
                        Placement::Gpu => gpu += f * self.input.gpu_time_per_neuron,
                        Placement::Dimm(d) => {
                            dimm[d as usize] += f * self.input.dimm_time_per_neuron
                        }
                    }
                }
            }
            let t_gpu = gpu + 2.0 * self.input.sync_time;
            let t_dimm = dimm.iter().copied().fold(0.0, f64::max);
            total += t_gpu.max(t_dimm);
        }
        total
    }

    /// Exact brute-force solver for tiny instances (≤ ~16 neurons total),
    /// used to validate the greedy heuristic in tests.
    ///
    /// # Panics
    ///
    /// Panics if the model has more than 20 neurons in total, where the
    /// exhaustive search would be intractable.
    pub fn exact_small(&self, cfg: &ModelConfig, freqs: &NeuronFrequencies) -> NeuronAssignment {
        let total_neurons: usize = (0..cfg.num_layers)
            .map(|l| {
                Block::ALL
                    .iter()
                    .map(|&b| freqs.block(l, b).len())
                    .sum::<usize>()
            })
            .sum();
        assert!(
            total_neurons <= 20,
            "exact solver limited to 20 neurons, got {total_neurons}"
        );
        let options = 1 + self.input.num_dimms; // GPU or one of the DIMMs
        let mut best: Option<(f64, NeuronAssignment)> = None;
        let mut counter = vec![0usize; total_neurons];
        loop {
            // Materialise this placement vector.
            let mut assignment = NeuronAssignment::all_on_dimm_zero(cfg, self.input.num_dimms);
            let mut idx = 0usize;
            for layer in 0..cfg.num_layers {
                for block in Block::ALL {
                    for neuron in 0..freqs.block(layer, block).len() {
                        let choice = counter[idx];
                        let placement = if choice == 0 {
                            Placement::Gpu
                        } else {
                            Placement::Dimm((choice - 1) as u16)
                        };
                        assignment.set_placement(layer, block, neuron, placement);
                        idx += 1;
                    }
                }
            }
            if assignment
                .validate(
                    cfg,
                    self.input.gpu_budget_bytes,
                    self.input.dimm_capacity_bytes,
                )
                .is_ok()
            {
                let obj = self.objective(cfg, freqs, &assignment);
                if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                    best = Some((obj, assignment));
                }
            }
            // Increment the mixed-radix counter.
            let mut pos = 0usize;
            loop {
                if pos == total_neurons {
                    return best.expect("at least one feasible assignment").1;
                }
                counter[pos] += 1;
                if counter[pos] < options {
                    break;
                }
                counter[pos] = 0;
                pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;
    use hermes_sparsity::{SparsityProfile, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 2;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 96;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    fn micro_model() -> ModelConfig {
        // 2 layers × (2 attention + 3 MLP) = 10 neurons, small enough for the
        // exact solver.
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 2;
        cfg.hidden_size = 2;
        cfg.ffn_hidden = 3;
        cfg.num_heads = 1;
        cfg.num_kv_heads = 1;
        cfg
    }

    fn freqs_for(cfg: &ModelConfig, seed: u64, tokens: usize) -> NeuronFrequencies {
        let profile = SparsityProfile::for_model(cfg);
        let mut gen = TraceGenerator::new(cfg, &profile, seed);
        NeuronFrequencies::measure(&gen.generate(tokens))
    }

    fn input(cfg: &ModelConfig, gpu_fraction: f64, dimms: usize) -> PartitionInput {
        let sparse = cfg.memory_footprint().sparse_bytes();
        PartitionInput {
            gpu_budget_bytes: (sparse as f64 * gpu_fraction) as u64,
            num_dimms: dimms,
            dimm_capacity_bytes: sparse,
            gpu_time_per_neuron: 1e-8,
            dimm_time_per_neuron: 4e-7,
            sync_time: 1e-7,
        }
    }

    #[test]
    fn greedy_respects_gpu_budget() {
        let cfg = tiny_model();
        let freqs = freqs_for(&cfg, 1, 32);
        let inp = input(&cfg, 0.2, 4);
        let budget = inp.gpu_budget_bytes;
        let partitioner = OfflinePartitioner::new(inp);
        let a = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
        assert!(a.gpu_bytes(&cfg) <= budget);
        assert!(a.validate(&cfg, budget, u64::MAX).is_ok());
    }

    #[test]
    fn frequency_optimal_puts_hot_neurons_on_gpu() {
        let cfg = tiny_model();
        let freqs = freqs_for(&cfg, 2, 32);
        let partitioner = OfflinePartitioner::new(input(&cfg, 0.2, 4));
        let a = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
        // Mean frequency of GPU-resident MLP neurons should exceed that of
        // cold ones.
        let f = freqs.block(1, Block::Mlp);
        let (mut hot_sum, mut hot_n, mut cold_sum, mut cold_n) = (0.0, 0, 0.0, 0);
        for (i, &freq) in f.iter().enumerate() {
            if a.placement(1, Block::Mlp, i) == Placement::Gpu {
                hot_sum += freq;
                hot_n += 1;
            } else {
                cold_sum += freq;
                cold_n += 1;
            }
        }
        if hot_n > 0 && cold_n > 0 {
            assert!(hot_sum / hot_n as f64 > cold_sum / cold_n as f64);
        }
    }

    #[test]
    fn frequency_optimal_beats_random() {
        let cfg = tiny_model();
        let freqs = freqs_for(&cfg, 3, 32);
        let partitioner = OfflinePartitioner::new(input(&cfg, 0.2, 4));
        let opt = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
        let rnd = partitioner.partition(&cfg, &freqs, PartitionGoal::Random { seed: 7 });
        let obj_opt = partitioner.objective(&cfg, &freqs, &opt);
        let obj_rnd = partitioner.objective(&cfg, &freqs, &rnd);
        assert!(
            obj_opt <= obj_rnd,
            "optimal {obj_opt:.2e} should not exceed random {obj_rnd:.2e}"
        );
    }

    #[test]
    fn cold_neurons_are_spread_across_dimms() {
        let cfg = tiny_model();
        let freqs = freqs_for(&cfg, 4, 32);
        let partitioner = OfflinePartitioner::new(input(&cfg, 0.1, 4));
        let a = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
        // The LPT step balances *expected load* (activation frequency mass),
        // which is the quantity Eq. 2 cares about.
        let mut loads = vec![0.0f64; 4];
        for layer in 0..cfg.num_layers {
            for block in Block::ALL {
                for (i, &f) in freqs.block(layer, block).iter().enumerate() {
                    if let Placement::Dimm(d) = a.placement(layer, block, i) {
                        loads[d as usize] += f;
                    }
                }
            }
        }
        let max = loads.iter().copied().fold(0.0, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!(max / mean < 1.25, "cold load imbalanced: {loads:?}");
        // Every DIMM holds some cold weights.
        assert!(a.dimm_cold_bytes(&cfg).iter().all(|&b| b > 0));
    }

    #[test]
    fn greedy_is_close_to_exact_on_micro_instance() {
        let cfg = micro_model();
        let freqs = freqs_for(&cfg, 5, 48);
        let inp = PartitionInput {
            gpu_budget_bytes: 3 * cfg.neuron_weight_bytes(Block::Mlp),
            num_dimms: 2,
            dimm_capacity_bytes: u64::MAX / 4,
            gpu_time_per_neuron: 1e-8,
            dimm_time_per_neuron: 4e-7,
            sync_time: 1e-6,
        };
        let partitioner = OfflinePartitioner::new(inp);
        let greedy = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
        let exact = partitioner.exact_small(&cfg, &freqs);
        let obj_greedy = partitioner.objective(&cfg, &freqs, &greedy);
        let obj_exact = partitioner.objective(&cfg, &freqs, &exact);
        assert!(obj_exact <= obj_greedy + 1e-12);
        assert!(
            obj_greedy <= 1.5 * obj_exact,
            "greedy {obj_greedy:.3e} vs exact {obj_exact:.3e}"
        );
    }

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn exact_solver_rejects_large_models() {
        let cfg = tiny_model();
        let freqs = freqs_for(&cfg, 6, 8);
        let partitioner = OfflinePartitioner::new(input(&cfg, 0.2, 2));
        let _ = partitioner.exact_small(&cfg, &freqs);
    }

    #[test]
    fn random_partition_is_seed_deterministic() {
        let cfg = tiny_model();
        let freqs = freqs_for(&cfg, 7, 32);
        let partitioner = OfflinePartitioner::new(input(&cfg, 0.2, 4));
        let a = partitioner.partition(&cfg, &freqs, PartitionGoal::Random { seed: 11 });
        let b = partitioner.partition(&cfg, &freqs, PartitionGoal::Random { seed: 11 });
        assert_eq!(a, b, "same seed must reproduce the same assignment");
        let c = partitioner.partition(&cfg, &freqs, PartitionGoal::Random { seed: 12 });
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn input_accessor_exposes_problem() {
        let cfg = tiny_model();
        let inp = input(&cfg, 0.3, 8);
        let partitioner = OfflinePartitioner::new(inp.clone());
        assert_eq!(partitioner.input(), &inp);
    }

    #[test]
    #[should_panic(expected = "at least one DIMM")]
    fn zero_dimms_rejected() {
        let cfg = tiny_model();
        let _ = OfflinePartitioner::new(input(&cfg, 0.2, 0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(12))]

        /// For any DIMM count and GPU budget fraction, the greedy partition
        /// is feasible: within the GPU budget, every neuron placed, and both
        /// goals produce assignments that validate.
        #[test]
        fn greedy_partition_is_always_feasible(
            dimms in 1usize..8,
            gpu_fraction in 0.0f64..0.9,
            seed in 0u64..1_000,
        ) {
            let cfg = tiny_model();
            let freqs = freqs_for(&cfg, seed, 16);
            let inp = input(&cfg, gpu_fraction, dimms);
            let budget = inp.gpu_budget_bytes;
            let partitioner = OfflinePartitioner::new(inp);
            for goal in [PartitionGoal::FrequencyOptimal, PartitionGoal::Random { seed }] {
                let a = partitioner.partition(&cfg, &freqs, goal);
                proptest::prop_assert!(a.gpu_bytes(&cfg) <= budget);
                proptest::prop_assert!(a.validate(&cfg, budget, u64::MAX).is_ok());
                // The objective of any feasible assignment is positive and
                // at least the per-layer sync floor (Eq. 1 lower bound).
                let obj = partitioner.objective(&cfg, &freqs, &a);
                let sync_floor =
                    2.0 * partitioner.input().sync_time * cfg.num_layers as f64;
                proptest::prop_assert!(obj >= sync_floor);
            }
        }

        /// The frequency-optimal goal never does worse than random under the
        /// shared objective, for any seed.
        #[test]
        fn optimal_never_loses_to_random(seed in 0u64..1_000) {
            let cfg = tiny_model();
            let freqs = freqs_for(&cfg, seed.wrapping_add(100), 24);
            let partitioner = OfflinePartitioner::new(input(&cfg, 0.2, 4));
            let opt = partitioner.partition(&cfg, &freqs, PartitionGoal::FrequencyOptimal);
            let rnd = partitioner.partition(&cfg, &freqs, PartitionGoal::Random { seed });
            proptest::prop_assert!(
                partitioner.objective(&cfg, &freqs, &opt)
                    <= partitioner.objective(&cfg, &freqs, &rnd) + 1e-12
            );
        }
    }
}
