//! Window-based online remapping of cold neurons across NDP-DIMMs
//! (Algorithm 1, Section IV-D).

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig, NeuronRef};
use hermes_sparsity::TokenActivations;

use crate::assignment::{NeuronAssignment, Placement};

/// Cold-neuron migrations decided at the end of one window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemapPlan {
    /// `(neuron, source DIMM, destination DIMM)` migrations.
    pub moves: Vec<(NeuronRef, u16, u16)>,
    /// Total bytes moved over DIMM-links.
    pub bytes_moved: u64,
}

impl RemapPlan {
    /// Whether the plan moves anything.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// The window-based scheduler: accumulates neuron activity over a window of
/// consecutive tokens (5 in the paper), then pairs the most- and
/// least-loaded DIMMs and migrates the hottest cold neurons between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRemapper {
    window_size: usize,
    tokens_in_window: usize,
    /// Per (layer, block): activation counts within the current window.
    activity: Vec<[Vec<u32>; 2]>,
}

impl WindowRemapper {
    /// Create a remapper with the given window size (the paper uses 5).
    pub fn new(cfg: &ModelConfig, window_size: usize) -> Self {
        assert!(window_size > 0, "window size must be positive");
        let attn = cfg.neurons_per_layer(Block::Attention);
        let mlp = cfg.neurons_per_layer(Block::Mlp);
        WindowRemapper {
            window_size,
            tokens_in_window: 0,
            activity: (0..cfg.num_layers)
                .map(|_| [vec![0u32; attn], vec![0u32; mlp]])
                .collect(),
        }
    }

    /// Window length in tokens.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Number of tokens recorded in the current window.
    pub fn tokens_in_window(&self) -> usize {
        self.tokens_in_window
    }

    /// Record the activations of one generated token. Returns `true` when
    /// the window is now full and [`WindowRemapper::rebalance`] should run.
    pub fn record_token(&mut self, token: &TokenActivations) -> bool {
        for (layer, blocks) in self.activity.iter_mut().enumerate() {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let bits = token.block(layer, block);
                for idx in bits.iter_ones() {
                    blocks[bi][idx] += 1;
                }
            }
        }
        self.tokens_in_window += 1;
        self.tokens_in_window >= self.window_size
    }

    /// Run Algorithm 1 over every (layer, block), migrating the most
    /// activated cold neurons from overloaded to underloaded DIMMs, then
    /// reset the window.
    pub fn rebalance(&mut self, cfg: &ModelConfig, assignment: &mut NeuronAssignment) -> RemapPlan {
        let mut moves = Vec::new();
        let mut bytes_moved = 0u64;
        let num_dimms = assignment.num_dimms();
        for layer in 0..assignment.num_layers() {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let activity = &self.activity[layer][bi];
                let neuron_bytes = cfg.neuron_weight_bytes(block);
                // Z_j: activated-neuron count per DIMM under the current map.
                let mut loads = vec![0u64; num_dimms];
                for (i, p) in assignment.block(layer, block).iter().enumerate() {
                    if let Placement::Dimm(d) = p {
                        loads[*d as usize] += activity[i] as u64;
                    }
                }
                // Sort DIMM ids by descending load (Algorithm 1, line 2).
                let mut order: Vec<usize> = (0..num_dimms).collect();
                order.sort_by(|&a, &b| loads[b].cmp(&loads[a]));
                // Pair the most loaded with the least loaded (lines 3–6).
                for pair in 0..num_dimms / 2 {
                    let heavy = order[pair];
                    let light = order[num_dimms - 1 - pair];
                    if heavy == light {
                        continue;
                    }
                    // Most activated neurons currently on the heavy DIMM.
                    let mut candidates: Vec<(usize, u32)> = assignment
                        .block(layer, block)
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| **p == Placement::Dimm(heavy as u16))
                        .map(|(i, _)| (i, activity[i]))
                        .collect();
                    candidates.sort_by_key(|&(_, act)| std::cmp::Reverse(act));
                    for (neuron, act) in candidates {
                        if loads[heavy] <= loads[light] || act == 0 {
                            break;
                        }
                        // Moving a neuron with `act` activations shrinks the
                        // gap by 2·act; stop when it would overshoot.
                        if loads[heavy] - loads[light] < 2 * act as u64 {
                            break;
                        }
                        assignment.set_placement(
                            layer,
                            block,
                            neuron,
                            Placement::Dimm(light as u16),
                        );
                        loads[heavy] -= act as u64;
                        loads[light] += act as u64;
                        bytes_moved += neuron_bytes;
                        moves.push((
                            NeuronRef::new(layer, block, neuron),
                            heavy as u16,
                            light as u16,
                        ));
                    }
                }
            }
        }
        self.reset_window();
        RemapPlan { moves, bytes_moved }
    }

    /// Per-DIMM activated-neuron counts of one (layer, block) for the
    /// current window and assignment (the quantity Algorithm 1 balances).
    pub fn dimm_loads(
        &self,
        assignment: &NeuronAssignment,
        layer: usize,
        block: Block,
    ) -> Vec<u64> {
        let bi = match block {
            Block::Attention => 0,
            Block::Mlp => 1,
        };
        let activity = &self.activity[layer][bi];
        let mut loads = vec![0u64; assignment.num_dimms()];
        for (i, p) in assignment.block(layer, block).iter().enumerate() {
            if let Placement::Dimm(d) = p {
                loads[*d as usize] += activity[i] as u64;
            }
        }
        loads
    }

    /// Clear the window counters.
    pub fn reset_window(&mut self) {
        self.tokens_in_window = 0;
        for blocks in &mut self.activity {
            for b in blocks.iter_mut() {
                b.iter_mut().for_each(|v| *v = 0);
            }
        }
    }
}

/// Max/mean imbalance of a load vector (1.0 = perfectly balanced).
pub fn imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;
    use hermes_sparsity::{SparsityProfile, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 2;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 128;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    /// Assignment that places cold neurons in contiguous chunks, the layout
    /// that suffers from cluster-aligned load imbalance.
    fn contiguous_assignment(cfg: &ModelConfig, dimms: usize) -> NeuronAssignment {
        let mut a = NeuronAssignment::all_on_dimm_zero(cfg, dimms);
        for layer in 0..cfg.num_layers {
            for block in Block::ALL {
                let n = cfg.neurons_per_layer(block);
                for i in 0..n {
                    let d = (i * dimms / n).min(dimms - 1);
                    a.set_placement(layer, block, i, Placement::Dimm(d as u16));
                }
            }
        }
        a
    }

    #[test]
    fn window_fills_after_window_size_tokens() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 3);
        let mut remapper = WindowRemapper::new(&cfg, 5);
        for i in 1..=5 {
            let full = remapper.record_token(&gen.next_token());
            assert_eq!(full, i == 5);
        }
        assert_eq!(remapper.tokens_in_window(), 5);
        remapper.reset_window();
        assert_eq!(remapper.tokens_in_window(), 0);
    }

    #[test]
    fn rebalance_reduces_imbalance() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 7);
        let mut assignment = contiguous_assignment(&cfg, 4);
        let mut remapper = WindowRemapper::new(&cfg, 5);
        for _ in 0..5 {
            remapper.record_token(&gen.next_token());
        }
        let before = imbalance(&remapper.dimm_loads(&assignment, 1, Block::Mlp));
        // Rebalance resets the window, so capture loads via a fresh window
        // recorded after the remap with similar (adjacent-token) activity.
        let plan = {
            // Keep a copy of the activity by re-recording the same tokens
            // after rebalancing is not possible (generator moved on), so we
            // check the monotonic property on the recorded window itself:
            // recompute loads with the *new* assignment produced from it.
            let mut probe = remapper.clone();
            let plan = remapper.rebalance(&cfg, &mut assignment);
            let after = imbalance(&probe.dimm_loads(&assignment, 1, Block::Mlp));
            assert!(
                after <= before + 1e-9,
                "imbalance should not increase: {before:.3} -> {after:.3}"
            );
            probe.reset_window();
            plan
        };
        // Moves must come with matching byte accounting.
        let expected: u64 = plan
            .moves
            .iter()
            .map(|(r, _, _)| cfg.neuron_weight_bytes(r.block))
            .sum();
        assert_eq!(plan.bytes_moved, expected);
    }

    #[test]
    fn balanced_load_produces_no_moves() {
        let cfg = tiny_model();
        let mut assignment = contiguous_assignment(&cfg, 2);
        let mut remapper = WindowRemapper::new(&cfg, 5);
        // No tokens recorded → zero activity everywhere → nothing to move.
        let plan = remapper.rebalance(&cfg, &mut assignment);
        assert!(plan.is_empty());
        assert_eq!(plan.bytes_moved, 0);
    }

    #[test]
    fn moves_only_touch_cold_neurons() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 9);
        let mut assignment = contiguous_assignment(&cfg, 4);
        // Pin a few neurons to the GPU; they must never be migrated.
        for i in 0..4 {
            assignment.set_placement(0, Block::Mlp, i, Placement::Gpu);
        }
        let mut remapper = WindowRemapper::new(&cfg, 3);
        for _ in 0..3 {
            remapper.record_token(&gen.next_token());
        }
        let plan = remapper.rebalance(&cfg, &mut assignment);
        for (r, _, _) in &plan.moves {
            assert!(!(r.layer == 0 && r.block == Block::Mlp && r.neuron.index() < 4));
        }
        // GPU neurons still on GPU.
        for i in 0..4 {
            assert_eq!(assignment.placement(0, Block::Mlp, i), Placement::Gpu);
        }
    }

    #[test]
    fn imbalance_metric() {
        assert!((imbalance(&[4, 4, 4, 4]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[8, 0]) - 2.0).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        let _ = WindowRemapper::new(&tiny_model(), 0);
    }
}
