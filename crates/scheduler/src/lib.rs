//! Neuron scheduling for Hermes: offline partition, online hot/cold
//! adjustment, and window-based load balancing across NDP-DIMMs.
//!
//! The scheduler answers three questions the paper poses (Sections IV-B to
//! IV-D):
//!
//! 1. **Where does each neuron start?** The offline partitioner places the
//!    most frequently activated neurons in GPU memory (subject to its
//!    capacity) and spreads the cold majority across the DIMMs — the greedy
//!    equivalent of the paper's ILP formulation (Eq. 1–7), with an exact
//!    solver for small instances used to validate the heuristic.
//! 2. **How does the partition track the input?** The online adjuster
//!    promotes neurons whose predictor state crosses `Th` to GPU memory and
//!    evicts the lowest-state residents, hiding the copies under the dense
//!    projection computation.
//! 3. **How do the DIMMs stay balanced?** The window-based remapper
//!    (Algorithm 1) pairs the most- and least-loaded DIMMs every
//!    five-token window and migrates the hottest cold neurons over
//!    DIMM-links.
//!
//! Two granularities are provided: exact per-neuron structures (used by the
//! tests, the predictor-driven ablations and small models) and
//! cluster-granularity structures (used by the end-to-end engines for
//! billion-parameter models, where per-neuron bookkeeping per token would
//! dominate simulation time without changing the statistics).

pub mod adjust;
pub mod assignment;
pub mod cluster_placement;
pub mod partition;
pub mod remap;

pub use adjust::{AdjustmentPlan, OnlineAdjuster};
pub use assignment::{NeuronAssignment, Placement};
pub use cluster_placement::{ClusterColdPlacement, ColdPlacementPolicy};
pub use partition::{OfflinePartitioner, PartitionGoal, PartitionInput};
pub use remap::{RemapPlan, WindowRemapper};
