//! Cluster-granularity cold-neuron placement for the end-to-end engines.
//!
//! For billion-parameter models the per-neuron structures of
//! [`crate::assignment`] would make every simulated token scan millions of
//! entries without changing the statistics the cost models consume. This
//! module keeps the same scheduling decisions — which DIMM computes how much
//! of each co-activation cluster — at cluster granularity: a
//! `[dimm][cluster]` matrix of popularity mass and neuron counts per
//! (layer, block). Algorithm 1 (window-based rebalancing) operates on that
//! matrix directly.

use serde::{Deserialize, Serialize};

use hermes_model::Block;
use hermes_sparsity::{BlockActivity, ClusterPopSums};

/// How cold neurons are initially spread over the DIMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColdPlacementPolicy {
    /// Whole co-activation clusters are assigned to DIMMs (greedily balanced
    /// by expected load). This is what a capacity-driven offline mapper
    /// produces — weight rows are stored contiguously — and it is the layout
    /// that exhibits the 1.2–2.5× runtime imbalance of Section III-C.
    Contiguous,
    /// Every cluster is split evenly across all DIMMs. An idealised layout
    /// that removes cluster-aligned imbalance; used as an oracle reference.
    Scattered,
}

/// Cold placement of one (layer, block) at cluster granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockColdPlacement {
    /// Popularity mass of cold neurons per `[dimm][cluster]`.
    popsum: Vec<Vec<f64>>,
    /// Cold-neuron count per `[dimm][cluster]`.
    count: Vec<Vec<f64>>,
}

impl BlockColdPlacement {
    /// Distribute the cold neurons described by `cold` over `num_dimms`
    /// DIMMs according to `policy`.
    pub fn new(cold: &ClusterPopSums, num_dimms: usize, policy: ColdPlacementPolicy) -> Self {
        assert!(num_dimms > 0, "need at least one DIMM");
        let clusters = cold.popsum.len();
        let mut popsum = vec![vec![0.0; clusters]; num_dimms];
        let mut count = vec![vec![0.0; clusters]; num_dimms];
        match policy {
            ColdPlacementPolicy::Contiguous => {
                // Greedy: assign each cluster (largest first) to the DIMM
                // with the least expected load so far.
                let mut order: Vec<usize> = (0..clusters).collect();
                order.sort_by(|&a, &b| cold.popsum[b].partial_cmp(&cold.popsum[a]).unwrap());
                let mut dimm_load = vec![0.0f64; num_dimms];
                for c in order {
                    let target = (0..num_dimms)
                        .min_by(|&a, &b| dimm_load[a].partial_cmp(&dimm_load[b]).unwrap())
                        .expect("num_dimms > 0");
                    popsum[target][c] = cold.popsum[c];
                    count[target][c] = cold.count[c];
                    dimm_load[target] += cold.popsum[c];
                }
            }
            ColdPlacementPolicy::Scattered => {
                for c in 0..clusters {
                    for d in 0..num_dimms {
                        popsum[d][c] = cold.popsum[c] / num_dimms as f64;
                        count[d][c] = cold.count[c] / num_dimms as f64;
                    }
                }
            }
        }
        BlockColdPlacement { popsum, count }
    }

    /// Number of DIMMs.
    pub fn num_dimms(&self) -> usize {
        self.popsum.len()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.popsum.first().map_or(0, Vec::len)
    }

    /// Expected number of activated cold neurons per DIMM for one sequence,
    /// given the current token's cluster activity.
    pub fn dimm_loads(&self, activity: &BlockActivity) -> Vec<f64> {
        self.popsum
            .iter()
            .zip(&self.count)
            .map(|(ps, cs)| {
                ps.iter()
                    .zip(cs)
                    .enumerate()
                    .map(|(c, (&p, &n))| (p * activity.multiplier(c)).min(n))
                    .sum()
            })
            .collect()
    }

    /// Expected number of cold neurons per DIMM activated by *any* of
    /// `batch` sequences (weight reads are shared across the batch).
    pub fn dimm_union_loads(&self, activity: &BlockActivity, batch: usize) -> Vec<f64> {
        assert!(batch >= 1);
        self.popsum
            .iter()
            .zip(&self.count)
            .map(|(ps, cs)| {
                ps.iter()
                    .zip(cs)
                    .enumerate()
                    .map(|(c, (&p, &n))| {
                        if n == 0.0 {
                            0.0
                        } else {
                            let avg = (p * activity.multiplier(c) / n).min(1.0);
                            n * (1.0 - (1.0 - avg).powi(batch as i32))
                        }
                    })
                    .sum()
            })
            .collect()
    }

    /// Total expected cold activations across all DIMMs for one sequence.
    pub fn total_load(&self, activity: &BlockActivity) -> f64 {
        self.dimm_loads(activity).iter().sum()
    }

    /// Run Algorithm 1 at cluster granularity: using the window-averaged
    /// cluster multipliers, pair the most- and least-loaded DIMMs and move
    /// popularity mass (and the corresponding neuron count) of the hottest
    /// clusters from the former to the latter until their loads meet.
    ///
    /// Returns the number of neurons migrated (fractional, cluster-level
    /// resolution); the caller converts it to DIMM-link bytes.
    pub fn rebalance(&mut self, window_multipliers: &[f64]) -> f64 {
        assert_eq!(
            window_multipliers.len(),
            self.num_clusters(),
            "multiplier vector must cover every cluster"
        );
        let num_dimms = self.num_dimms();
        let loads: Vec<f64> = self
            .popsum
            .iter()
            .map(|ps| {
                ps.iter()
                    .zip(window_multipliers)
                    .map(|(&p, &m)| p * m)
                    .sum()
            })
            .collect();
        let mut order: Vec<usize> = (0..num_dimms).collect();
        order.sort_by(|&a, &b| loads[b].partial_cmp(&loads[a]).unwrap());
        let mut moved_neurons = 0.0;
        let mut loads = loads;
        for pair in 0..num_dimms / 2 {
            let heavy = order[pair];
            let light = order[num_dimms - 1 - pair];
            if heavy == light || loads[heavy] <= loads[light] {
                continue;
            }
            // Hottest clusters of the heavy DIMM first.
            let mut clusters: Vec<usize> = (0..self.num_clusters())
                .filter(|&c| self.popsum[heavy][c] > 0.0)
                .collect();
            clusters.sort_by(|&a, &b| {
                (self.popsum[heavy][b] * window_multipliers[b])
                    .partial_cmp(&(self.popsum[heavy][a] * window_multipliers[a]))
                    .unwrap()
            });
            for c in clusters {
                let gap = loads[heavy] - loads[light];
                if gap <= 1e-9 {
                    break;
                }
                let m = window_multipliers[c].max(1e-9);
                let cluster_load = self.popsum[heavy][c] * m;
                // Move at most half the gap, bounded by what the cluster has.
                let move_load = (gap / 2.0).min(cluster_load);
                let frac = move_load / cluster_load.max(1e-12);
                let move_pop = self.popsum[heavy][c] * frac;
                let move_count = self.count[heavy][c] * frac;
                self.popsum[heavy][c] -= move_pop;
                self.count[heavy][c] -= move_count;
                self.popsum[light][c] += move_pop;
                self.count[light][c] += move_count;
                loads[heavy] -= move_load;
                loads[light] += move_load;
                moved_neurons += move_count;
            }
        }
        moved_neurons
    }

    /// Max/mean load imbalance for one token's activity (1.0 = balanced).
    pub fn imbalance(&self, activity: &BlockActivity) -> f64 {
        let loads = self.dimm_loads(activity);
        let max = loads.iter().copied().fold(0.0, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Cold placement of every (layer, block) of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterColdPlacement {
    layers: Vec<[BlockColdPlacement; 2]>,
}

impl ClusterColdPlacement {
    /// Build the placement from per-(layer, block) cold-neuron cluster sums.
    pub fn build(
        cold_per_layer: &[[ClusterPopSums; 2]],
        num_dimms: usize,
        policy: ColdPlacementPolicy,
    ) -> Self {
        ClusterColdPlacement {
            layers: cold_per_layer
                .iter()
                .map(|blocks| {
                    [
                        BlockColdPlacement::new(&blocks[0], num_dimms, policy),
                        BlockColdPlacement::new(&blocks[1], num_dimms, policy),
                    ]
                })
                .collect(),
        }
    }

    /// Placement of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &BlockColdPlacement {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    /// Mutable placement of one (layer, block).
    pub fn block_mut(&mut self, layer: usize, block: Block) -> &mut BlockColdPlacement {
        match block {
            Block::Attention => &mut self.layers[layer][0],
            Block::Mlp => &mut self.layers[layer][1],
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::{ModelConfig, ModelId};
    use hermes_sparsity::{
        ClusterPopSums, NeuronPopularity, SparsityProfile, StatisticalActivityModel,
    };

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 2;
        cfg.hidden_size = 64;
        cfg.ffn_hidden = 256;
        cfg.num_heads = 8;
        cfg.num_kv_heads = 8;
        cfg
    }

    fn setup() -> (StatisticalActivityModel, ClusterColdPlacement) {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 4);
        let model = StatisticalActivityModel::new(&cfg, &profile, 4);
        let cold: Vec<[ClusterPopSums; 2]> = (0..cfg.num_layers)
            .map(|l| {
                [
                    ClusterPopSums::full(
                        pop.block(l, Block::Attention),
                        model.clusters().block(l, Block::Attention),
                    ),
                    ClusterPopSums::full(
                        pop.block(l, Block::Mlp),
                        model.clusters().block(l, Block::Mlp),
                    ),
                ]
            })
            .collect();
        let placement = ClusterColdPlacement::build(&cold, 4, ColdPlacementPolicy::Contiguous);
        (model, placement)
    }

    #[test]
    fn loads_partition_total_activity() {
        let (mut model, placement) = setup();
        let act = model.next_token();
        let block = placement.block(1, Block::Mlp);
        let loads = block.dimm_loads(act.block(1, Block::Mlp));
        assert_eq!(loads.len(), 4);
        let total: f64 = loads.iter().sum();
        assert!((total - block.total_load(act.block(1, Block::Mlp))).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn scattered_policy_is_balanced() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 5);
        let mut model = StatisticalActivityModel::new(&cfg, &profile, 5);
        let cold = ClusterPopSums::full(
            pop.block(0, Block::Mlp),
            model.clusters().block(0, Block::Mlp),
        );
        let contiguous = BlockColdPlacement::new(&cold, 4, ColdPlacementPolicy::Contiguous);
        let scattered = BlockColdPlacement::new(&cold, 4, ColdPlacementPolicy::Scattered);
        let act = model.next_token();
        let ba = act.block(0, Block::Mlp);
        assert!(scattered.imbalance(ba) <= contiguous.imbalance(ba) + 1e-9);
        assert!((scattered.imbalance(ba) - 1.0).abs() < 0.05);
    }

    #[test]
    fn contiguous_layout_shows_runtime_imbalance() {
        let (mut model, placement) = setup();
        // Average imbalance over a few tokens should exceed 1 (the paper
        // reports 1.2–2.5× for fixed layouts).
        let mut total = 0.0;
        let n = 20;
        for _ in 0..n {
            let act = model.next_token();
            total += placement
                .block(1, Block::Mlp)
                .imbalance(act.block(1, Block::Mlp));
        }
        let mean = total / n as f64;
        assert!(mean > 1.05, "mean imbalance {mean:.3}");
    }

    #[test]
    fn rebalance_reduces_window_imbalance() {
        let (mut model, mut placement) = setup();
        // Accumulate a 5-token window of multipliers.
        let mut window: Vec<f64> = Vec::new();
        let mut last = None;
        for _ in 0..5 {
            let act = model.next_token();
            let ba = act.block(1, Block::Mlp);
            if window.is_empty() {
                window = (0..ba.num_clusters()).map(|c| ba.multiplier(c)).collect();
            } else {
                for (w, c) in window.iter_mut().zip(0..ba.num_clusters()) {
                    *w += ba.multiplier(c);
                }
            }
            last = Some(act);
        }
        for w in &mut window {
            *w /= 5.0;
        }
        let last = last.unwrap();
        let ba = last.block(1, Block::Mlp);
        let before = placement.block(1, Block::Mlp).imbalance(ba);
        let moved = placement.block_mut(1, Block::Mlp).rebalance(&window);
        let after = placement.block(1, Block::Mlp).imbalance(ba);
        assert!(
            after <= before + 1e-9,
            "imbalance {before:.3} -> {after:.3}"
        );
        assert!(moved >= 0.0);
    }

    #[test]
    fn union_loads_exceed_single_sequence_loads() {
        let (mut model, placement) = setup();
        let act = model.next_token();
        let ba = act.block(0, Block::Mlp);
        let single = placement.block(0, Block::Mlp).dimm_loads(ba);
        let union = placement.block(0, Block::Mlp).dimm_union_loads(ba, 8);
        for (s, u) in single.iter().zip(&union) {
            assert!(u + 1e-12 >= *s);
        }
    }

    #[test]
    #[should_panic(expected = "at least one DIMM")]
    fn zero_dimms_panics() {
        let cold = ClusterPopSums {
            popsum: vec![1.0],
            count: vec![2.0],
        };
        let _ = BlockColdPlacement::new(&cold, 0, ColdPlacementPolicy::Contiguous);
    }
}
