//! Online hot/cold partition adjustment guided by the predictor
//! (Section IV-C2).

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig, NeuronRef};
use hermes_predictor::HermesPredictor;

use crate::assignment::{NeuronAssignment, Placement};

/// The swaps decided for one adjustment round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjustmentPlan {
    /// Neurons promoted to GPU memory (copied over PCIe during the
    /// projection computation).
    pub promoted: Vec<NeuronRef>,
    /// Neurons evicted from GPU memory (no data movement: their DIMM copy is
    /// authoritative, the GPU slot is simply overwritten).
    pub demoted: Vec<NeuronRef>,
    /// Bytes copied from DIMMs to GPU memory for the promotions.
    pub bytes_to_gpu: u64,
}

impl AdjustmentPlan {
    /// Whether the plan performs any change.
    pub fn is_empty(&self) -> bool {
        self.promoted.is_empty() && self.demoted.is_empty()
    }
}

/// The online adjuster: promotes neurons whose predictor state crossed the
/// hotness threshold and evicts the coldest GPU residents to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineAdjuster {
    /// Maximum bytes that may be promoted per adjustment round (the copies
    /// must hide under the projection computation).
    pub max_bytes_per_round: u64,
}

impl OnlineAdjuster {
    /// Create an adjuster with a per-round promotion budget.
    pub fn new(max_bytes_per_round: u64) -> Self {
        OnlineAdjuster {
            max_bytes_per_round,
        }
    }

    /// Decide and apply one adjustment round for one layer.
    ///
    /// Neurons of the layer whose state exceeds `Th` but live on a DIMM are
    /// promoted (most-active first) while GPU residents with the lowest
    /// state are demoted to keep the GPU byte budget unchanged.
    pub fn adjust_layer(
        &self,
        cfg: &ModelConfig,
        predictor: &HermesPredictor,
        assignment: &mut NeuronAssignment,
        layer: usize,
    ) -> AdjustmentPlan {
        let mut promoted = Vec::new();
        let mut demoted = Vec::new();
        let mut bytes_to_gpu = 0u64;

        for block in Block::ALL {
            let states = predictor.states().block(layer, block);
            let neuron_bytes = cfg.neuron_weight_bytes(block);
            // Candidates to promote: hot by state but currently on a DIMM.
            let mut to_promote: Vec<(usize, u8)> = states
                .iter()
                .enumerate()
                .filter(|(i, &s)| {
                    s > predictor.config().hot_threshold
                        && assignment.placement(layer, block, *i) != Placement::Gpu
                })
                .map(|(i, &s)| (i, s))
                .collect();
            to_promote.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
            // Candidates to demote: GPU residents, coldest first.
            let mut to_demote: Vec<(usize, u8)> = states
                .iter()
                .enumerate()
                .filter(|(i, _)| assignment.placement(layer, block, *i) == Placement::Gpu)
                .map(|(i, &s)| (i, s))
                .collect();
            to_demote.sort_by_key(|&(_, s)| s);

            let mut demote_iter = to_demote.into_iter();
            for (neuron, state) in to_promote {
                if bytes_to_gpu + neuron_bytes > self.max_bytes_per_round {
                    break;
                }
                // Find a victim that is colder than the candidate. The demote
                // list is sorted coldest-first, so if its head is not colder
                // no later entry can be either.
                let victim = match demote_iter.next() {
                    Some((v, vs)) if vs < state => Some(v),
                    _ => None,
                };
                let Some(victim) = victim else { break };
                // The victim's home DIMM takes back its computation; neurons
                // are always stored on the DIMMs, so demotion is free. The
                // promoted neuron keeps being stored on its DIMM but is now
                // computed on the GPU.
                let victim_home =
                    Placement::Dimm(Self::home_dimm(assignment, layer, block, victim));
                assignment.set_placement(layer, block, victim, victim_home);
                assignment.set_placement(layer, block, neuron, Placement::Gpu);
                bytes_to_gpu += neuron_bytes;
                promoted.push(NeuronRef::new(layer, block, neuron));
                demoted.push(NeuronRef::new(layer, block, victim));
            }
        }

        AdjustmentPlan {
            promoted,
            demoted,
            bytes_to_gpu,
        }
    }

    /// The DIMM a demoted neuron returns to: the least-loaded-by-count DIMM,
    /// a cheap stand-in for "its storage home" (all neurons are stored on
    /// every DIMM's share determined by the offline mapper).
    fn home_dimm(assignment: &NeuronAssignment, layer: usize, block: Block, _neuron: usize) -> u16 {
        let mut counts = vec![0usize; assignment.num_dimms()];
        for p in assignment.block(layer, block) {
            if let Placement::Dimm(d) = p {
                counts[*d as usize] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .map(|(d, _)| d as u16)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;
    use hermes_predictor::PredictorConfig;
    use hermes_sparsity::{SparsityProfile, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 2;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 96;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    fn setup() -> (
        ModelConfig,
        HermesPredictor,
        NeuronAssignment,
        TraceGenerator,
    ) {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 11);
        let prefill = gen.generate(24);
        let mut predictor = HermesPredictor::new(&cfg, PredictorConfig::default());
        predictor.initialize_from_prefill(&prefill);
        // Start from an assignment with a few arbitrary hot neurons so there
        // is something to swap.
        let mut assignment = NeuronAssignment::all_on_dimm_zero(&cfg, 2);
        for i in 0..8 {
            assignment.set_placement(0, Block::Mlp, i, Placement::Gpu);
            assignment.set_placement(1, Block::Mlp, i, Placement::Gpu);
        }
        (cfg, predictor, assignment, gen)
    }

    #[test]
    fn adjustment_swaps_preserve_gpu_byte_budget() {
        let (cfg, predictor, mut assignment, _) = setup();
        let before = assignment.gpu_bytes(&cfg);
        let adjuster = OnlineAdjuster::new(u64::MAX);
        let plan = adjuster.adjust_layer(&cfg, &predictor, &mut assignment, 0);
        let after = assignment.gpu_bytes(&cfg);
        assert_eq!(before, after, "swaps must be one-for-one per block");
        assert_eq!(plan.promoted.len(), plan.demoted.len());
    }

    #[test]
    fn promoted_neurons_are_hotter_than_demoted() {
        let (cfg, predictor, mut assignment, _) = setup();
        let adjuster = OnlineAdjuster::new(u64::MAX);
        let plan = adjuster.adjust_layer(&cfg, &predictor, &mut assignment, 1);
        for (p, d) in plan.promoted.iter().zip(&plan.demoted) {
            let sp = predictor
                .states()
                .state(p.layer as usize, p.block, p.neuron.index());
            let sd = predictor
                .states()
                .state(d.layer as usize, d.block, d.neuron.index());
            assert!(sp > sd, "promoted state {sp} should exceed demoted {sd}");
        }
    }

    #[test]
    fn byte_budget_limits_promotions() {
        let (cfg, predictor, mut assignment, _) = setup();
        let one_neuron = cfg
            .neuron_weight_bytes(Block::Attention)
            .min(cfg.neuron_weight_bytes(Block::Mlp));
        let adjuster = OnlineAdjuster::new(one_neuron);
        let plan = adjuster.adjust_layer(&cfg, &predictor, &mut assignment, 0);
        assert!(plan.bytes_to_gpu <= one_neuron);
        assert!(plan.promoted.len() <= 1);
    }

    #[test]
    fn plan_reports_transferred_bytes() {
        let (cfg, predictor, mut assignment, _) = setup();
        let adjuster = OnlineAdjuster::new(u64::MAX);
        let plan = adjuster.adjust_layer(&cfg, &predictor, &mut assignment, 0);
        let expected: u64 = plan
            .promoted
            .iter()
            .map(|r| cfg.neuron_weight_bytes(r.block))
            .sum();
        assert_eq!(plan.bytes_to_gpu, expected);
        if plan.promoted.is_empty() {
            assert!(plan.is_empty() || !plan.demoted.is_empty());
        }
    }

    #[test]
    fn promoted_neurons_end_up_on_gpu() {
        let (cfg, predictor, mut assignment, _) = setup();
        let adjuster = OnlineAdjuster::new(u64::MAX);
        let plan = adjuster.adjust_layer(&cfg, &predictor, &mut assignment, 0);
        for p in &plan.promoted {
            assert_eq!(
                assignment.placement(p.layer as usize, p.block, p.neuron.index()),
                Placement::Gpu
            );
        }
        for d in &plan.demoted {
            assert_ne!(
                assignment.placement(d.layer as usize, d.block, d.neuron.index()),
                Placement::Gpu
            );
        }
    }
}
