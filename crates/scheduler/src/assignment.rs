//! Per-neuron placement of every (layer, block) onto the GPU or a DIMM.

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};
use hermes_sparsity::Bitset;

/// Where a neuron's computation is performed.
///
/// All neurons are *stored* on the DIMMs regardless (Section IV-C2); a
/// `Gpu` placement means a copy of the weights also resides in GPU memory
/// and the GPU performs the computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Computed on the GPU (hot neuron).
    Gpu,
    /// Computed by the NDP core of the given DIMM (cold neuron).
    Dimm(u16),
}

/// Placement of every neuron of a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuronAssignment {
    num_dimms: usize,
    layers: Vec<[Vec<Placement>; 2]>,
}

impl NeuronAssignment {
    /// Create an assignment with every neuron on DIMM 0.
    pub fn all_on_dimm_zero(cfg: &ModelConfig, num_dimms: usize) -> Self {
        assert!(num_dimms > 0, "need at least one DIMM");
        let attn = cfg.neurons_per_layer(Block::Attention);
        let mlp = cfg.neurons_per_layer(Block::Mlp);
        NeuronAssignment {
            num_dimms,
            layers: (0..cfg.num_layers)
                .map(|_| {
                    [
                        vec![Placement::Dimm(0); attn],
                        vec![Placement::Dimm(0); mlp],
                    ]
                })
                .collect(),
        }
    }

    /// Number of DIMMs this assignment targets.
    pub fn num_dimms(&self) -> usize {
        self.num_dimms
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Placement of one neuron.
    pub fn placement(&self, layer: usize, block: Block, neuron: usize) -> Placement {
        self.block(layer, block)[neuron]
    }

    /// Placements of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &[Placement] {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    /// Mutable placements of one (layer, block).
    pub fn block_mut(&mut self, layer: usize, block: Block) -> &mut [Placement] {
        match block {
            Block::Attention => &mut self.layers[layer][0],
            Block::Mlp => &mut self.layers[layer][1],
        }
    }

    /// Set the placement of one neuron.
    ///
    /// # Panics
    ///
    /// Panics if a `Dimm` index is out of range.
    pub fn set_placement(&mut self, layer: usize, block: Block, neuron: usize, p: Placement) {
        if let Placement::Dimm(d) = p {
            assert!((d as usize) < self.num_dimms, "DIMM index {d} out of range");
        }
        self.block_mut(layer, block)[neuron] = p;
    }

    /// Bitset of GPU-resident (hot) neurons of one (layer, block).
    pub fn gpu_set(&self, layer: usize, block: Block) -> Bitset {
        let placements = self.block(layer, block);
        let mut bits = Bitset::new(placements.len());
        for (i, p) in placements.iter().enumerate() {
            if *p == Placement::Gpu {
                bits.set(i, true);
            }
        }
        bits
    }

    /// Bitset of neurons of one (layer, block) placed on a given DIMM.
    pub fn dimm_set(&self, layer: usize, block: Block, dimm: usize) -> Bitset {
        let placements = self.block(layer, block);
        let mut bits = Bitset::new(placements.len());
        for (i, p) in placements.iter().enumerate() {
            if *p == Placement::Dimm(dimm as u16) {
                bits.set(i, true);
            }
        }
        bits
    }

    /// Number of GPU-resident neurons of one (layer, block).
    pub fn gpu_count(&self, layer: usize, block: Block) -> usize {
        self.block(layer, block)
            .iter()
            .filter(|p| **p == Placement::Gpu)
            .count()
    }

    /// Total bytes of hot-neuron weights copied into GPU memory.
    pub fn gpu_bytes(&self, cfg: &ModelConfig) -> u64 {
        let mut bytes = 0u64;
        for layer in 0..self.num_layers() {
            for block in Block::ALL {
                bytes += self.gpu_count(layer, block) as u64 * cfg.neuron_weight_bytes(block);
            }
        }
        bytes
    }

    /// Per-DIMM bytes of cold-neuron weights (every neuron is stored on its
    /// DIMM; GPU-resident neurons are charged to the DIMM that backs them,
    /// which for this accounting is DIMM 0 by convention of the mapper).
    pub fn dimm_cold_bytes(&self, cfg: &ModelConfig) -> Vec<u64> {
        let mut bytes = vec![0u64; self.num_dimms];
        for layer in 0..self.num_layers() {
            for block in Block::ALL {
                let per = cfg.neuron_weight_bytes(block);
                for p in self.block(layer, block) {
                    if let Placement::Dimm(d) = p {
                        bytes[*d as usize] += per;
                    }
                }
            }
        }
        bytes
    }

    /// Check the assignment against capacity limits.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated budget.
    pub fn validate(
        &self,
        cfg: &ModelConfig,
        gpu_budget_bytes: u64,
        dimm_capacity_bytes: u64,
    ) -> Result<(), String> {
        let gpu = self.gpu_bytes(cfg);
        if gpu > gpu_budget_bytes {
            return Err(format!(
                "hot neurons need {gpu} bytes but the GPU budget is {gpu_budget_bytes}"
            ));
        }
        for (d, bytes) in self.dimm_cold_bytes(cfg).iter().enumerate() {
            if *bytes > dimm_capacity_bytes {
                return Err(format!(
                    "DIMM {d} holds {bytes} bytes, exceeding its capacity {dimm_capacity_bytes}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 2;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 64;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    #[test]
    fn default_assignment_is_all_cold() {
        let cfg = tiny_model();
        let a = NeuronAssignment::all_on_dimm_zero(&cfg, 4);
        assert_eq!(a.num_dimms(), 4);
        assert_eq!(a.num_layers(), 2);
        assert_eq!(a.gpu_count(0, Block::Mlp), 0);
        assert_eq!(a.gpu_bytes(&cfg), 0);
        let cold = a.dimm_cold_bytes(&cfg);
        assert!(cold[0] > 0);
        assert_eq!(cold[1], 0);
    }

    #[test]
    fn set_and_query_placement() {
        let cfg = tiny_model();
        let mut a = NeuronAssignment::all_on_dimm_zero(&cfg, 2);
        a.set_placement(1, Block::Mlp, 5, Placement::Gpu);
        a.set_placement(1, Block::Mlp, 6, Placement::Dimm(1));
        assert_eq!(a.placement(1, Block::Mlp, 5), Placement::Gpu);
        assert_eq!(a.placement(1, Block::Mlp, 6), Placement::Dimm(1));
        assert!(a.gpu_set(1, Block::Mlp).get(5));
        assert!(a.dimm_set(1, Block::Mlp, 1).get(6));
        assert_eq!(a.gpu_count(1, Block::Mlp), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dimm_panics() {
        let cfg = tiny_model();
        let mut a = NeuronAssignment::all_on_dimm_zero(&cfg, 2);
        a.set_placement(0, Block::Mlp, 0, Placement::Dimm(5));
    }

    #[test]
    fn validation_enforces_budgets() {
        let cfg = tiny_model();
        let mut a = NeuronAssignment::all_on_dimm_zero(&cfg, 2);
        for i in 0..10 {
            a.set_placement(0, Block::Mlp, i, Placement::Gpu);
        }
        let hot_bytes = a.gpu_bytes(&cfg);
        assert!(a.validate(&cfg, hot_bytes, u64::MAX).is_ok());
        assert!(a.validate(&cfg, hot_bytes - 1, u64::MAX).is_err());
        assert!(a.validate(&cfg, hot_bytes, 1).is_err());
    }

    #[test]
    fn gpu_and_dimm_sets_partition_neurons() {
        let cfg = tiny_model();
        let mut a = NeuronAssignment::all_on_dimm_zero(&cfg, 3);
        a.set_placement(0, Block::Attention, 1, Placement::Gpu);
        a.set_placement(0, Block::Attention, 2, Placement::Dimm(2));
        let n = cfg.neurons_per_layer(Block::Attention);
        let total: usize = (0..3)
            .map(|d| a.dimm_set(0, Block::Attention, d).count_ones())
            .sum::<usize>()
            + a.gpu_set(0, Block::Attention).count_ones();
        assert_eq!(total, n);
    }
}
