//! Token-by-token activation trace generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};

use crate::bitset::Bitset;
use crate::clusters::ModelClusterProcess;
use crate::popularity::NeuronPopularity;
use crate::profile::SparsityProfile;

/// The activated-neuron sets of a single token across all layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenActivations {
    /// Per layer: `[attention, mlp]` activation bitsets.
    layers: Vec<[Bitset; 2]>,
}

impl TokenActivations {
    /// Activated-neuron bitset of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &Bitset {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    /// Number of layers in the trace.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of activated neurons across the whole token.
    pub fn total_active(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l[0].count_ones() + l[1].count_ones())
            .sum()
    }

    /// Number of activated neurons in one (layer, block).
    pub fn active_count(&self, layer: usize, block: Block) -> usize {
        self.block(layer, block).count_ones()
    }

    /// Mean Jaccard similarity of activated-neuron sets with another token,
    /// averaged over all layers and blocks. This is the quantity plotted in
    /// Fig. 4a.
    pub fn similarity(&self, other: &TokenActivations) -> f64 {
        assert_eq!(
            self.num_layers(),
            other.num_layers(),
            "layer count mismatch"
        );
        let mut total = 0.0;
        let mut n = 0usize;
        for (a, b) in self.layers.iter().zip(&other.layers) {
            for k in 0..2 {
                total += a[k].jaccard(&b[k]);
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            total / n as f64
        }
    }
}

/// Seeded generator producing one [`TokenActivations`] per generated token.
///
/// The generator models the three statistical properties the paper exploits:
/// power-law popularity (via [`NeuronPopularity`]), token-wise similarity
/// (a per-neuron two-state Markov chain with persistence `ρ`), and
/// layer-wise correlation (each neuron copies its parents' state with
/// probability `layer_coupling`).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    popularity: NeuronPopularity,
    profile: SparsityProfile,
    clusters: ModelClusterProcess,
    rng: SmallRng,
    prev: Option<TokenActivations>,
    tokens_generated: usize,
}

impl TraceGenerator {
    /// Create a generator for `cfg` with the given profile and seed.
    pub fn new(cfg: &ModelConfig, profile: &SparsityProfile, seed: u64) -> Self {
        let popularity = NeuronPopularity::generate(cfg, profile, seed);
        Self::with_popularity(popularity, profile.clone(), seed)
    }

    /// Create a generator reusing an existing popularity structure (useful
    /// for batched sequences that share the model's popularity but evolve
    /// independently).
    pub fn with_popularity(
        popularity: NeuronPopularity,
        profile: SparsityProfile,
        seed: u64,
    ) -> Self {
        let num_layers = popularity.num_layers();
        let attention_neurons = popularity.block(0, Block::Attention).len();
        let mlp_neurons = popularity.block(0, Block::Mlp).len();
        TraceGenerator {
            popularity,
            clusters: ModelClusterProcess::new(
                num_layers,
                attention_neurons,
                mlp_neurons,
                &profile,
            ),
            profile,
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_1234_abcd),
            prev: None,
            tokens_generated: 0,
        }
    }

    /// The popularity structure backing this generator.
    pub fn popularity(&self) -> &NeuronPopularity {
        &self.popularity
    }

    /// Number of tokens generated so far.
    pub fn tokens_generated(&self) -> usize {
        self.tokens_generated
    }

    /// Forget the previous token (models a context switch: token-wise
    /// similarity vanishes, layer-wise correlation remains).
    pub fn reset_context(&mut self) {
        self.prev = None;
        self.clusters.reset();
    }

    /// Generate the activations of the next token.
    pub fn next_token(&mut self) -> TokenActivations {
        let num_layers = self.popularity.num_layers();
        let rho = self.profile.token_persistence;
        let coupling = self.profile.layer_coupling;
        self.clusters.step(&mut self.rng);
        let mut layers: Vec<[Bitset; 2]> = Vec::with_capacity(num_layers);
        for layer in 0..num_layers {
            let mut blocks: Vec<Bitset> = Vec::with_capacity(2);
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let pop = self.popularity.block(layer, block);
                let clusters = self.clusters.block(layer, block);
                let n = pop.len();
                let mut bits = Bitset::new(n);
                for i in 0..n {
                    let p = (pop.prob(i) * clusters.neuron_multiplier(i)).min(0.98);
                    // Temporal (token-wise) draw: two-state Markov chain with
                    // stationary probability p and lag-1 correlation rho.
                    let temporal = match &self.prev {
                        Some(prev) => {
                            let was = prev.block(layer, block).get(i);
                            let pr = if was {
                                p + rho * (1.0 - p)
                            } else {
                                p * (1.0 - rho)
                            };
                            self.rng.gen_bool(pr.clamp(0.0, 1.0))
                        }
                        None => self.rng.gen_bool(p.clamp(0.0, 1.0)),
                    };
                    // Layer-wise coupling: with probability `coupling`, copy
                    // the state of one parent in the previous layer. Parents
                    // share the neuron's popularity rank, so this preserves
                    // the marginal density while creating the strong
                    // layer-to-layer correlation of Fig. 4b.
                    let active = if layer > 0 && self.rng.gen_bool(coupling) {
                        let [pa, pb] = pop.parents(i);
                        let parent = if self.rng.gen_bool(0.5) { pa } else { pb };
                        layers[layer - 1][bi].get(parent as usize)
                    } else {
                        temporal
                    };
                    if active {
                        bits.set(i, true);
                    }
                }
                blocks.push(bits);
            }
            let mlp = blocks.pop().expect("mlp");
            let attn = blocks.pop().expect("attention");
            layers.push([attn, mlp]);
        }
        let tok = TokenActivations { layers };
        self.prev = Some(tok.clone());
        self.tokens_generated += 1;
        tok
    }

    /// Generate a sequence of `n` tokens.
    pub fn generate(&mut self, n: usize) -> Vec<TokenActivations> {
        (0..n).map(|_| self.next_token()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::{ModelConfig, ModelId};

    pub(crate) fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 4;
        cfg.hidden_size = 64;
        cfg.ffn_hidden = 256;
        cfg.num_heads = 8;
        cfg.num_kv_heads = 8;
        cfg
    }

    fn generator(seed: u64) -> TraceGenerator {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        TraceGenerator::new(&cfg, &profile, seed)
    }

    #[test]
    fn token_shapes_match_model() {
        let cfg = tiny_model();
        let mut gen = generator(1);
        let tok = gen.next_token();
        assert_eq!(tok.num_layers(), cfg.num_layers);
        for layer in 0..cfg.num_layers {
            for block in Block::ALL {
                assert_eq!(tok.block(layer, block).len(), cfg.neurons_per_layer(block));
            }
        }
    }

    #[test]
    fn density_roughly_matches_profile() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = generator(2);
        let toks = gen.generate(64);
        let mut active = 0usize;
        let mut total = 0usize;
        for t in &toks {
            for l in 0..cfg.num_layers {
                active += t.active_count(l, Block::Mlp);
                total += cfg.neurons_per_layer(Block::Mlp);
            }
        }
        let density = active as f64 / total as f64;
        assert!(
            (density - profile.mlp_density).abs() < 0.05,
            "measured {density:.3} vs target {:.3}",
            profile.mlp_density
        );
    }

    #[test]
    fn adjacent_tokens_are_more_similar_than_distant() {
        let mut gen = generator(3);
        let toks = gen.generate(40);
        let adjacent: f64 = (0..39)
            .map(|i| toks[i].similarity(&toks[i + 1]))
            .sum::<f64>()
            / 39.0;
        let distant: f64 = (0..10)
            .map(|i| toks[i].similarity(&toks[i + 30]))
            .sum::<f64>()
            / 10.0;
        assert!(
            adjacent > distant + 0.02,
            "adjacent {adjacent:.3} should exceed distant {distant:.3}"
        );
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let mut a = generator(9);
        let mut b = generator(9);
        let ta = a.generate(5);
        let tb = b.generate(5);
        assert_eq!(ta, tb);
        let mut c = generator(10);
        assert_ne!(ta, c.generate(5));
    }

    #[test]
    fn reset_context_breaks_similarity_dependence() {
        let mut gen = generator(4);
        let t0 = gen.next_token();
        gen.reset_context();
        // After a reset, the next token is drawn from the stationary
        // distribution; it should not be identical to the previous token.
        let t1 = gen.next_token();
        assert_ne!(t0, t1);
        assert_eq!(gen.tokens_generated(), 2);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let mut gen = generator(5);
        let t = gen.generate(3);
        let s01 = t[0].similarity(&t[1]);
        let s10 = t[1].similarity(&t[0]);
        assert!((s01 - s10).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&s01));
        assert_eq!(t[2].similarity(&t[2]), 1.0);
    }
}
