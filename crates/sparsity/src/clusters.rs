//! Co-activation clusters: token-dependent activity fluctuations shared by
//! groups of neurons.
//!
//! Real activation traces are not neuron-wise independent: semantically
//! related neurons fire together, which is why a fixed cold-neuron placement
//! leaves some NDP-DIMMs 1.2–2.5× more loaded than others (Section III-C).
//! The cluster process models this with an AR(1) log-normal multiplier shared
//! by each contiguous group of neurons; the multiplier evolves with the same
//! persistence as the token-wise similarity, so adjacent tokens see similar
//! load patterns (the property the window-based remapper exploits).

use rand::Rng;
use serde::{Deserialize, Serialize};

use hermes_model::Block;

use crate::profile::SparsityProfile;

/// Maps a neuron index to its cluster and tracks the per-cluster activity
/// multiplier process for one (layer, block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterProcess {
    neurons: usize,
    cluster_size: usize,
    /// AR(1) latent state per cluster (log scale).
    state: Vec<f64>,
    /// AR(1) coefficient (equal to the profile's token persistence).
    persistence: f64,
    /// Log-scale volatility.
    volatility: f64,
}

impl ClusterProcess {
    /// Create a cluster process for a block with `neurons` neurons.
    pub fn new(neurons: usize, profile: &SparsityProfile) -> Self {
        let clusters = profile.cluster_count.max(1).min(neurons.max(1));
        let cluster_size = neurons.div_ceil(clusters.max(1)).max(1);
        let num_clusters = neurons.div_ceil(cluster_size).max(1);
        ClusterProcess {
            neurons,
            cluster_size,
            state: vec![0.0; num_clusters],
            persistence: profile.token_persistence,
            volatility: profile.cluster_volatility,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.state.len()
    }

    /// Number of neurons covered.
    pub fn num_neurons(&self) -> usize {
        self.neurons
    }

    /// Cluster index of a neuron.
    pub fn cluster_of(&self, neuron: usize) -> usize {
        (neuron / self.cluster_size).min(self.state.len() - 1)
    }

    /// Neuron index range `[start, end)` of a cluster.
    pub fn cluster_range(&self, cluster: usize) -> (usize, usize) {
        let start = cluster * self.cluster_size;
        let end = ((cluster + 1) * self.cluster_size).min(self.neurons);
        (start, end)
    }

    /// Advance the multiplier process by one token.
    pub fn step<R: Rng>(&mut self, rng: &mut R) {
        let rho = self.persistence;
        let innovation_scale = (1.0 - rho * rho).max(0.0).sqrt();
        for z in &mut self.state {
            // Standard normal via Box–Muller on two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            *z = rho * *z + innovation_scale * normal;
        }
    }

    /// Activity multiplier of a cluster at the current token (mean ≈ 1).
    pub fn multiplier(&self, cluster: usize) -> f64 {
        let sigma = self.volatility;
        (sigma * self.state[cluster] - 0.5 * sigma * sigma).exp()
    }

    /// Activity multiplier of the cluster containing `neuron`.
    pub fn neuron_multiplier(&self, neuron: usize) -> f64 {
        self.multiplier(self.cluster_of(neuron))
    }

    /// Reset the process to its stationary mean (used on context switches).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|z| *z = 0.0);
    }
}

/// Cluster processes for every (layer, block) of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelClusterProcess {
    layers: Vec<[ClusterProcess; 2]>,
}

impl ModelClusterProcess {
    /// Build processes for a model: `neuron_counts[block]` per layer.
    pub fn new(
        num_layers: usize,
        attention_neurons: usize,
        mlp_neurons: usize,
        profile: &SparsityProfile,
    ) -> Self {
        let layers = (0..num_layers)
            .map(|_| {
                [
                    ClusterProcess::new(attention_neurons, profile),
                    ClusterProcess::new(mlp_neurons, profile),
                ]
            })
            .collect();
        ModelClusterProcess { layers }
    }

    /// The process of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &ClusterProcess {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    /// Advance every process by one token.
    pub fn step<R: Rng>(&mut self, rng: &mut R) {
        for layer in &mut self.layers {
            layer[0].step(rng);
            layer[1].step(rng);
        }
    }

    /// Reset every process (context switch).
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            layer[0].reset();
            layer[1].reset();
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::{ModelConfig, ModelId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn profile() -> SparsityProfile {
        SparsityProfile::for_model(&ModelConfig::from_id(ModelId::Opt13B))
    }

    #[test]
    fn clusters_partition_neurons() {
        let p = profile();
        let cp = ClusterProcess::new(1000, &p);
        assert!(cp.num_clusters() <= p.cluster_count);
        let mut covered = 0;
        for c in 0..cp.num_clusters() {
            let (s, e) = cp.cluster_range(c);
            assert!(e <= cp.num_neurons());
            covered += e - s;
        }
        assert_eq!(covered, 1000);
        assert_eq!(cp.cluster_of(0), 0);
        assert_eq!(cp.cluster_of(999), cp.num_clusters() - 1);
    }

    #[test]
    fn small_blocks_get_fewer_clusters() {
        let p = profile();
        let cp = ClusterProcess::new(10, &p);
        assert!(cp.num_clusters() <= 10);
        assert!(cp.num_clusters() >= 1);
    }

    #[test]
    fn multipliers_average_near_one() {
        let p = profile();
        let mut cp = ClusterProcess::new(256, &p);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        let mut n = 0;
        for _ in 0..500 {
            cp.step(&mut rng);
            for c in 0..cp.num_clusters() {
                sum += cp.multiplier(c);
                n += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((0.8..1.2).contains(&mean), "mean multiplier {mean}");
    }

    #[test]
    fn multipliers_are_persistent_across_tokens() {
        let p = profile();
        let mut cp = ClusterProcess::new(256, &p);
        let mut rng = SmallRng::seed_from_u64(2);
        // Warm up, then check lag-1 correlation is clearly positive.
        for _ in 0..10 {
            cp.step(&mut rng);
        }
        let mut prev: Vec<f64> = (0..cp.num_clusters()).map(|c| cp.multiplier(c)).collect();
        let mut same_direction = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            cp.step(&mut rng);
            for (c, prev_mult) in prev.iter_mut().enumerate() {
                let cur = cp.multiplier(c);
                if (cur > 1.0) == (*prev_mult > 1.0) {
                    same_direction += 1;
                }
                *prev_mult = cur;
                total += 1;
            }
        }
        let frac = same_direction as f64 / total as f64;
        assert!(frac > 0.6, "persistence too weak: {frac}");
    }

    #[test]
    fn reset_returns_to_unit_multiplier() {
        let p = profile();
        let mut cp = ClusterProcess::new(64, &p);
        let mut rng = SmallRng::seed_from_u64(3);
        cp.step(&mut rng);
        cp.reset();
        for c in 0..cp.num_clusters() {
            let m = cp.multiplier(c);
            // exp(-sigma^2/2) at state 0.
            assert!((m - (-0.5 * p.cluster_volatility.powi(2)).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn model_process_covers_all_layers() {
        let p = profile();
        let mut mp = ModelClusterProcess::new(4, 64, 256, &p);
        assert_eq!(mp.num_layers(), 4);
        let mut rng = SmallRng::seed_from_u64(4);
        mp.step(&mut rng);
        assert_eq!(mp.block(0, Block::Attention).num_neurons(), 64);
        assert_eq!(mp.block(3, Block::Mlp).num_neurons(), 256);
        mp.reset();
    }
}
