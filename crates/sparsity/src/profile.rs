//! Sparsity profiles: the calibrated statistical parameters of activation
//! sparsity for each model/dataset pair.

use serde::{Deserialize, Serialize};
use std::fmt;

use hermes_model::{ActivationKind, ModelConfig};

/// Evaluation datasets referenced by the paper (Fig. 4 and Section V-A3).
///
/// The datasets themselves are not shipped; each variant only selects a
/// slightly different calibration of the synthetic trace generator (adjacent
/// similarity, density), mirroring the spread visible in Fig. 4a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Dataset {
    /// COPA commonsense reasoning (highest token-wise similarity in Fig. 4a).
    Copa,
    /// WikiText-2 language modelling.
    WikiText2,
    /// PIQA physical commonsense.
    Piqa,
    /// ChatGPT-prompts (end-to-end evaluation dataset).
    ChatGptPrompts,
    /// Stanford Alpaca instruction data (end-to-end evaluation dataset).
    Alpaca,
    /// C4 corpus (offline profiling dataset).
    C4,
    /// The Pile (offline profiling dataset).
    Pile,
}

impl Dataset {
    /// All datasets used anywhere in the paper.
    pub const ALL: [Dataset; 7] = [
        Dataset::Copa,
        Dataset::WikiText2,
        Dataset::Piqa,
        Dataset::ChatGptPrompts,
        Dataset::Alpaca,
        Dataset::C4,
        Dataset::Pile,
    ];

    /// Additive adjustment to adjacent-token similarity for this dataset,
    /// reproducing the spread between curves in Fig. 4a.
    pub fn similarity_offset(self) -> f64 {
        match self {
            Dataset::Copa => 0.02,
            Dataset::WikiText2 => 0.0,
            Dataset::Piqa => -0.02,
            Dataset::ChatGptPrompts => 0.0,
            Dataset::Alpaca => 0.01,
            Dataset::C4 => -0.01,
            Dataset::Pile => -0.01,
        }
    }

    /// Name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Copa => "COPA",
            Dataset::WikiText2 => "WikiText2",
            Dataset::Piqa => "PIQA",
            Dataset::ChatGptPrompts => "ChatGPT-prompts",
            Dataset::Alpaca => "Alpaca",
            Dataset::C4 => "C4",
            Dataset::Pile => "Pile",
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Calibrated statistical description of a model's activation sparsity.
///
/// The defaults reproduce the properties the paper reports: 70–90% sparsity,
/// 20% of neurons carrying 80% of activations, ≥90% adjacent-token
/// similarity decaying to ~70% beyond ten tokens, and strong layer-wise
/// correlation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityProfile {
    /// Fraction of attention-block neurons active per token (1 − sparsity).
    pub attention_density: f64,
    /// Fraction of MLP-block neurons active per token (1 − sparsity).
    pub mlp_density: f64,
    /// Fraction of neurons considered "hot" (paper: 0.2).
    pub hot_fraction: f64,
    /// Fraction of total activation mass carried by hot neurons (paper: 0.8).
    pub hot_mass: f64,
    /// Lag-1 temporal persistence of each neuron's activation state; drives
    /// the adjacent-token similarity of Fig. 4a.
    pub token_persistence: f64,
    /// Number of tokens beyond which similarity stops decreasing (Fig. 4a
    /// flattens around 25 tokens).
    pub similarity_window: usize,
    /// Probability that a neuron's state is copied from its parents in the
    /// previous layer instead of its own temporal draw (layer-wise coupling).
    pub layer_coupling: f64,
    /// Number of parent neurons per neuron in the correlation structure.
    pub parents_per_neuron: usize,
    /// Number of co-activation clusters per (layer, block). Neurons within a
    /// cluster share a token-dependent activity multiplier, which is what
    /// produces the 1.2–2.5× load imbalance across NDP-DIMMs that the
    /// window-based remapper (Section IV-D) exists to fix.
    pub cluster_count: usize,
    /// Log-scale volatility of the cluster activity multipliers.
    pub cluster_volatility: f64,
    /// Accuracy loss (fraction) introduced by ReLU-fication, reported by the
    /// paper as < 1%; carried for documentation/reporting only.
    pub relufication_accuracy_loss: f64,
}

impl SparsityProfile {
    /// Profile calibrated for the given model (dataset-independent defaults,
    /// equivalent to WikiText-2).
    pub fn for_model(cfg: &ModelConfig) -> Self {
        let (attention_density, mlp_density, persistence) = match cfg.activation {
            // Native-ReLU OPT models are the sparsest.
            ActivationKind::Relu => (0.45, 0.10, 0.93),
            // ReLU-fied LLaMA2 retains slightly denser activations
            // (~90% adjacent-token similarity in Fig. 4a).
            ActivationKind::SiluRelufied => (0.50, 0.13, 0.94),
            // ReLU-fied Falcon shows the highest token-wise similarity
            // (Fig. 4a: ~95% adjacent similarity).
            ActivationKind::GeluRelufied => (0.48, 0.12, 0.96),
        };
        SparsityProfile {
            attention_density,
            mlp_density,
            hot_fraction: 0.2,
            hot_mass: 0.8,
            token_persistence: persistence,
            similarity_window: 25,
            layer_coupling: 0.30,
            parents_per_neuron: 2,
            cluster_count: 64,
            cluster_volatility: 0.55,
            relufication_accuracy_loss: 0.01,
        }
    }

    /// Profile for a model on a specific dataset (Fig. 4a spread).
    pub fn for_model_on(cfg: &ModelConfig, dataset: Dataset) -> Self {
        let mut p = Self::for_model(cfg);
        p.token_persistence = (p.token_persistence + dataset.similarity_offset()).clamp(0.0, 0.98);
        p
    }

    /// Density (fraction of active neurons) for a block.
    pub fn density(&self, block: hermes_model::Block) -> f64 {
        match block {
            hermes_model::Block::Attention => self.attention_density,
            hermes_model::Block::Mlp => self.mlp_density,
        }
    }

    /// Overall sparsity of the sparsity-eligible weights, weighted by the
    /// neuron counts of each block.
    pub fn overall_sparsity(&self, cfg: &ModelConfig) -> f64 {
        let attn = cfg.neurons_per_layer(hermes_model::Block::Attention) as f64;
        let mlp = cfg.neurons_per_layer(hermes_model::Block::Mlp) as f64;
        let active = attn * self.attention_density + mlp * self.mlp_density;
        1.0 - active / (attn + mlp)
    }

    /// Validate that the profile parameters are internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let unit = |v: f64, name: &str| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be within [0, 1], got {v}"))
            }
        };
        unit(self.attention_density, "attention_density")?;
        unit(self.mlp_density, "mlp_density")?;
        unit(self.hot_fraction, "hot_fraction")?;
        unit(self.hot_mass, "hot_mass")?;
        unit(self.token_persistence, "token_persistence")?;
        unit(self.layer_coupling, "layer_coupling")?;
        if self.hot_fraction > self.hot_mass {
            return Err(format!(
                "hot neurons ({}) cannot carry less mass than their population share ({})",
                self.hot_mass, self.hot_fraction
            ));
        }
        if self.parents_per_neuron == 0 {
            return Err("parents_per_neuron must be at least 1".to_string());
        }
        if self.cluster_count == 0 {
            return Err("cluster_count must be at least 1".to_string());
        }
        if self.cluster_volatility < 0.0 {
            return Err(format!(
                "cluster_volatility must be non-negative, got {}",
                self.cluster_volatility
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::{Block, ModelConfig, ModelId};

    #[test]
    fn default_profiles_are_valid() {
        for id in ModelId::ALL {
            let cfg = ModelConfig::from_id(id);
            SparsityProfile::for_model(&cfg).validate().unwrap();
            for ds in Dataset::ALL {
                SparsityProfile::for_model_on(&cfg, ds).validate().unwrap();
            }
        }
    }

    #[test]
    fn overall_sparsity_in_paper_range() {
        // Paper: activation sparsity ranges from 70% to 90%.
        for id in ModelId::ALL {
            let cfg = ModelConfig::from_id(id);
            let p = SparsityProfile::for_model(&cfg);
            let s = p.overall_sparsity(&cfg);
            assert!((0.70..=0.92).contains(&s), "{id}: sparsity {s:.2}");
        }
    }

    #[test]
    fn falcon_has_highest_persistence() {
        let falcon = SparsityProfile::for_model(&ModelConfig::from_id(ModelId::Falcon40B));
        let llama = SparsityProfile::for_model(&ModelConfig::from_id(ModelId::Llama2_13B));
        assert!(falcon.token_persistence > llama.token_persistence);
    }

    #[test]
    fn dataset_offsets_shift_persistence() {
        let cfg = ModelConfig::from_id(ModelId::Llama2_13B);
        let copa = SparsityProfile::for_model_on(&cfg, Dataset::Copa);
        let piqa = SparsityProfile::for_model_on(&cfg, Dataset::Piqa);
        assert!(copa.token_persistence > piqa.token_persistence);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let cfg = ModelConfig::from_id(ModelId::Opt13B);
        let mut p = SparsityProfile::for_model(&cfg);
        p.mlp_density = 1.5;
        assert!(p.validate().is_err());
        let mut p = SparsityProfile::for_model(&cfg);
        p.hot_fraction = 0.9;
        p.hot_mass = 0.5;
        assert!(p.validate().is_err());
        let mut p = SparsityProfile::for_model(&cfg);
        p.parents_per_neuron = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn density_accessor_matches_fields() {
        let cfg = ModelConfig::from_id(ModelId::Opt13B);
        let p = SparsityProfile::for_model(&cfg);
        assert_eq!(p.density(Block::Attention), p.attention_density);
        assert_eq!(p.density(Block::Mlp), p.mlp_density);
    }
}
