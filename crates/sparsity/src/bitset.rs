//! A compact fixed-size bitset used to store activated-neuron sets.

use serde::{Deserialize, Serialize};

/// A fixed-length bitset backed by `u64` words.
///
/// Used to represent the set of activated neurons of one (layer, block) for
/// one token. The length is fixed at construction; out-of-range accesses
/// panic, which keeps trace-generation bugs loud.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitset {
    len: usize,
    words: Vec<u64>,
}

impl Bitset {
    /// Create an empty bitset able to hold `len` bits.
    pub fn new(len: usize) -> Self {
        Bitset {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits the set can hold.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset holds zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let (w, b) = (idx / 64, idx % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Get bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bits set in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two bitsets have different lengths.
    pub fn intersection_count(&self, other: &Bitset) -> usize {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of bits set in `self` or `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two bitsets have different lengths.
    pub fn union_count(&self, other: &Bitset) -> usize {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two bitsets have different lengths.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Jaccard similarity |A∩B| / |A∪B| with `other` (1.0 when both empty).
    pub fn jaccard(&self, other: &Bitset) -> f64 {
        let union = self.union_count(other);
        if union == 0 {
            1.0
        } else {
            self.intersection_count(other) as f64 / union as f64
        }
    }
}

impl FromIterator<usize> for Bitset {
    /// Build a bitset sized to the maximum index + 1 from set-bit indices.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().max().map_or(0, |m| m + 1);
        let mut bs = Bitset::new(len);
        for i in indices {
            bs.set(i, true);
        }
        bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let mut bs = Bitset::new(130);
        bs.set(0, true);
        bs.set(64, true);
        bs.set(129, true);
        assert!(bs.get(0) && bs.get(64) && bs.get(129));
        assert!(!bs.get(1) && !bs.get(128));
        assert_eq!(bs.count_ones(), 3);
        bs.set(64, false);
        assert_eq!(bs.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut bs = Bitset::new(10);
        bs.set(10, true);
    }

    #[test]
    fn iter_ones_ascending() {
        let bs: Bitset = [3usize, 70, 5, 127].into_iter().collect();
        let ones: Vec<usize> = bs.iter_ones().collect();
        assert_eq!(ones, vec![3, 5, 70, 127]);
    }

    #[test]
    fn jaccard_of_identical_sets_is_one() {
        let bs: Bitset = [1usize, 2, 3].into_iter().collect();
        assert_eq!(bs.jaccard(&bs.clone()), 1.0);
    }

    #[test]
    fn jaccard_of_empty_sets_is_one() {
        let a = Bitset::new(16);
        let b = Bitset::new(16);
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    fn new_bitset_is_all_zero() {
        let bs = Bitset::new(100);
        assert_eq!(bs.len(), 100);
        assert!(!bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
        assert!((0..100).all(|i| !bs.get(i)));
    }

    #[test]
    fn zero_length_bitset_is_empty() {
        let bs = Bitset::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.iter_ones().count(), 0);
    }

    #[test]
    fn from_empty_iterator_is_empty() {
        let bs: Bitset = std::iter::empty::<usize>().collect();
        assert!(bs.is_empty());
        assert_eq!(bs.len(), 0);
    }

    #[test]
    fn clear_resets_all_bits() {
        let mut bs: Bitset = [0usize, 63, 64, 99].into_iter().collect();
        assert_eq!(bs.count_ones(), 4);
        bs.clear();
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.len(), 100, "clear must not change capacity");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bs = Bitset::new(10);
        let _ = bs.get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn intersection_length_mismatch_panics() {
        let a = Bitset::new(8);
        let b = Bitset::new(16);
        let _ = a.intersection_count(&b);
    }

    #[test]
    fn set_is_idempotent() {
        let mut bs = Bitset::new(70);
        bs.set(65, true);
        bs.set(65, true);
        assert_eq!(bs.count_ones(), 1);
        bs.set(65, false);
        bs.set(65, false);
        assert_eq!(bs.count_ones(), 0);
    }

    #[test]
    fn union_with_accumulates() {
        let mut a = Bitset::new(8);
        a.set(1, true);
        let mut b = Bitset::new(8);
        b.set(6, true);
        a.union_with(&b);
        assert_eq!(a.count_ones(), 2);
        assert!(a.get(1) && a.get(6));
    }

    proptest! {
        #[test]
        fn counts_are_consistent(indices in proptest::collection::vec(0usize..512, 0..128)) {
            let mut a = Bitset::new(512);
            let mut b = Bitset::new(512);
            for (i, idx) in indices.iter().enumerate() {
                if i % 2 == 0 { a.set(*idx, true); } else { b.set(*idx, true); }
            }
            let inter = a.intersection_count(&b);
            let union = a.union_count(&b);
            prop_assert_eq!(union + inter, a.count_ones() + b.count_ones());
            prop_assert!(a.jaccard(&b) >= 0.0 && a.jaccard(&b) <= 1.0);
        }

        #[test]
        fn iter_ones_matches_count(indices in proptest::collection::vec(0usize..300, 0..64)) {
            let bs: Bitset = indices.clone().into_iter().collect();
            prop_assert_eq!(bs.iter_ones().count(), bs.count_ones());
        }

        #[test]
        fn union_with_matches_union_count(
            xs in proptest::collection::vec(0usize..256, 0..96),
            ys in proptest::collection::vec(0usize..256, 0..96),
        ) {
            let mut a = Bitset::new(256);
            let mut b = Bitset::new(256);
            for x in &xs { a.set(*x, true); }
            for y in &ys { b.set(*y, true); }
            let expected = a.union_count(&b);
            a.union_with(&b);
            prop_assert_eq!(a.count_ones(), expected);
            // Union is a superset of both operands.
            prop_assert!(b.iter_ones().all(|i| a.get(i)));
            prop_assert_eq!(a.intersection_count(&b), b.count_ones());
        }

        #[test]
        fn iter_ones_is_sorted_and_matches_get(
            indices in proptest::collection::vec(0usize..400, 0..128),
        ) {
            let mut bs = Bitset::new(400);
            for i in &indices { bs.set(*i, true); }
            let ones: Vec<usize> = bs.iter_ones().collect();
            prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(ones.iter().all(|&i| bs.get(i)));
            prop_assert!((0..400).filter(|&i| bs.get(i)).eq(ones.iter().copied()));
        }
    }
}
