//! Statistics over activation traces: the measurements behind Fig. 4, the
//! 20/80 hot/cold observation, and the per-neuron frequencies consumed by
//! the offline partitioner.

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};

use crate::popularity::NeuronPopularity;
use crate::trace::TokenActivations;

/// Observed activation frequency of every neuron over a profiled trace.
///
/// This is the `f_i` input of the offline ILP formulation (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuronFrequencies {
    tokens: usize,
    layers: Vec<[Vec<f64>; 2]>,
}

impl NeuronFrequencies {
    /// Measure frequencies from a trace.
    pub fn measure(trace: &[TokenActivations]) -> Self {
        assert!(!trace.is_empty(), "cannot measure an empty trace");
        let num_layers = trace[0].num_layers();
        let mut layers: Vec<[Vec<f64>; 2]> = (0..num_layers)
            .map(|l| {
                [
                    vec![0.0; trace[0].block(l, Block::Attention).len()],
                    vec![0.0; trace[0].block(l, Block::Mlp).len()],
                ]
            })
            .collect();
        for tok in trace {
            for (l, layer) in layers.iter_mut().enumerate() {
                for (bi, block) in Block::ALL.into_iter().enumerate() {
                    for idx in tok.block(l, block).iter_ones() {
                        layer[bi][idx] += 1.0;
                    }
                }
            }
        }
        let n = trace.len() as f64;
        for layer in &mut layers {
            for blk in layer.iter_mut() {
                for f in blk.iter_mut() {
                    *f /= n;
                }
            }
        }
        NeuronFrequencies {
            tokens: trace.len(),
            layers,
        }
    }

    /// Number of profiled tokens.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Frequencies of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &[f64] {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    /// Frequency of a single neuron.
    pub fn frequency(&self, layer: usize, block: Block, neuron: usize) -> f64 {
        self.block(layer, block)[neuron]
    }

    /// Neuron indices of one (layer, block) sorted by descending frequency.
    pub fn ranked(&self, layer: usize, block: Block) -> Vec<u32> {
        let freqs = self.block(layer, block);
        let mut idx: Vec<u32> = (0..freqs.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            freqs[b as usize]
                .partial_cmp(&freqs[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

/// Mean token-to-token similarity as a function of token distance (Fig. 4a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenSimilarityCurve {
    /// `points[d]` is the mean similarity at distance `d + 1`.
    points: Vec<f64>,
}

impl TokenSimilarityCurve {
    /// Measure the curve from a trace for distances `1..=max_distance`.
    pub fn measure(trace: &[TokenActivations], max_distance: usize) -> Self {
        let mut points = Vec::with_capacity(max_distance);
        for d in 1..=max_distance {
            let mut total = 0.0;
            let mut n = 0usize;
            for i in 0..trace.len().saturating_sub(d) {
                total += trace[i].similarity(&trace[i + d]);
                n += 1;
            }
            points.push(if n == 0 { f64::NAN } else { total / n as f64 });
        }
        TokenSimilarityCurve { points }
    }

    /// Similarity at a given distance (1-based).
    pub fn at(&self, distance: usize) -> f64 {
        self.points[distance - 1]
    }

    /// Maximum measured distance.
    pub fn max_distance(&self) -> usize {
        self.points.len()
    }

    /// All `(distance, similarity)` points.
    pub fn points(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.points.iter().enumerate().map(|(i, &s)| (i + 1, s))
    }
}

/// Layer-wise correlation statistics (Fig. 4b): how strongly the activation
/// of a neuron's parents in the previous layer predicts its own activation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCorrelationStats {
    /// P(neuron active | at least one parent active in previous layer).
    pub conditional_probability: f64,
    /// P(neuron active) unconditional baseline.
    pub baseline_probability: f64,
}

impl LayerCorrelationStats {
    /// Measure correlation for a (layer, block) pair `layer-1 → layer`.
    pub fn measure(
        trace: &[TokenActivations],
        popularity: &NeuronPopularity,
        layer: usize,
        block: Block,
    ) -> Self {
        assert!(layer >= 1, "layer-wise correlation needs a preceding layer");
        let pop = popularity.block(layer, block);
        let mut cond_hits = 0u64;
        let mut cond_total = 0u64;
        let mut base_hits = 0u64;
        let mut base_total = 0u64;
        for tok in trace {
            let cur = tok.block(layer, block);
            let prev = tok.block(layer - 1, block);
            for i in 0..cur.len() {
                let active = cur.get(i);
                base_total += 1;
                base_hits += active as u64;
                let [a, b] = pop.parents(i);
                if prev.get(a as usize) || prev.get(b as usize) {
                    cond_total += 1;
                    cond_hits += active as u64;
                }
            }
        }
        LayerCorrelationStats {
            conditional_probability: if cond_total == 0 {
                0.0
            } else {
                cond_hits as f64 / cond_total as f64
            },
            baseline_probability: if base_total == 0 {
                0.0
            } else {
                base_hits as f64 / base_total as f64
            },
        }
    }

    /// Lift of the conditional probability over the baseline.
    pub fn lift(&self) -> f64 {
        if self.baseline_probability == 0.0 {
            0.0
        } else {
            self.conditional_probability / self.baseline_probability
        }
    }
}

/// The hot/cold observation of Section I: what share of parameters and of
/// computation the most frequently activated neurons account for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotColdCoverage {
    /// Fraction of neurons classified hot (by frequency rank).
    pub hot_fraction: f64,
    /// Share of weight bytes held by hot neurons.
    pub hot_param_share: f64,
    /// Share of activation-weighted computation performed by hot neurons.
    pub hot_compute_share: f64,
    /// Ratio of per-neuron computation intensity, hot vs cold.
    pub intensity_ratio: f64,
}

impl HotColdCoverage {
    /// Measure coverage from per-neuron frequencies, weighting computation by
    /// each neuron's FLOPs-per-activation.
    pub fn measure(cfg: &ModelConfig, freqs: &NeuronFrequencies, hot_fraction: f64) -> Self {
        // Collect (frequency, flops, bytes) for every neuron of the model.
        let mut entries: Vec<(f64, f64, f64)> = Vec::new();
        for layer in 0..freqs.num_layers() {
            for block in Block::ALL {
                let flops = cfg.neuron_flops(block) as f64;
                let bytes = cfg.neuron_weight_bytes(block) as f64;
                for &f in freqs.block(layer, block) {
                    entries.push((f, flops, bytes));
                }
            }
        }
        entries.sort_by(|a, b| (b.0 * b.1).partial_cmp(&(a.0 * a.1)).unwrap());
        let hot_count = ((entries.len() as f64) * hot_fraction).round() as usize;
        let total_compute: f64 = entries.iter().map(|(f, fl, _)| f * fl).sum();
        let total_bytes: f64 = entries.iter().map(|(_, _, b)| *b).sum();
        let hot_compute: f64 = entries[..hot_count].iter().map(|(f, fl, _)| f * fl).sum();
        let hot_bytes: f64 = entries[..hot_count].iter().map(|(_, _, b)| *b).sum();
        let cold_count = entries.len() - hot_count;
        let hot_intensity = if hot_count > 0 {
            hot_compute / hot_count as f64
        } else {
            0.0
        };
        let cold_intensity = if cold_count > 0 {
            (total_compute - hot_compute) / cold_count as f64
        } else {
            f64::INFINITY
        };
        HotColdCoverage {
            hot_fraction,
            hot_param_share: if total_bytes > 0.0 {
                hot_bytes / total_bytes
            } else {
                0.0
            },
            hot_compute_share: if total_compute > 0.0 {
                hot_compute / total_compute
            } else {
                0.0
            },
            intensity_ratio: if cold_intensity > 0.0 {
                hot_intensity / cold_intensity
            } else {
                f64::INFINITY
            },
        }
    }
}

/// Convenience facade computing every statistic the figures need in one pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Token-wise similarity curve (Fig. 4a).
    pub similarity: TokenSimilarityCurve,
    /// Layer-wise correlation averaged over all measurable layers (Fig. 4b).
    pub layer_correlation: LayerCorrelationStats,
    /// Hot/cold coverage at the profile's hot fraction.
    pub coverage: HotColdCoverage,
    /// Per-neuron frequencies.
    pub frequencies: NeuronFrequencies,
}

impl TraceStats {
    /// Compute statistics for a trace of the given model.
    pub fn compute(
        cfg: &ModelConfig,
        popularity: &NeuronPopularity,
        trace: &[TokenActivations],
        hot_fraction: f64,
        max_distance: usize,
    ) -> Self {
        let frequencies = NeuronFrequencies::measure(trace);
        let similarity = TokenSimilarityCurve::measure(trace, max_distance);
        // Average the correlation over the MLP blocks of all layer pairs.
        let num_layers = frequencies.num_layers();
        let mut cond = 0.0;
        let mut base = 0.0;
        let mut n = 0usize;
        for layer in 1..num_layers {
            let s = LayerCorrelationStats::measure(trace, popularity, layer, Block::Mlp);
            cond += s.conditional_probability;
            base += s.baseline_probability;
            n += 1;
        }
        let layer_correlation = LayerCorrelationStats {
            conditional_probability: if n > 0 { cond / n as f64 } else { 0.0 },
            baseline_probability: if n > 0 { base / n as f64 } else { 0.0 },
        };
        let coverage = HotColdCoverage::measure(cfg, &frequencies, hot_fraction);
        TraceStats {
            similarity,
            layer_correlation,
            coverage,
            frequencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SparsityProfile;
    use crate::trace::TraceGenerator;
    use hermes_model::{ModelConfig, ModelId};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 4;
        cfg.hidden_size = 64;
        cfg.ffn_hidden = 256;
        cfg.num_heads = 8;
        cfg.num_kv_heads = 8;
        cfg
    }

    fn setup(tokens: usize) -> (ModelConfig, TraceGenerator, Vec<TokenActivations>) {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 17);
        let trace = gen.generate(tokens);
        (cfg, gen, trace)
    }

    #[test]
    fn frequencies_are_probabilities() {
        let (_, _, trace) = setup(32);
        let f = NeuronFrequencies::measure(&trace);
        assert_eq!(f.tokens(), 32);
        for layer in 0..f.num_layers() {
            for block in Block::ALL {
                for &v in f.block(layer, block) {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn ranked_orders_by_descending_frequency() {
        let (_, _, trace) = setup(32);
        let f = NeuronFrequencies::measure(&trace);
        let ranked = f.ranked(0, Block::Mlp);
        for w in ranked.windows(2) {
            assert!(
                f.frequency(0, Block::Mlp, w[0] as usize)
                    >= f.frequency(0, Block::Mlp, w[1] as usize)
            );
        }
    }

    #[test]
    fn similarity_curve_decreases_then_flattens() {
        let (_, _, trace) = setup(80);
        let curve = TokenSimilarityCurve::measure(&trace, 40);
        assert!(
            curve.at(1) > curve.at(20),
            "adjacent {} vs distant {}",
            curve.at(1),
            curve.at(20)
        );
        // Beyond the window the curve should be nearly flat.
        let tail_delta = (curve.at(30) - curve.at(40)).abs();
        assert!(tail_delta < 0.08, "tail still moving by {tail_delta}");
        assert_eq!(curve.max_distance(), 40);
        assert_eq!(curve.points().count(), 40);
    }

    #[test]
    fn layer_correlation_has_positive_lift() {
        let (cfg, gen, trace) = setup(48);
        let _ = cfg;
        let stats = LayerCorrelationStats::measure(&trace, gen.popularity(), 2, Block::Mlp);
        assert!(stats.conditional_probability > stats.baseline_probability);
        assert!(stats.lift() > 1.2, "lift {}", stats.lift());
    }

    #[test]
    fn hot_neurons_cover_most_compute_with_few_params() {
        let (cfg, _, trace) = setup(48);
        let freqs = NeuronFrequencies::measure(&trace);
        let cov = HotColdCoverage::measure(&cfg, &freqs, 0.2);
        assert!(
            cov.hot_compute_share > 0.5,
            "compute share {}",
            cov.hot_compute_share
        );
        assert!(
            cov.hot_param_share < 0.35,
            "param share {}",
            cov.hot_param_share
        );
        assert!(
            cov.intensity_ratio > 4.0,
            "intensity ratio {}",
            cov.intensity_ratio
        );
    }

    #[test]
    fn trace_stats_facade_is_consistent() {
        let (cfg, gen, trace) = setup(48);
        let profile = SparsityProfile::for_model(&cfg);
        let stats = TraceStats::compute(&cfg, gen.popularity(), &trace, profile.hot_fraction, 10);
        assert_eq!(stats.frequencies.tokens(), 48);
        assert!(stats.layer_correlation.lift() > 1.0);
        assert!(stats.coverage.hot_compute_share > stats.coverage.hot_param_share);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = NeuronFrequencies::measure(&[]);
    }
}
