//! Synthetic activation-sparsity traces for the Hermes NDP-DIMM simulator.
//!
//! The Hermes paper relies on three empirical properties of activation
//! sparsity in ReLU-fied LLMs (Section III-B):
//!
//! 1. **Power-law neuron popularity** — roughly 20% of neurons ("hot")
//!    account for ~80% of activations, the remaining 80% ("cold") for ~20%.
//! 2. **Token-wise similarity** — adjacent tokens activate very similar
//!    neuron sets (≥90% similarity, dropping to ~70% at distance 10 and
//!    flattening beyond a ~25-token window).
//! 3. **Layer-wise correlation** — the activation of a neuron is strongly
//!    predicted by a couple of neurons in the previous layer.
//!
//! Because the real sparse checkpoints and datasets the paper profiles are
//! not available in this environment, this crate generates *synthetic*
//! activation traces whose statistics are calibrated to those published
//! properties. Every Hermes mechanism (predictor, partitioner, remapper)
//! consumes only these statistics, so the synthetic traces exercise the same
//! code paths as profiled ones.
//!
//! # Example
//!
//! ```
//! use hermes_model::{ModelConfig, ModelId};
//! use hermes_sparsity::{SparsityProfile, TraceGenerator};
//!
//! let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
//! let profile = SparsityProfile::for_model(&cfg);
//! let mut gen = TraceGenerator::new(&cfg, &profile, 42);
//! let tok0 = gen.next_token();
//! let tok1 = gen.next_token();
//! let sim = tok0.similarity(&tok1);
//! assert!(sim > 0.7, "adjacent tokens should be similar, got {sim}");
//! ```

pub mod bitset;
pub mod clusters;
pub mod popularity;
pub mod profile;
pub mod stats;
pub mod summary;
pub mod trace;

pub use bitset::Bitset;
pub use clusters::{ClusterProcess, ModelClusterProcess};
pub use popularity::NeuronPopularity;
pub use profile::{Dataset, SparsityProfile};
pub use stats::{
    HotColdCoverage, LayerCorrelationStats, NeuronFrequencies, TokenSimilarityCurve, TraceStats,
};
pub use summary::{BlockActivity, ClusterPopSums, StatisticalActivityModel, TokenActivity};
pub use trace::{TokenActivations, TraceGenerator};
