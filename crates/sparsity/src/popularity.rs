//! Per-neuron activation popularity following the paper's power-law
//! (20% of neurons carry 80% of activations).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};

use crate::profile::SparsityProfile;

/// Activation probabilities for every neuron of one (layer, block), plus the
/// layer-wise correlation structure (parent neurons in the previous layer).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockPopularity {
    /// Activation probability of each neuron (marginal, per token).
    probs: Vec<f32>,
    /// Neuron indices sorted by descending popularity.
    rank_order: Vec<u32>,
    /// For each neuron, the indices of its parent neurons in the previous
    /// layer's same block (empty for layer 0).
    parents: Vec<[u32; 2]>,
}

impl BlockPopularity {
    /// Activation probability of neuron `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i] as f64
    }

    /// All activation probabilities.
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// Neuron indices ordered from most to least popular.
    pub fn rank_order(&self) -> &[u32] {
        &self.rank_order
    }

    /// Parent neurons (previous layer, same block) of neuron `i`.
    pub fn parents(&self, i: usize) -> [u32; 2] {
        self.parents[i]
    }

    /// Number of neurons in this block.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when the block has no neurons.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Expected number of active neurons per token.
    pub fn expected_active(&self) -> f64 {
        self.probs.iter().map(|&p| p as f64).sum()
    }

    /// The `k` most popular neuron indices.
    pub fn top_k(&self, k: usize) -> &[u32] {
        &self.rank_order[..k.min(self.rank_order.len())]
    }
}

/// Popularity and correlation structure for every (layer, block) of a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuronPopularity {
    layers: Vec<[BlockPopularity; 2]>,
}

impl NeuronPopularity {
    /// Build the popularity structure for a model with the given profile.
    ///
    /// The per-rank probabilities follow a truncated Zipf law whose exponent
    /// is chosen so that the top `hot_fraction` of neurons carry `hot_mass`
    /// of the total activation probability; the rank→index assignment is a
    /// per-layer pseudo-random permutation (seeded, deterministic).
    pub fn generate(cfg: &ModelConfig, profile: &SparsityProfile, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(cfg.num_layers);
        let mut prev_rank_orders: Option<[Vec<u32>; 2]> = None;
        for _layer in 0..cfg.num_layers {
            let mut blocks = Vec::with_capacity(2);
            let mut rank_orders: Vec<Vec<u32>> = Vec::with_capacity(2);
            for block in Block::ALL {
                let n = cfg.neurons_per_layer(block);
                let density = profile.density(block);
                let rank_probs =
                    zipf_probabilities(n, density, profile.hot_fraction, profile.hot_mass);
                // Scatter popularity ranks over neuron indices.
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.shuffle(&mut rng);
                let mut probs = vec![0f32; n];
                for (rank, &idx) in order.iter().enumerate() {
                    probs[idx as usize] = rank_probs[rank] as f32;
                }
                // Parents: the neurons holding the same and next popularity
                // rank in the previous layer, which yields the strong
                // layer-wise correlation of Fig. 4b.
                let prev_order: Option<&Vec<u32>> =
                    prev_rank_orders.as_ref().map(|o| match block {
                        Block::Attention => &o[0],
                        Block::Mlp => &o[1],
                    });
                let mut rank_of = vec![0usize; n];
                for (rank, &idx) in order.iter().enumerate() {
                    rank_of[idx as usize] = rank;
                }
                let parents: Vec<[u32; 2]> = (0..n)
                    .map(|idx| match prev_order {
                        Some(prev) => {
                            let rank = rank_of[idx];
                            let p0 = prev[rank % prev.len()];
                            let p1 = prev[(rank + 1) % prev.len()];
                            [p0, p1]
                        }
                        None => [idx as u32, idx as u32],
                    })
                    .collect();
                rank_orders.push(order.clone());
                blocks.push(BlockPopularity {
                    probs,
                    rank_order: order,
                    parents,
                });
            }
            let mlp = blocks.pop().expect("mlp block");
            let attn = blocks.pop().expect("attention block");
            prev_rank_orders = Some([rank_orders[0].clone(), rank_orders[1].clone()]);
            layers.push([attn, mlp]);
        }
        NeuronPopularity { layers }
    }

    /// Popularity of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &BlockPopularity {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Per-rank activation probabilities with mean `density`, where the top
/// `hot_fraction` of ranks carry `hot_mass` of the probability mass
/// (the paper's 20%/80% power-law observation).
///
/// The mass is split between a "hot" and a "cold" rank segment, each decaying
/// mildly with rank; probabilities are capped at 0.98 with the excess spilled
/// to the cold segment, so the mean density is preserved whenever physically
/// possible.
fn zipf_probabilities(n: usize, density: f64, hot_fraction: f64, hot_mass: f64) -> Vec<f64> {
    assert!(n > 0, "block must have at least one neuron");
    const CAP: f64 = 0.98;
    const ALPHA: f64 = 0.25; // mild intra-segment decay
    let total_mass = density * n as f64;
    let hot_n = ((n as f64 * hot_fraction).ceil() as usize).clamp(1, n);
    let cold_n = n - hot_n;
    // Hot segment mass, limited by the cap; the remainder goes to cold ranks.
    let hot_target = (hot_mass * total_mass).min(CAP * hot_n as f64);
    let cold_target = total_mass - hot_target;

    let fill = |len: usize, mass: f64| -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        let mut w: Vec<f64> = (0..len)
            .map(|r| 1.0 / ((r + 1) as f64).powf(ALPHA))
            .collect();
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v = (*v / sum * mass).min(CAP);
        }
        // One redistribution pass to recover mass lost to capping.
        let lost = mass - w.iter().sum::<f64>();
        if lost > 1e-12 {
            let headroom: f64 = w.iter().map(|&v| CAP - v).sum();
            if headroom > 0.0 {
                for v in &mut w {
                    *v += lost * (CAP - *v) / headroom;
                }
            }
        }
        w
    };

    let mut weights = fill(hot_n, hot_target);
    weights.extend(fill(cold_n, cold_target.max(0.0)));
    for w in &mut weights {
        *w = w.clamp(0.0, CAP);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::{ModelConfig, ModelId};
    use proptest::prelude::*;

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 4;
        cfg.hidden_size = 64;
        cfg.ffn_hidden = 256;
        cfg.num_heads = 8;
        cfg.num_kv_heads = 8;
        cfg
    }

    #[test]
    fn zipf_mean_matches_density() {
        let probs = zipf_probabilities(1000, 0.12, 0.2, 0.8);
        let mean = probs.iter().sum::<f64>() / probs.len() as f64;
        assert!((mean - 0.12).abs() < 0.01, "mean {mean}");
        assert!(probs.iter().all(|&p| (0.0..=0.98).contains(&p)));
    }

    #[test]
    fn top_20_percent_carry_about_80_percent() {
        let probs = zipf_probabilities(10_000, 0.12, 0.2, 0.8);
        let mut sorted = probs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let hot: f64 = sorted[..2000].iter().sum();
        let total: f64 = sorted.iter().sum();
        let share = hot / total;
        assert!((0.72..=0.88).contains(&share), "hot share {share:.3}");
    }

    #[test]
    fn popularity_structure_covers_all_layers() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 7);
        assert_eq!(pop.num_layers(), cfg.num_layers);
        for layer in 0..cfg.num_layers {
            for block in Block::ALL {
                let bp = pop.block(layer, block);
                assert_eq!(bp.len(), cfg.neurons_per_layer(block));
                assert!(!bp.is_empty());
                assert!(bp.expected_active() > 0.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let a = NeuronPopularity::generate(&cfg, &profile, 11);
        let b = NeuronPopularity::generate(&cfg, &profile, 11);
        assert_eq!(
            a.block(1, Block::Mlp).probs(),
            b.block(1, Block::Mlp).probs()
        );
        let c = NeuronPopularity::generate(&cfg, &profile, 12);
        assert_ne!(
            a.block(1, Block::Mlp).probs(),
            c.block(1, Block::Mlp).probs()
        );
    }

    #[test]
    fn top_k_returns_most_popular() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 3);
        let bp = pop.block(0, Block::Mlp);
        let top = bp.top_k(10);
        assert_eq!(top.len(), 10);
        let min_top = top
            .iter()
            .map(|&i| bp.prob(i as usize))
            .fold(f64::MAX, f64::min);
        // Every non-top neuron must be no more popular than the least popular
        // top neuron.
        for i in 0..bp.len() {
            if !top.contains(&(i as u32)) {
                assert!(bp.prob(i) <= min_top + 1e-9);
            }
        }
    }

    #[test]
    fn layer0_parents_are_self() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 3);
        assert_eq!(pop.block(0, Block::Attention).parents(5), [5, 5]);
        // Later layers point at valid previous-layer indices.
        let bp = pop.block(2, Block::Mlp);
        let n_prev = pop.block(1, Block::Mlp).len() as u32;
        for i in 0..bp.len() {
            let [a, b] = bp.parents(i);
            assert!(a < n_prev && b < n_prev);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn zipf_probabilities_are_valid(
            n in 10usize..2000,
            density in 0.05f64..0.6,
        ) {
            let probs = zipf_probabilities(n, density, 0.2, 0.8);
            prop_assert_eq!(probs.len(), n);
            prop_assert!(probs.iter().all(|&p| (0.0..=0.981).contains(&p)));
            let mean = probs.iter().sum::<f64>() / n as f64;
            // Mean density preserved unless capping binds hard.
            prop_assert!((mean - density).abs() < 0.05 * density.max(0.1));
        }
    }
}
