//! Fast statistical activity model for large-model end-to-end sweeps.
//!
//! Generating a full per-neuron bitset trace for LLaMA2-70B at batch 16 is
//! needlessly expensive when the inference cost models only consume
//! *activated-neuron counts* per (layer, block) split across devices. This
//! module provides a cluster-granularity model that produces exactly those
//! counts, using the same popularity and cluster-multiplier processes as the
//! full [`crate::TraceGenerator`]; a unit test checks the two paths agree on
//! small models.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};

use crate::clusters::{ClusterProcess, ModelClusterProcess};
use crate::popularity::BlockPopularity;
use crate::profile::SparsityProfile;

/// Per-cluster popularity aggregates of a subset of neurons in one
/// (layer, block): the probability mass and the neuron count per cluster.
///
/// Built once per neuron-to-device assignment, then reused for every token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPopSums {
    /// Sum of activation probabilities of subset neurons, per cluster.
    pub popsum: Vec<f64>,
    /// Number of subset neurons per cluster.
    pub count: Vec<f64>,
}

impl ClusterPopSums {
    /// Aggregate a subset of neurons (given by index) at cluster granularity.
    pub fn from_subset<I>(pop: &BlockPopularity, clusters: &ClusterProcess, subset: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        let mut popsum = vec![0.0; clusters.num_clusters()];
        let mut count = vec![0.0; clusters.num_clusters()];
        for idx in subset {
            let c = clusters.cluster_of(idx as usize);
            popsum[c] += pop.prob(idx as usize);
            count[c] += 1.0;
        }
        ClusterPopSums { popsum, count }
    }

    /// Aggregate every neuron of the block.
    pub fn full(pop: &BlockPopularity, clusters: &ClusterProcess) -> Self {
        Self::from_subset(pop, clusters, 0..pop.len() as u32)
    }

    /// Total probability mass of the subset.
    pub fn total_popsum(&self) -> f64 {
        self.popsum.iter().sum()
    }

    /// Total neuron count of the subset.
    pub fn total_count(&self) -> f64 {
        self.count.iter().sum()
    }
}

/// Activity multipliers of one (layer, block) for the current token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockActivity {
    multipliers: Vec<f64>,
}

impl BlockActivity {
    /// Expected number of activated subset neurons for a single sequence.
    pub fn expected_active(&self, sums: &ClusterPopSums) -> f64 {
        self.multipliers
            .iter()
            .zip(&sums.popsum)
            .zip(&sums.count)
            .map(|((&m, &p), &n)| (p * m).min(n))
            .sum()
    }

    /// Expected number of subset neurons activated by *any* of `batch`
    /// independent sequences (the union that determines weight-loading and
    /// DRAM-read volume for batched inference).
    pub fn expected_union(&self, sums: &ClusterPopSums, batch: usize) -> f64 {
        assert!(batch >= 1, "batch must be at least 1");
        self.multipliers
            .iter()
            .zip(&sums.popsum)
            .zip(&sums.count)
            .map(|((&m, &p), &n)| {
                if n == 0.0 {
                    0.0
                } else {
                    let avg_p = (p * m / n).min(1.0);
                    n * (1.0 - (1.0 - avg_p).powi(batch as i32))
                }
            })
            .sum()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.multipliers.len()
    }

    /// Activity multiplier of one cluster.
    pub fn multiplier(&self, cluster: usize) -> f64 {
        self.multipliers[cluster]
    }
}

/// Cluster activity of every (layer, block) for one generated token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenActivity {
    layers: Vec<[BlockActivity; 2]>,
}

impl TokenActivity {
    /// Activity of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &BlockActivity {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Cluster-granularity activity generator: the fast path used by the
/// end-to-end engines for billion-parameter models.
#[derive(Debug, Clone)]
pub struct StatisticalActivityModel {
    clusters: ModelClusterProcess,
    rng: SmallRng,
    tokens_generated: usize,
}

impl StatisticalActivityModel {
    /// Build the model for a configuration and profile.
    pub fn new(cfg: &ModelConfig, profile: &SparsityProfile, seed: u64) -> Self {
        StatisticalActivityModel {
            clusters: ModelClusterProcess::new(
                cfg.num_layers,
                cfg.neurons_per_layer(Block::Attention),
                cfg.neurons_per_layer(Block::Mlp),
                profile,
            ),
            rng: SmallRng::seed_from_u64(seed ^ 0xac71_71fb_0001),
            tokens_generated: 0,
        }
    }

    /// The underlying cluster processes (for computing [`ClusterPopSums`]).
    pub fn clusters(&self) -> &ModelClusterProcess {
        &self.clusters
    }

    /// Number of tokens generated so far.
    pub fn tokens_generated(&self) -> usize {
        self.tokens_generated
    }

    /// Advance by one token and return the per-block activity multipliers.
    pub fn next_token(&mut self) -> TokenActivity {
        self.clusters.step(&mut self.rng);
        self.tokens_generated += 1;
        let layers = (0..self.clusters.num_layers())
            .map(|l| {
                [
                    BlockActivity {
                        multipliers: (0..self.clusters.block(l, Block::Attention).num_clusters())
                            .map(|c| self.clusters.block(l, Block::Attention).multiplier(c))
                            .collect(),
                    },
                    BlockActivity {
                        multipliers: (0..self.clusters.block(l, Block::Mlp).num_clusters())
                            .map(|c| self.clusters.block(l, Block::Mlp).multiplier(c))
                            .collect(),
                    },
                ]
            })
            .collect();
        TokenActivity { layers }
    }

    /// Reset the cluster state (context switch).
    pub fn reset_context(&mut self) {
        self.clusters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::NeuronPopularity;
    use crate::stats::NeuronFrequencies;
    use crate::trace::TraceGenerator;
    use hermes_model::{ModelConfig, ModelId};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 4;
        cfg.hidden_size = 64;
        cfg.ffn_hidden = 256;
        cfg.num_heads = 8;
        cfg.num_kv_heads = 8;
        cfg
    }

    #[test]
    fn popsums_cover_all_neurons() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 5);
        let model = StatisticalActivityModel::new(&cfg, &profile, 5);
        let bp = pop.block(0, Block::Mlp);
        let cp = model.clusters().block(0, Block::Mlp);
        let sums = ClusterPopSums::full(bp, cp);
        assert!((sums.total_count() - bp.len() as f64).abs() < 1e-9);
        assert!((sums.total_popsum() - bp.expected_active()).abs() < 1e-6);
    }

    #[test]
    fn subset_popsums_partition() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 6);
        let model = StatisticalActivityModel::new(&cfg, &profile, 6);
        let bp = pop.block(1, Block::Mlp);
        let cp = model.clusters().block(1, Block::Mlp);
        let n = bp.len() as u32;
        let a = ClusterPopSums::from_subset(bp, cp, 0..n / 2);
        let b = ClusterPopSums::from_subset(bp, cp, n / 2..n);
        let full = ClusterPopSums::full(bp, cp);
        assert!((a.total_popsum() + b.total_popsum() - full.total_popsum()).abs() < 1e-9);
        assert!((a.total_count() + b.total_count() - full.total_count()).abs() < 1e-9);
    }

    #[test]
    fn expected_active_matches_full_trace() {
        // The statistical path and the full bitset trace must agree on the
        // mean number of activated neurons per token.
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 7);
        let trace = gen.generate(200);
        let freqs = NeuronFrequencies::measure(&trace);
        let measured: f64 = freqs.block(2, Block::Mlp).iter().sum();

        let pop = NeuronPopularity::generate(&cfg, &profile, 7);
        let mut model = StatisticalActivityModel::new(&cfg, &profile, 7);
        let bp = pop.block(2, Block::Mlp);
        let cp = model.clusters().block(2, Block::Mlp);
        let sums = ClusterPopSums::full(bp, cp);
        let mut expected = 0.0;
        let steps = 200;
        for _ in 0..steps {
            let act = model.next_token();
            expected += act.block(2, Block::Mlp).expected_active(&sums);
        }
        expected /= steps as f64;
        let rel = (expected - measured).abs() / measured.max(1.0);
        assert!(
            rel < 0.25,
            "statistical {expected:.1} vs trace {measured:.1}"
        );
    }

    #[test]
    fn union_grows_with_batch_but_sublinearly() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let pop = NeuronPopularity::generate(&cfg, &profile, 9);
        let mut model = StatisticalActivityModel::new(&cfg, &profile, 9);
        let bp = pop.block(0, Block::Mlp);
        let cp = model.clusters().block(0, Block::Mlp);
        let sums = ClusterPopSums::full(bp, cp);
        let act = model.next_token();
        let b1 = act.block(0, Block::Mlp).expected_union(&sums, 1);
        let b4 = act.block(0, Block::Mlp).expected_union(&sums, 4);
        let b16 = act.block(0, Block::Mlp).expected_union(&sums, 16);
        assert!(b4 > b1 && b16 > b4);
        assert!(b4 < 4.0 * b1, "union should be sublinear in batch");
        assert!(b16 <= sums.total_count() + 1e-9);
        let single = act.block(0, Block::Mlp).expected_active(&sums);
        assert!((single - b1).abs() < 1e-9);
    }

    #[test]
    fn statistical_model_is_deterministic() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut a = StatisticalActivityModel::new(&cfg, &profile, 11);
        let mut b = StatisticalActivityModel::new(&cfg, &profile, 11);
        assert_eq!(a.next_token(), b.next_token());
        assert_eq!(a.tokens_generated(), 1);
        a.reset_context();
    }
}
