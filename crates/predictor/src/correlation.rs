//! The neuron correlation table: top-2 correlated predecessors per neuron
//! (Figure 7b), sampled offline from a profiling trace.

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};
use hermes_sparsity::{NeuronFrequencies, TokenActivations};

/// For every neuron, the two neurons of the previous layer whose activation
/// best predicts it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelationTable {
    layers: Vec<[Vec<[u32; 2]>; 2]>,
}

impl CorrelationTable {
    /// Create a table with trivial self-correlations (neuron `i` correlated
    /// with neuron `i` of the previous layer), to be refined by
    /// [`CorrelationTable::sample_from_trace`].
    pub fn new(cfg: &ModelConfig) -> Self {
        let attn = cfg.neurons_per_layer(Block::Attention);
        let mlp = cfg.neurons_per_layer(Block::Mlp);
        CorrelationTable {
            layers: (0..cfg.num_layers)
                .map(|_| {
                    [
                        (0..attn as u32).map(|i| [i, i]).collect(),
                        (0..mlp as u32).map(|i| [i, i]).collect(),
                    ]
                })
                .collect(),
        }
    }

    /// The correlated predecessors of one neuron.
    pub fn parents(&self, layer: usize, block: Block, neuron: usize) -> [u32; 2] {
        match block {
            Block::Attention => self.layers[layer][0][neuron],
            Block::Mlp => self.layers[layer][1][neuron],
        }
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Offline sampling of the correlation table from a profiling trace.
    ///
    /// For each neuron the search considers a candidate window of
    /// `candidate_window` previous-layer neurons around the same activation-
    /// frequency rank (an exhaustive N×N co-activation count would be
    /// prohibitive, and highly-correlated neurons have similar frequency),
    /// then keeps the two candidates with the highest co-activation count.
    pub fn sample_from_trace(&mut self, trace: &[TokenActivations], candidate_window: usize) {
        if trace.is_empty() {
            return;
        }
        let freqs = NeuronFrequencies::measure(trace);
        for layer in 1..self.layers.len() {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let cur_ranked = freqs.ranked(layer, block);
                let prev_ranked = freqs.ranked(layer - 1, block);
                // rank position of each current-layer neuron
                let mut rank_of = vec![0usize; cur_ranked.len()];
                for (r, &idx) in cur_ranked.iter().enumerate() {
                    rank_of[idx as usize] = r;
                }
                let table = &mut self.layers[layer][bi];
                for (neuron, slot) in table.iter_mut().enumerate() {
                    let rank = rank_of[neuron];
                    let lo = rank.saturating_sub(candidate_window / 2);
                    let hi = (lo + candidate_window).min(prev_ranked.len());
                    let lo = hi.saturating_sub(candidate_window);
                    let mut best: [(u32, u32); 2] = [(0, 0), (0, 0)]; // (count, idx)
                    for &cand in &prev_ranked[lo..hi] {
                        let mut count = 0u32;
                        for tok in trace {
                            if tok.block(layer, block).get(neuron)
                                && tok.block(layer - 1, block).get(cand as usize)
                            {
                                count += 1;
                            }
                        }
                        if count > best[0].0 {
                            best[1] = best[0];
                            best[0] = (count, cand);
                        } else if count > best[1].0 {
                            best[1] = (count, cand);
                        }
                    }
                    if best[0].0 > 0 {
                        *slot = [best[0].1, if best[1].0 > 0 { best[1].1 } else { best[0].1 }];
                    }
                }
            }
        }
    }

    /// Storage cost in bytes (two 16-bit indices per neuron, as a compact
    /// hardware table would store them).
    pub fn storage_bytes(&self) -> u64 {
        let neurons: usize = self.layers.iter().map(|l| l[0].len() + l[1].len()).sum();
        (neurons * 2 * 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;
    use hermes_sparsity::{SparsityProfile, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 3;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 96;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    #[test]
    fn default_table_is_identity() {
        let cfg = tiny_model();
        let table = CorrelationTable::new(&cfg);
        assert_eq!(table.parents(1, Block::Mlp, 7), [7, 7]);
        assert_eq!(table.num_layers(), 3);
    }

    #[test]
    fn sampling_improves_over_identity() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 5);
        let trace = gen.generate(48);
        let mut table = CorrelationTable::new(&cfg);
        table.sample_from_trace(&trace, 8);
        // Measure how often a neuron's sampled parents are active when the
        // neuron is active, vs the identity baseline.
        let mut id_table = CorrelationTable::new(&cfg);
        id_table.sample_from_trace(&[], 8); // no-op
        let hit_rate = |t: &CorrelationTable| {
            let mut hits = 0u32;
            let mut total = 0u32;
            for tok in &trace {
                for n in 0..cfg.neurons_per_layer(Block::Mlp) {
                    if tok.block(2, Block::Mlp).get(n) {
                        total += 1;
                        let [a, b] = t.parents(2, Block::Mlp, n);
                        if tok.block(1, Block::Mlp).get(a as usize)
                            || tok.block(1, Block::Mlp).get(b as usize)
                        {
                            hits += 1;
                        }
                    }
                }
            }
            hits as f64 / total.max(1) as f64
        };
        assert!(hit_rate(&table) >= hit_rate(&id_table));
        assert!(hit_rate(&table) > 0.5, "sampled parent hit rate too low");
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let cfg = tiny_model();
        let mut table = CorrelationTable::new(&cfg);
        table.sample_from_trace(&[], 4);
        assert_eq!(table.parents(2, Block::Attention, 3), [3, 3]);
    }

    #[test]
    fn storage_is_small() {
        // Correlation table for LLaMA2-7B should be a few MB at most.
        let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
        let table = CorrelationTable::new(&cfg);
        let mb = table.storage_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 4.0, "correlation table {mb:.1} MB");
    }
}
