//! Accuracy evaluation of the Hermes predictor against a reference trace.

use serde::{Deserialize, Serialize};

use hermes_model::Block;
use hermes_sparsity::TokenActivations;

use crate::predictor::HermesPredictor;

/// Accuracy/recall/precision of a predictor over an evaluation trace, plus
/// its storage footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorEval {
    /// Fraction of neuron activation states predicted correctly.
    pub accuracy: f64,
    /// Fraction of actually-activated neurons that were predicted active
    /// (misses force a fallback load, so recall matters most).
    pub recall: f64,
    /// Fraction of predicted-active neurons that were actually active.
    pub precision: f64,
    /// Number of tokens evaluated.
    pub tokens: usize,
    /// Predictor table storage in bytes.
    pub storage_bytes: u64,
}

impl PredictorEval {
    /// Run the predictor over the trace, updating it after every token
    /// exactly as the online system would, and measure its quality.
    pub fn evaluate(predictor: &mut HermesPredictor, trace: &[TokenActivations]) -> Self {
        let mut correct = 0u64;
        let mut total = 0u64;
        let mut true_pos = 0u64;
        let mut actual_pos = 0u64;
        let mut predicted_pos = 0u64;
        for tok in trace {
            for layer in 0..tok.num_layers() {
                for block in Block::ALL {
                    let actual = tok.block(layer, block);
                    // Layers execute in order, so the actual activations of
                    // the preceding layer are available at prediction time.
                    let prev = if layer > 0 {
                        Some(tok.block(layer - 1, block))
                    } else {
                        None
                    };
                    let pred = &predictor.predict_block(layer, block, prev);
                    for i in 0..actual.len() {
                        let a = actual.get(i);
                        let p = pred.get(i);
                        total += 1;
                        correct += (a == p) as u64;
                        actual_pos += a as u64;
                        predicted_pos += p as u64;
                        true_pos += (a && p) as u64;
                    }
                }
            }
            predictor.observe(tok);
        }
        PredictorEval {
            accuracy: ratio(correct, total),
            recall: ratio(true_pos, actual_pos),
            precision: ratio(true_pos, predicted_pos),
            tokens: trace.len(),
            storage_bytes: predictor.storage_bytes(),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{HermesPredictor, PredictorConfig};
    use hermes_model::{ModelConfig, ModelId};
    use hermes_sparsity::{SparsityProfile, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 3;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 96;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    fn evaluate_with(config: PredictorConfig, seed: u64, tokens: usize) -> PredictorEval {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, seed);
        let prefill = gen.generate(32);
        let mut p = HermesPredictor::new(&cfg, config);
        p.initialize_from_prefill(&prefill);
        p.correlation_mut().sample_from_trace(&prefill, 8);
        let eval_trace = gen.generate(tokens);
        PredictorEval::evaluate(&mut p, &eval_trace)
    }

    #[test]
    fn combined_predictor_is_accurate() {
        let eval = evaluate_with(PredictorConfig::default(), 31, 24);
        assert!(eval.accuracy > 0.85, "accuracy {:.3}", eval.accuracy);
        assert!(eval.recall > 0.6, "recall {:.3}", eval.recall);
        assert!(eval.precision > 0.5, "precision {:.3}", eval.precision);
        assert_eq!(eval.tokens, 24);
        assert!(eval.storage_bytes > 0);
    }

    #[test]
    fn combined_beats_or_matches_single_component() {
        let combined = evaluate_with(PredictorConfig::default(), 33, 24);
        let token_only = evaluate_with(PredictorConfig::token_only(), 33, 24);
        // The combined predictor should not be worse than token-wise alone.
        assert!(combined.accuracy + 1e-9 >= token_only.accuracy - 0.02);
    }

    #[test]
    fn metrics_are_probabilities() {
        let eval = evaluate_with(PredictorConfig::layer_only(), 35, 12);
        for v in [eval.accuracy, eval.recall, eval.precision] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn empty_trace_gives_perfect_scores() {
        let cfg = tiny_model();
        let mut p = HermesPredictor::new(&cfg, PredictorConfig::default());
        let eval = PredictorEval::evaluate(&mut p, &[]);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.tokens, 0);
    }
}
