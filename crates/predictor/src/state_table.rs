//! The neuron state table: 4-bit saturating counters exploiting token-wise
//! similarity (Figure 7a).

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};
use hermes_sparsity::{NeuronFrequencies, TokenActivations};

/// Maximum state value (4-bit counter).
pub const MAX_STATE: u8 = 15;

/// A table of 4-bit states, one per neuron, for every (layer, block).
///
/// States start from the prefill-stage activation frequency (quantised into
/// 16 stages) and are updated after every generated token: `+s` when the
/// neuron was activated (the paper uses `s = 4`), `−1` when it was not,
/// saturating at `[0, 15]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuronStateTable {
    increment: u8,
    layers: Vec<[Vec<u8>; 2]>,
}

impl NeuronStateTable {
    /// Create a table for the given model with every state at zero.
    pub fn new(cfg: &ModelConfig, increment: u8) -> Self {
        let attn = cfg.neurons_per_layer(Block::Attention);
        let mlp = cfg.neurons_per_layer(Block::Mlp);
        NeuronStateTable {
            increment,
            layers: (0..cfg.num_layers)
                .map(|_| [vec![0u8; attn], vec![0u8; mlp]])
                .collect(),
        }
    }

    /// Initialise states from prefill-stage activation frequencies: the
    /// frequency range [0, 1] is divided into 16 stages (a neuron active in
    /// more than 90% of prefill tokens starts at 15, below 2% at 0).
    pub fn initialize_from_frequencies(&mut self, freqs: &NeuronFrequencies) {
        for (layer, blocks) in self.layers.iter_mut().enumerate() {
            for (bi, block) in Block::ALL.into_iter().enumerate() {
                let f = freqs.block(layer, block);
                for (i, state) in blocks[bi].iter_mut().enumerate() {
                    *state = Self::quantize_frequency(f[i]);
                }
            }
        }
    }

    /// Map an activation frequency to its initial 4-bit stage.
    pub fn quantize_frequency(freq: f64) -> u8 {
        if freq >= 0.9 {
            MAX_STATE
        } else if freq < 0.02 {
            0
        } else {
            // Linear staging between the two extremes.
            (1.0 + (freq - 0.02) / (0.9 - 0.02) * 14.0).floor() as u8
        }
    }

    /// State of one neuron.
    pub fn state(&self, layer: usize, block: Block, neuron: usize) -> u8 {
        self.block(layer, block)[neuron]
    }

    /// All states of one (layer, block).
    pub fn block(&self, layer: usize, block: Block) -> &[u8] {
        match block {
            Block::Attention => &self.layers[layer][0],
            Block::Mlp => &self.layers[layer][1],
        }
    }

    fn block_mut(&mut self, layer: usize, block: Block) -> &mut [u8] {
        match block {
            Block::Attention => &mut self.layers[layer][0],
            Block::Mlp => &mut self.layers[layer][1],
        }
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Update every state from the actually-activated neurons of one token.
    pub fn update(&mut self, token: &TokenActivations) {
        let inc = self.increment;
        for layer in 0..self.layers.len() {
            for block in Block::ALL {
                let bits = token.block(layer, block);
                let states = self.block_mut(layer, block);
                for (i, s) in states.iter_mut().enumerate() {
                    if bits.get(i) {
                        *s = (*s).saturating_add(inc).min(MAX_STATE);
                    } else {
                        *s = s.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Storage cost of the table in bytes: 4 bits per neuron (the paper
    /// reports 232 KB for LLaMA-7B).
    pub fn storage_bytes(&self) -> u64 {
        let neurons: usize = self.layers.iter().map(|l| l[0].len() + l[1].len()).sum();
        neurons.div_ceil(2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;
    use hermes_sparsity::{SparsityProfile, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 3;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 96;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    #[test]
    fn quantization_boundaries_match_paper() {
        assert_eq!(NeuronStateTable::quantize_frequency(0.95), 15);
        assert_eq!(NeuronStateTable::quantize_frequency(0.9), 15);
        assert_eq!(NeuronStateTable::quantize_frequency(0.01), 0);
        let mid = NeuronStateTable::quantize_frequency(0.5);
        assert!((1..15).contains(&mid));
        // Monotone in frequency.
        assert!(
            NeuronStateTable::quantize_frequency(0.7) >= NeuronStateTable::quantize_frequency(0.3)
        );
    }

    #[test]
    fn update_follows_fsm_rules() {
        // Paper example (Fig. 7a): an activated neuron goes 7 → 11, an
        // inactive one goes 10 → 9.
        let cfg = tiny_model();
        let mut table = NeuronStateTable::new(&cfg, 4);
        table.block_mut(0, Block::Mlp)[6] = 7;
        table.block_mut(0, Block::Mlp)[5] = 10;
        // Build a token where MLP neuron 6 of layer 0 is active, neuron 5 not.
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 1);
        let mut tok = gen.next_token();
        // Force the bits we care about via a fresh bitset copy.
        // (TokenActivations is immutable; emulate by updating from a token
        //  whose bit 6 we know: easier to manipulate states directly.)
        let was6 = tok.block(0, Block::Mlp).get(6);
        let was5 = tok.block(0, Block::Mlp).get(5);
        table.update(&tok);
        let s6 = table.state(0, Block::Mlp, 6);
        let s5 = table.state(0, Block::Mlp, 5);
        assert_eq!(s6, if was6 { 11 } else { 6 });
        assert_eq!(s5, if was5 { 14 } else { 9 });
        let _ = &mut tok;
    }

    #[test]
    fn states_saturate() {
        let cfg = tiny_model();
        let mut table = NeuronStateTable::new(&cfg, 4);
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 2);
        for _ in 0..40 {
            table.update(&gen.next_token());
        }
        for layer in 0..cfg.num_layers {
            for block in Block::ALL {
                for &s in table.block(layer, block) {
                    assert!(s <= MAX_STATE);
                }
            }
        }
    }

    #[test]
    fn initialization_reflects_frequencies() {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 3);
        let trace = gen.generate(32);
        let freqs = hermes_sparsity::NeuronFrequencies::measure(&trace);
        let mut table = NeuronStateTable::new(&cfg, 4);
        table.initialize_from_frequencies(&freqs);
        // The most frequent neuron should start with a higher state than the
        // least frequent one.
        let ranked = freqs.ranked(0, Block::Mlp);
        let hot = *ranked.first().unwrap() as usize;
        let cold = *ranked.last().unwrap() as usize;
        assert!(table.state(0, Block::Mlp, hot) >= table.state(0, Block::Mlp, cold));
    }

    #[test]
    fn storage_matches_paper_for_llama7b() {
        // Paper: the state table of LLaMA-7B costs 232 KB (4 bits per neuron,
        // 32 layers × (4K attention + 10.5K MLP) neurons).
        let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
        let table = NeuronStateTable::new(&cfg, 4);
        let kb = table.storage_bytes() as f64 / 1024.0;
        assert!((220.0..=245.0).contains(&kb), "state table {kb:.0} KB");
    }
}
