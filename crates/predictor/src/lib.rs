//! The lightweight neuron-activity predictor of Hermes (Section IV-C).
//!
//! Instead of the MLP-based predictors used by Deja Vu / PowerInfer (which
//! cost gigabytes of storage and 10–25% of runtime), Hermes predicts which
//! neurons the next token will activate with two tiny tables:
//!
//! * a **neuron state table** — a 4-bit saturating counter per neuron,
//!   incremented by 4 when the neuron is activated and decremented by 1 when
//!   it is not (a branch-predictor-style exploitation of token-wise
//!   similarity),
//! * a **neuron correlation table** — the top-2 correlated neurons of the
//!   previous layer, sampled offline (layer-wise correlation).
//!
//! A neuron is predicted active when `s1 + λ·s2 > T` with `λ = 6`, `T = 15`,
//! and considered *hot* (GPU-resident) when its state exceeds `Th = 10`.
//!
//! # Example
//!
//! ```
//! use hermes_model::{ModelConfig, ModelId};
//! use hermes_sparsity::{SparsityProfile, TraceGenerator};
//! use hermes_predictor::{HermesPredictor, PredictorConfig};
//!
//! let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
//! cfg.num_layers = 2;
//! cfg.hidden_size = 64;
//! cfg.ffn_hidden = 128;
//! cfg.num_heads = 8;
//! cfg.num_kv_heads = 8;
//! let profile = SparsityProfile::for_model(&cfg);
//! let mut gen = TraceGenerator::new(&cfg, &profile, 1);
//! let prefill = gen.generate(16);
//! let mut predictor = HermesPredictor::new(&cfg, PredictorConfig::default());
//! predictor.initialize_from_prefill(&prefill);
//! predictor.correlation_mut().sample_from_trace(&prefill, 8);
//! let tok = gen.next_token();
//! let eval = hermes_predictor::PredictorEval::evaluate(&mut predictor, &[tok]);
//! assert!(eval.accuracy > 0.5);
//! ```

pub mod correlation;
pub mod eval;
pub mod mlp_baseline;
pub mod predictor;
pub mod state_table;

pub use correlation::CorrelationTable;
pub use eval::PredictorEval;
pub use mlp_baseline::MlpPredictorModel;
pub use predictor::{HermesPredictor, PredictorConfig};
pub use state_table::NeuronStateTable;
