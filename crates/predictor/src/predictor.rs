//! The combined token-wise + layer-wise predictor (Section IV-C1).

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};
use hermes_sparsity::{Bitset, NeuronFrequencies, TokenActivations};

use crate::correlation::CorrelationTable;
use crate::state_table::NeuronStateTable;

/// Tunable parameters of the Hermes predictor (paper defaults: s = 4, λ = 6,
/// T = 15, Th = 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// State increment on activation.
    pub increment: u8,
    /// Weight λ of the layer-wise term.
    pub lambda: f64,
    /// Activation prediction threshold T: predict active when
    /// `s1 + λ·s2 > T`.
    pub threshold: f64,
    /// Fallback threshold used when no previous-layer information exists
    /// (layer 0, or the layer-wise component disabled): predict active when
    /// `s1 > token_only_threshold`.
    pub token_only_threshold: f64,
    /// Hotness threshold Th: a neuron whose state exceeds this is treated as
    /// hot (GPU-resident).
    pub hot_threshold: u8,
    /// Use the token-wise (state table) component.
    pub use_token_wise: bool,
    /// Use the layer-wise (correlation table) component.
    pub use_layer_wise: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            increment: 4,
            lambda: 6.0,
            threshold: 15.0,
            token_only_threshold: 9.0,
            hot_threshold: 10,
            use_token_wise: true,
            use_layer_wise: true,
        }
    }
}

impl PredictorConfig {
    /// Token-wise prediction only (the Hermes-token-adjustment ablation).
    pub fn token_only() -> Self {
        PredictorConfig {
            use_layer_wise: false,
            ..Default::default()
        }
    }

    /// Layer-wise prediction only (the Hermes-layer-adjustment ablation).
    pub fn layer_only() -> Self {
        PredictorConfig {
            use_token_wise: false,
            // Without the state term, require at least one correlated parent.
            threshold: 5.0,
            ..Default::default()
        }
    }
}

/// The lightweight Hermes predictor: neuron state table + correlation table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HermesPredictor {
    config: PredictorConfig,
    states: NeuronStateTable,
    correlation: CorrelationTable,
}

impl HermesPredictor {
    /// Create a predictor for a model.
    pub fn new(cfg: &ModelConfig, config: PredictorConfig) -> Self {
        HermesPredictor {
            states: NeuronStateTable::new(cfg, config.increment),
            correlation: CorrelationTable::new(cfg),
            config,
        }
    }

    /// The predictor parameters.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// The neuron state table.
    pub fn states(&self) -> &NeuronStateTable {
        &self.states
    }

    /// The correlation table.
    pub fn correlation(&self) -> &CorrelationTable {
        &self.correlation
    }

    /// Mutable access to the correlation table (for offline sampling).
    pub fn correlation_mut(&mut self) -> &mut CorrelationTable {
        &mut self.correlation
    }

    /// Initialise the state table from prefill-stage activations.
    pub fn initialize_from_prefill(&mut self, prefill: &[TokenActivations]) {
        if prefill.is_empty() {
            return;
        }
        let freqs = NeuronFrequencies::measure(prefill);
        self.states.initialize_from_frequencies(&freqs);
    }

    /// Predict the activated neurons of one (layer, block) for the upcoming
    /// token, given the *observed* activations of the previous layer of the
    /// same token.
    ///
    /// In the Hermes workflow layers execute in order, so when layer `l` is
    /// about to be scheduled the actual activations of layer `l − 1` are
    /// already known and feed the layer-wise term. For layer 0 (or when the
    /// layer-wise component is disabled) only the state table is consulted,
    /// with the `token_only_threshold` fallback rule.
    pub fn predict_block(
        &self,
        layer: usize,
        block: Block,
        prev_layer_active: Option<&Bitset>,
    ) -> Bitset {
        let states = self.states.block(layer, block);
        let mut out = Bitset::new(states.len());
        let layer_wise_available =
            self.config.use_layer_wise && layer > 0 && prev_layer_active.is_some();
        for (i, &s) in states.iter().enumerate() {
            let s1 = if self.config.use_token_wise {
                s as f64
            } else {
                0.0
            };
            let active = if layer_wise_available {
                let prev = prev_layer_active.expect("checked above");
                let [a, b] = self.correlation.parents(layer, block, i);
                let mut s2 = 0.0;
                if prev.get(a as usize) {
                    s2 += 1.0;
                }
                if prev.get(b as usize) && b != a {
                    s2 += 1.0;
                }
                s1 + self.config.lambda * s2 > self.config.threshold
            } else if self.config.use_token_wise {
                s1 > self.config.token_only_threshold
            } else {
                false
            };
            if active {
                out.set(i, true);
            }
        }
        out
    }

    /// Predict the activated neurons of every (layer, block) of the next
    /// token, feeding each layer the *predicted* activations of the previous
    /// layer (the information available before the token is computed).
    pub fn predict_token(&self) -> Vec<[Bitset; 2]> {
        let mut result: Vec<[Bitset; 2]> = Vec::with_capacity(self.states.num_layers());
        for layer in 0..self.states.num_layers() {
            let prev_attn = if layer > 0 {
                Some(result[layer - 1][0].clone())
            } else {
                None
            };
            let prev_mlp = if layer > 0 {
                Some(result[layer - 1][1].clone())
            } else {
                None
            };
            let attn = self.predict_block(layer, Block::Attention, prev_attn.as_ref());
            let mlp = self.predict_block(layer, Block::Mlp, prev_mlp.as_ref());
            result.push([attn, mlp]);
        }
        result
    }

    /// Whether a neuron is currently considered hot (state above Th).
    pub fn is_hot(&self, layer: usize, block: Block, neuron: usize) -> bool {
        self.states.state(layer, block, neuron) > self.config.hot_threshold
    }

    /// The hot-neuron set of one (layer, block).
    pub fn hot_set(&self, layer: usize, block: Block) -> Bitset {
        let states = self.states.block(layer, block);
        let mut out = Bitset::new(states.len());
        for (i, &s) in states.iter().enumerate() {
            if s > self.config.hot_threshold {
                out.set(i, true);
            }
        }
        out
    }

    /// Update the predictor with the actually-observed activations of the
    /// token that was just generated.
    pub fn observe(&mut self, token: &TokenActivations) {
        self.states.update(token);
    }

    /// Total storage of the predictor tables in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.states.storage_bytes() + self.correlation.storage_bytes()
    }

    /// Per-token prediction cost in table lookups (each neuron consults its
    /// state and two correlation entries); used by the engine cost model to
    /// account for the <0.1% runtime overhead the paper reports.
    pub fn lookups_per_token(&self) -> u64 {
        let mut neurons = 0u64;
        for layer in 0..self.states.num_layers() {
            for block in Block::ALL {
                neurons += self.states.block(layer, block).len() as u64;
            }
        }
        neurons * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;
    use hermes_sparsity::{SparsityProfile, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        let mut cfg = ModelConfig::from_id(ModelId::Opt13B);
        cfg.num_layers = 3;
        cfg.hidden_size = 32;
        cfg.ffn_hidden = 96;
        cfg.num_heads = 4;
        cfg.num_kv_heads = 4;
        cfg
    }

    fn trained_predictor(seed: u64) -> (ModelConfig, TraceGenerator, HermesPredictor) {
        let cfg = tiny_model();
        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, seed);
        let prefill = gen.generate(32);
        let mut p = HermesPredictor::new(&cfg, PredictorConfig::default());
        p.initialize_from_prefill(&prefill);
        p.correlation_mut().sample_from_trace(&prefill, 8);
        (cfg, gen, p)
    }

    #[test]
    fn default_config_matches_paper() {
        let c = PredictorConfig::default();
        assert_eq!(c.increment, 4);
        assert_eq!(c.lambda, 6.0);
        assert_eq!(c.threshold, 15.0);
        assert_eq!(c.hot_threshold, 10);
    }

    #[test]
    fn prediction_beats_chance() {
        let (_cfg, mut gen, mut p) = trained_predictor(21);
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..16 {
            let tok = gen.next_token();
            let predicted = p.predict_token();
            for (layer, pred_layer) in predicted.iter().enumerate() {
                for (bi, block) in Block::ALL.into_iter().enumerate() {
                    let actual = tok.block(layer, block);
                    let pred = &pred_layer[bi];
                    for i in 0..actual.len() {
                        if pred.get(i) == actual.get(i) {
                            correct += 1;
                        }
                        total += 1;
                    }
                }
            }
            p.observe(&tok);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "prediction accuracy {acc:.3}");
    }

    #[test]
    fn hot_set_tracks_state_threshold() {
        let (_, mut gen, mut p) = trained_predictor(22);
        for _ in 0..8 {
            p.observe(&gen.next_token());
        }
        let hot = p.hot_set(1, Block::Mlp);
        for i in 0..hot.len() {
            assert_eq!(hot.get(i), p.is_hot(1, Block::Mlp, i));
        }
    }

    #[test]
    fn ablation_configs_disable_components() {
        let cfg = tiny_model();
        let token_only = HermesPredictor::new(&cfg, PredictorConfig::token_only());
        assert!(!token_only.config().use_layer_wise);
        let layer_only = HermesPredictor::new(&cfg, PredictorConfig::layer_only());
        assert!(!layer_only.config().use_token_wise);
    }

    #[test]
    fn layer_wise_term_can_activate_low_state_neurons() {
        let cfg = tiny_model();
        let mut p = HermesPredictor::new(&cfg, PredictorConfig::default());
        // With zero states everywhere, a neuron whose two (distinct) parents
        // are active gets s1 + λ·s2 = 0 + 12 < 15 → still inactive; but with
        // a modest state of 4 it crosses the threshold.
        let n = cfg.neurons_per_layer(Block::Mlp);
        let mut prev = Bitset::new(n);
        let [a, b] = p.correlation().parents(1, Block::Mlp, 0);
        prev.set(a as usize, true);
        if b != a {
            prev.set(b as usize, true);
        }
        let before = p.predict_block(1, Block::Mlp, Some(&prev));
        assert!(!before.get(0));
        //

        let profile = SparsityProfile::for_model(&cfg);
        let mut gen = TraceGenerator::new(&cfg, &profile, 3);
        // Raise states by observing a few tokens, then the combined rule can
        // activate neurons whose parents fire.
        for _ in 0..4 {
            p.observe(&gen.next_token());
        }
        let after = p.predict_block(1, Block::Mlp, Some(&prev));
        assert!(after.count_ones() >= before.count_ones());
    }

    #[test]
    fn storage_is_under_a_few_mb_for_llama7b() {
        let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
        let p = HermesPredictor::new(&cfg, PredictorConfig::default());
        let mb = p.storage_bytes() as f64 / (1024.0 * 1024.0);
        // Orders of magnitude below the ~2 GB MLP predictors need.
        assert!(mb < 4.0, "predictor storage {mb:.2} MB");
        assert!(p.lookups_per_token() > 0);
    }
}
