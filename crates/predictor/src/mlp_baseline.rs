//! Cost model of the MLP-based predictors used by Deja Vu / PowerInfer,
//! kept as the baseline the lightweight Hermes predictor is compared against.

use serde::{Deserialize, Serialize};

use hermes_model::{Block, ModelConfig};

/// Analytical cost model of a per-layer MLP predictor (Deja Vu style):
/// each transformer layer carries a two-layer MLP that maps the hidden state
/// to per-neuron activation logits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpPredictorModel {
    /// Hidden (bottleneck) dimension of the predictor MLP.
    pub predictor_rank: usize,
    /// Bytes per weight element.
    pub dtype_bytes: u64,
    /// Classification accuracy of the MLP predictor (high, but paid for with
    /// storage and compute).
    pub accuracy: f64,
}

impl Default for MlpPredictorModel {
    fn default() -> Self {
        MlpPredictorModel {
            predictor_rank: 1024,
            dtype_bytes: 2,
            accuracy: 0.99,
        }
    }
}

impl MlpPredictorModel {
    /// Storage of the predictors for all layers of a model, in bytes.
    ///
    /// Per layer there is one predictor for the attention block
    /// (hidden → rank → attention neurons) and one for the MLP block
    /// (hidden → rank → MLP neurons).
    pub fn storage_bytes(&self, cfg: &ModelConfig) -> u64 {
        let h = cfg.hidden_size as u64;
        let r = self.predictor_rank as u64;
        let attn = cfg.neurons_per_layer(Block::Attention) as u64;
        let mlp = cfg.neurons_per_layer(Block::Mlp) as u64;
        let per_layer = h * r + r * attn + h * r + r * mlp;
        per_layer * cfg.num_layers as u64 * self.dtype_bytes
    }

    /// FLOPs the predictor adds per generated token.
    pub fn flops_per_token(&self, cfg: &ModelConfig) -> u64 {
        // 2 FLOPs per weight element, weights touched once per token.
        2 * self.storage_bytes(cfg) / self.dtype_bytes
    }

    /// Fraction of a dense token-generation pass the predictor adds, assuming
    /// both are bandwidth-bound (bytes touched / model bytes). The paper
    /// reports 10–25% runtime overhead.
    pub fn runtime_overhead_fraction(&self, cfg: &ModelConfig) -> f64 {
        self.storage_bytes(cfg) as f64 / cfg.total_param_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    #[test]
    fn llama7b_predictor_costs_gigabytes() {
        // Paper: MLP predictors for LLaMA-7B require an extra ~2 GB.
        let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
        let gb = MlpPredictorModel::default().storage_bytes(&cfg) as f64 / 1e9;
        assert!((1.0..4.0).contains(&gb), "MLP predictor storage {gb:.2} GB");
    }

    #[test]
    fn runtime_overhead_matches_paper_range() {
        // Paper: 10–25% inference runtime overhead.
        for id in [ModelId::Llama2_7B, ModelId::Llama2_13B, ModelId::Opt13B] {
            let cfg = ModelConfig::from_id(id);
            let frac = MlpPredictorModel::default().runtime_overhead_fraction(&cfg);
            assert!((0.05..0.3).contains(&frac), "{id}: overhead {frac:.3}");
        }
    }

    #[test]
    fn flops_track_storage() {
        let cfg = ModelConfig::from_id(ModelId::Opt13B);
        let m = MlpPredictorModel::default();
        assert_eq!(m.flops_per_token(&cfg), m.storage_bytes(&cfg));
    }

    #[test]
    fn larger_rank_costs_more() {
        let cfg = ModelConfig::from_id(ModelId::Opt13B);
        let small = MlpPredictorModel {
            predictor_rank: 512,
            ..Default::default()
        };
        let large = MlpPredictorModel {
            predictor_rank: 2048,
            ..Default::default()
        };
        assert!(large.storage_bytes(&cfg) > small.storage_bytes(&cfg));
    }
}
