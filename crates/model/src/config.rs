//! Model identifiers and architecture hyper-parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::layer::{Block, LayerShape};
use crate::memory::MemoryFootprint;
use crate::FP16_BYTES;

/// The models evaluated in the Hermes paper (Section V-A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModelId {
    /// OPT-13B (native ReLU activations).
    Opt13B,
    /// OPT-30B (native ReLU activations).
    Opt30B,
    /// OPT-66B (native ReLU activations).
    Opt66B,
    /// LLaMA2-7B (ReLU-fied variant, used for predictor sizing in §IV-C).
    Llama2_7B,
    /// LLaMA2-13B (ReLU-fied variant).
    Llama2_13B,
    /// LLaMA2-70B (ReLU-fied variant, grouped-query attention).
    Llama2_70B,
    /// Falcon-40B (ReLU-fied variant, grouped-query attention).
    Falcon40B,
}

impl ModelId {
    /// Every model identifier, in the order the paper lists them.
    pub const ALL: [ModelId; 7] = [
        ModelId::Opt13B,
        ModelId::Opt30B,
        ModelId::Opt66B,
        ModelId::Llama2_7B,
        ModelId::Llama2_13B,
        ModelId::Llama2_70B,
        ModelId::Falcon40B,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Opt13B => "OPT-13B",
            ModelId::Opt30B => "OPT-30B",
            ModelId::Opt66B => "OPT-66B",
            ModelId::Llama2_7B => "LLaMA2-7B",
            ModelId::Llama2_13B => "LLaMA2-13B",
            ModelId::Llama2_70B => "LLaMA2-70B",
            ModelId::Falcon40B => "Falcon-40B",
        }
    }

    /// Whether FlexGen / Deja Vu support this model (they are restricted to
    /// the OPT family, per Section V-A2).
    pub fn is_opt_family(self) -> bool {
        matches!(self, ModelId::Opt13B | ModelId::Opt30B | ModelId::Opt66B)
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Activation function in the MLP block.
///
/// The paper replaces SiLU/GELU with ReLU (Figure 3c) to expose activation
/// sparsity; the simulator keeps track of the original function so the
/// sparsity profile can record the "ReLU-fied" substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Native ReLU (OPT family).
    Relu,
    /// SiLU replaced by ReLU (LLaMA2 family, per ProSparse/ReLU-strikes-back).
    SiluRelufied,
    /// GELU replaced by ReLU (Falcon family).
    GeluRelufied,
}

impl ActivationKind {
    /// True when the model exposes activation sparsity usable by Hermes.
    /// After ReLU-fication every evaluated model does.
    pub fn is_sparse(self) -> bool {
        true
    }
}

/// Architecture hyper-parameters of a transformer LLM.
///
/// All sizes follow the public model cards; derived quantities (neuron
/// counts, bytes, FLOPs) are computed from these fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which model this configuration describes.
    pub id: ModelId,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden_size: usize,
    /// MLP intermediate dimension (FFN width).
    pub ffn_hidden: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Number of key/value heads (grouped-query attention when < num_heads).
    pub num_kv_heads: usize,
    /// Vocabulary size (embedding + LM head).
    pub vocab_size: usize,
    /// Whether the MLP uses a gated (SwiGLU-style) projection, i.e. has a
    /// separate gate matrix in addition to up/down projections.
    pub gated_mlp: bool,
    /// Activation function (after ReLU-fication where applicable).
    pub activation: ActivationKind,
    /// Bytes per weight element (FP16 = 2 throughout the paper).
    pub dtype_bytes: u64,
}

impl ModelConfig {
    /// Build the configuration for a given model identifier.
    pub fn from_id(id: ModelId) -> Self {
        match id {
            ModelId::Opt13B => Self::opt(id, 40, 5120, 40),
            ModelId::Opt30B => Self::opt(id, 48, 7168, 56),
            ModelId::Opt66B => Self::opt(id, 64, 9216, 72),
            ModelId::Llama2_7B => Self::llama(id, 32, 4096, 11008, 32, 32),
            ModelId::Llama2_13B => Self::llama(id, 40, 5120, 13824, 40, 40),
            ModelId::Llama2_70B => Self::llama(id, 80, 8192, 28672, 64, 8),
            ModelId::Falcon40B => ModelConfig {
                id,
                num_layers: 60,
                hidden_size: 8192,
                ffn_hidden: 32768,
                num_heads: 128,
                num_kv_heads: 8,
                vocab_size: 65024,
                gated_mlp: false,
                activation: ActivationKind::GeluRelufied,
                dtype_bytes: FP16_BYTES,
            },
        }
    }

    fn opt(id: ModelId, layers: usize, hidden: usize, heads: usize) -> Self {
        ModelConfig {
            id,
            num_layers: layers,
            hidden_size: hidden,
            ffn_hidden: hidden * 4,
            num_heads: heads,
            num_kv_heads: heads,
            vocab_size: 50272,
            gated_mlp: false,
            activation: ActivationKind::Relu,
            dtype_bytes: FP16_BYTES,
        }
    }

    fn llama(
        id: ModelId,
        layers: usize,
        hidden: usize,
        ffn: usize,
        heads: usize,
        kv_heads: usize,
    ) -> Self {
        ModelConfig {
            id,
            num_layers: layers,
            hidden_size: hidden,
            ffn_hidden: ffn,
            num_heads: heads,
            num_kv_heads: kv_heads,
            vocab_size: 32000,
            gated_mlp: true,
            activation: ActivationKind::SiluRelufied,
            dtype_bytes: FP16_BYTES,
        }
    }

    /// Dimension of each attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Hidden dimension of the key/value projections (smaller than
    /// `hidden_size` under grouped-query attention).
    pub fn kv_hidden(&self) -> usize {
        self.head_dim() * self.num_kv_heads
    }

    /// Shape description of one transformer layer.
    pub fn layer_shape(&self) -> LayerShape {
        LayerShape::from_config(self)
    }

    /// Number of sparsity-eligible neurons per layer in the given block
    /// (a neuron is a row/column of a weight matrix, per the paper).
    pub fn neurons_per_layer(&self, block: Block) -> usize {
        self.layer_shape().neurons(block)
    }

    /// Total number of sparsity-eligible neurons across the whole model.
    pub fn total_neurons(&self) -> usize {
        self.num_layers
            * (self.neurons_per_layer(Block::Attention) + self.neurons_per_layer(Block::Mlp))
    }

    /// Bytes of weights attributed to a single neuron in the given block.
    pub fn neuron_weight_bytes(&self, block: Block) -> u64 {
        self.layer_shape().neuron_weight_bytes(block)
    }

    /// FLOPs performed when a single neuron is activated for one token
    /// (2 FLOPs per weight element: multiply + accumulate).
    pub fn neuron_flops(&self, block: Block) -> u64 {
        2 * self.neuron_weight_bytes(block) / self.dtype_bytes
    }

    /// Full memory footprint of the model.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint::of(self)
    }

    /// Total parameter bytes (weights only, FP16).
    pub fn total_param_bytes(&self) -> u64 {
        self.memory_footprint().total_bytes()
    }

    /// Approximate parameter count in billions, useful for sanity checks.
    pub fn param_count_billion(&self) -> f64 {
        (self.total_param_bytes() / self.dtype_bytes) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_consistent_heads() {
        for id in ModelId::ALL {
            let cfg = ModelConfig::from_id(id);
            assert_eq!(
                cfg.hidden_size % cfg.num_heads,
                0,
                "{id}: hidden not divisible by heads"
            );
            assert!(cfg.num_kv_heads <= cfg.num_heads, "{id}");
            assert_eq!(cfg.num_heads % cfg.num_kv_heads, 0, "{id}");
        }
    }

    #[test]
    fn param_counts_match_model_names() {
        // Coarse check: the derived parameter count should be within ~20% of
        // the nominal size implied by the model name.
        let expect = [
            (ModelId::Opt13B, 13.0),
            (ModelId::Opt30B, 30.0),
            (ModelId::Opt66B, 66.0),
            (ModelId::Llama2_7B, 6.7),
            (ModelId::Llama2_13B, 13.0),
            (ModelId::Llama2_70B, 69.0),
            (ModelId::Falcon40B, 41.0),
        ];
        for (id, nominal) in expect {
            let got = ModelConfig::from_id(id).param_count_billion();
            let ratio = got / nominal;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{id}: derived {got:.1}B vs nominal {nominal}B"
            );
        }
    }

    #[test]
    fn llama7b_neuron_counts_match_paper() {
        let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
        assert_eq!(cfg.neurons_per_layer(Block::Attention), 4096);
        assert_eq!(cfg.neurons_per_layer(Block::Mlp), 11008);
    }

    #[test]
    fn opt_family_flag() {
        assert!(ModelId::Opt66B.is_opt_family());
        assert!(!ModelId::Llama2_70B.is_opt_family());
        assert!(!ModelId::Falcon40B.is_opt_family());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(ModelId::Llama2_70B.to_string(), "LLaMA2-70B");
        assert_eq!(ModelId::Opt13B.to_string(), "OPT-13B");
    }

    #[test]
    fn gqa_reduces_kv_hidden() {
        let cfg = ModelConfig::from_id(ModelId::Llama2_70B);
        assert_eq!(cfg.kv_hidden(), 1024);
        let opt = ModelConfig::from_id(ModelId::Opt13B);
        assert_eq!(opt.kv_hidden(), opt.hidden_size);
    }

    #[test]
    fn neuron_flops_are_twice_weight_elements() {
        let cfg = ModelConfig::from_id(ModelId::Opt13B);
        for block in [Block::Attention, Block::Mlp] {
            assert_eq!(
                cfg.neuron_flops(block),
                2 * cfg.neuron_weight_bytes(block) / cfg.dtype_bytes
            );
        }
    }
}
