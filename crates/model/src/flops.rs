//! Per-layer and per-model FLOP accounting for dense execution.
//!
//! These numbers describe *dense* (no activation sparsity) token-generation
//! work; the sparsity-aware engines scale the sparse portions by the number
//! of activated neurons.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::layer::Block;

/// FLOPs of one transformer layer for a single token, split by operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerFlops {
    /// QKV generation (sparsity-eligible).
    pub qkv: u64,
    /// Attention score + value computation over the KV cache.
    pub attention: u64,
    /// Output projection (dense, GPU-only).
    pub projection: u64,
    /// MLP block (sparsity-eligible).
    pub mlp: u64,
}

impl LayerFlops {
    /// Dense per-token FLOPs of one layer at the given KV-cache length.
    pub fn dense(cfg: &ModelConfig, kv_len: usize) -> Self {
        let shape = cfg.layer_shape();
        let qkv =
            cfg.neurons_per_layer(Block::Attention) as u64 * cfg.neuron_flops(Block::Attention);
        let mlp = cfg.neurons_per_layer(Block::Mlp) as u64 * cfg.neuron_flops(Block::Mlp);
        LayerFlops {
            qkv,
            attention: shape.attention_flops(kv_len),
            projection: shape.projection_flops(),
            mlp,
        }
    }

    /// Total FLOPs of the layer.
    pub fn total(&self) -> u64 {
        self.qkv + self.attention + self.projection + self.mlp
    }

    /// FLOPs of the sparsity-eligible portion (QKV + MLP).
    pub fn sparse_portion(&self) -> u64 {
        self.qkv + self.mlp
    }
}

/// Dense per-token FLOPs of the whole model at the given KV-cache length.
pub fn model_flops_per_token(cfg: &ModelConfig, kv_len: usize) -> u64 {
    let per_layer = LayerFlops::dense(cfg, kv_len).total();
    let lm_head = 2 * (cfg.vocab_size as u64) * (cfg.hidden_size as u64);
    cfg.num_layers as u64 * per_layer + lm_head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelId};

    #[test]
    fn totals_are_sums() {
        let cfg = ModelConfig::from_id(ModelId::Opt13B);
        let f = LayerFlops::dense(&cfg, 128);
        assert_eq!(f.total(), f.qkv + f.attention + f.projection + f.mlp);
        assert_eq!(f.sparse_portion(), f.qkv + f.mlp);
    }

    #[test]
    fn sparse_portion_dominates_at_short_context() {
        // At 128-token context the FC layers dominate, which is why the
        // hot/cold split of QKV+MLP neurons matters so much in the paper.
        for id in ModelId::ALL {
            let cfg = ModelConfig::from_id(id);
            let f = LayerFlops::dense(&cfg, 128);
            assert!(f.sparse_portion() as f64 / f.total() as f64 > 0.6, "{id}");
        }
    }

    #[test]
    fn model_flops_roughly_two_per_parameter() {
        // Dense decoding performs ~2 FLOPs per weight parameter.
        let cfg = ModelConfig::from_id(ModelId::Llama2_13B);
        let flops = model_flops_per_token(&cfg, 128) as f64;
        let params = (cfg.total_param_bytes() / cfg.dtype_bytes) as f64;
        let ratio = flops / (2.0 * params);
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn longer_context_costs_more() {
        let cfg = ModelConfig::from_id(ModelId::Falcon40B);
        assert!(model_flops_per_token(&cfg, 1024) > model_flops_per_token(&cfg, 128));
    }
}
