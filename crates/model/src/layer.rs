//! Per-layer weight shapes and the neuron abstraction.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::config::ModelConfig;

/// The two sparsity-eligible blocks of a transformer layer.
///
/// Following the paper (Figure 3), a *neuron* is a row/column of a weight
/// matrix: in the MLP block one intermediate FFN unit (a row of FC1/up and a
/// column of FC2/down), in the self-attention block one output channel of the
/// QKV generation (made sparse by the ReLU inserted before QKV generation).
/// The projection layer cannot use activation sparsity and is always computed
/// densely on the GPU (Section IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Block {
    /// Self-attention block (QKV generation + attention + projection).
    Attention,
    /// MLP / feed-forward block.
    Mlp,
}

impl Block {
    /// Both blocks, attention first, matching the layer execution order.
    pub const ALL: [Block; 2] = [Block::Attention, Block::Mlp];
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::Attention => f.write_str("attention"),
            Block::Mlp => f.write_str("mlp"),
        }
    }
}

/// Weight shapes of one transformer layer derived from a [`ModelConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Key/value hidden dimension (== hidden unless grouped-query attention).
    pub kv_hidden: usize,
    /// MLP intermediate dimension.
    pub ffn_hidden: usize,
    /// Whether the MLP has a gate matrix (SwiGLU-style, LLaMA family).
    pub gated_mlp: bool,
    /// Bytes per weight element.
    pub dtype_bytes: u64,
}

impl LayerShape {
    /// Derive the layer shape from a model configuration.
    pub fn from_config(cfg: &ModelConfig) -> Self {
        LayerShape {
            hidden: cfg.hidden_size,
            kv_hidden: cfg.kv_hidden(),
            ffn_hidden: cfg.ffn_hidden,
            gated_mlp: cfg.gated_mlp,
            dtype_bytes: cfg.dtype_bytes,
        }
    }

    /// Number of sparsity-eligible neurons in the given block.
    pub fn neurons(&self, block: Block) -> usize {
        match block {
            // One neuron per QKV output channel: Q has `hidden` channels and
            // K/V share them under GQA; the paper counts `hidden` neurons for
            // the self-attention block (4K for LLaMA-7B).
            Block::Attention => self.hidden,
            // One neuron per FFN intermediate unit (10.5K for LLaMA-7B).
            Block::Mlp => self.ffn_hidden,
        }
    }

    /// Number of FP16 weight elements attributed to one neuron of the block.
    pub fn neuron_weight_elements(&self, block: Block) -> u64 {
        match block {
            // A Q output channel owns one column of W_Q (hidden elements);
            // the matching K/V channels are shared across the GQA group, so
            // we charge them proportionally.
            Block::Attention => {
                let q = self.hidden as u64;
                let kv_share =
                    2 * self.kv_hidden as u64 * self.hidden as u64 / self.hidden.max(1) as u64;
                q + kv_share
            }
            // An MLP neuron owns a row of FC1/up (+ gate when present) and a
            // column of FC2/down.
            Block::Mlp => {
                let per_matrix = self.hidden as u64;
                let matrices = if self.gated_mlp { 3 } else { 2 };
                matrices * per_matrix
            }
        }
    }

    /// Bytes of weights attributed to one neuron of the block.
    pub fn neuron_weight_bytes(&self, block: Block) -> u64 {
        self.neuron_weight_elements(block) * self.dtype_bytes
    }

    /// Total bytes of sparsity-eligible weights in the given block.
    pub fn sparse_block_bytes(&self, block: Block) -> u64 {
        self.neurons(block) as u64 * self.neuron_weight_bytes(block)
    }

    /// Bytes of the dense output projection of the attention block
    /// (not sparsity-eligible, always computed on the GPU).
    pub fn projection_bytes(&self) -> u64 {
        (self.hidden as u64) * (self.hidden as u64) * self.dtype_bytes
    }

    /// Total weight bytes of one layer (sparse blocks + dense projection).
    pub fn total_bytes(&self) -> u64 {
        self.sparse_block_bytes(Block::Attention)
            + self.sparse_block_bytes(Block::Mlp)
            + self.projection_bytes()
    }

    /// FLOPs of the dense output projection for a single token.
    pub fn projection_flops(&self) -> u64 {
        2 * (self.hidden as u64) * (self.hidden as u64)
    }

    /// FLOPs of the attention score/value computation for a single token with
    /// the given KV-cache length (two GEMVs over the cached sequence).
    pub fn attention_flops(&self, kv_len: usize) -> u64 {
        // QK^T and PV, each 2 * hidden * kv_len FLOPs for one query token.
        4 * (self.hidden as u64) * (kv_len as u64)
    }

    /// Bytes of KV cache read for a single token at the given cache length.
    pub fn attention_kv_bytes(&self, kv_len: usize) -> u64 {
        2 * (self.kv_hidden as u64) * (kv_len as u64) * self.dtype_bytes
    }

    /// Bytes appended to the KV cache for one new token.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * (self.kv_hidden as u64) * self.dtype_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelId};

    fn shape(id: ModelId) -> LayerShape {
        ModelConfig::from_id(id).layer_shape()
    }

    #[test]
    fn mlp_neuron_bytes_opt_vs_llama() {
        // OPT (no gate): 2 * hidden elements; LLaMA (gated): 3 * hidden.
        let opt = shape(ModelId::Opt13B);
        assert_eq!(
            opt.neuron_weight_elements(Block::Mlp),
            2 * opt.hidden as u64
        );
        let llama = shape(ModelId::Llama2_13B);
        assert_eq!(
            llama.neuron_weight_elements(Block::Mlp),
            3 * llama.hidden as u64
        );
    }

    #[test]
    fn sparse_block_bytes_match_matrix_sizes() {
        // For OPT the MLP block is exactly FC1 + FC2: 2 * hidden * ffn elems.
        let s = shape(ModelId::Opt30B);
        let expect = 2 * (s.hidden as u64) * (s.ffn_hidden as u64) * s.dtype_bytes;
        assert_eq!(s.sparse_block_bytes(Block::Mlp), expect);
    }

    #[test]
    fn projection_is_square() {
        let s = shape(ModelId::Opt13B);
        assert_eq!(
            s.projection_bytes(),
            (s.hidden * s.hidden) as u64 * s.dtype_bytes
        );
    }

    #[test]
    fn attention_flops_scale_with_kv_len() {
        let s = shape(ModelId::Llama2_13B);
        assert_eq!(s.attention_flops(256), 2 * s.attention_flops(128));
        assert_eq!(s.attention_kv_bytes(256), 2 * s.attention_kv_bytes(128));
    }

    #[test]
    fn layer_bytes_are_positive_and_ordered() {
        let small = shape(ModelId::Opt13B).total_bytes();
        let large = shape(ModelId::Opt66B).total_bytes();
        assert!(small > 0);
        assert!(large > small);
    }

    #[test]
    fn block_display() {
        assert_eq!(Block::Attention.to_string(), "attention");
        assert_eq!(Block::Mlp.to_string(), "mlp");
    }
}
