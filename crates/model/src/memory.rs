//! Model memory accounting: weights, embeddings, KV cache.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::layer::Block;

/// Bytes per KV-cache element (FP16).
pub const KV_BYTES_PER_ELEMENT: u64 = 2;

/// Byte-level memory footprint of a model, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Bytes of sparsity-eligible attention-block weights across all layers.
    pub attention_neuron_bytes: u64,
    /// Bytes of sparsity-eligible MLP-block weights across all layers.
    pub mlp_neuron_bytes: u64,
    /// Bytes of dense projection weights across all layers.
    pub projection_bytes: u64,
    /// Bytes of the token embedding table and LM head.
    pub embedding_bytes: u64,
    /// Bytes of per-token KV cache for the whole model (both K and V).
    pub kv_bytes_per_token: u64,
}

impl MemoryFootprint {
    /// Compute the footprint of a model configuration.
    pub fn of(cfg: &ModelConfig) -> Self {
        let shape = cfg.layer_shape();
        let layers = cfg.num_layers as u64;
        MemoryFootprint {
            attention_neuron_bytes: layers * shape.sparse_block_bytes(Block::Attention),
            mlp_neuron_bytes: layers * shape.sparse_block_bytes(Block::Mlp),
            projection_bytes: layers * shape.projection_bytes(),
            embedding_bytes: 2
                * (cfg.vocab_size as u64)
                * (cfg.hidden_size as u64)
                * cfg.dtype_bytes,
            kv_bytes_per_token: layers * shape.kv_bytes_per_token(),
        }
    }

    /// Total weight bytes (everything except the KV cache).
    pub fn total_bytes(&self) -> u64 {
        self.attention_neuron_bytes
            + self.mlp_neuron_bytes
            + self.projection_bytes
            + self.embedding_bytes
    }

    /// Bytes of sparsity-eligible weights (hot/cold partitionable).
    pub fn sparse_bytes(&self) -> u64 {
        self.attention_neuron_bytes + self.mlp_neuron_bytes
    }

    /// Bytes that must always stay resident on the GPU (dense projections,
    /// embeddings, LM head) under the Hermes mapping.
    pub fn dense_resident_bytes(&self) -> u64 {
        self.projection_bytes + self.embedding_bytes
    }

    /// KV-cache bytes for a sequence of the given length and batch size.
    pub fn kv_cache_bytes(&self, seq_len: usize, batch: usize) -> u64 {
        self.kv_bytes_per_token * seq_len as u64 * batch as u64
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{ModelConfig, ModelId};

    #[test]
    fn totals_add_up() {
        let fp = ModelConfig::from_id(ModelId::Opt30B).memory_footprint();
        assert_eq!(
            fp.total_bytes(),
            fp.sparse_bytes() + fp.dense_resident_bytes()
        );
    }

    #[test]
    fn sparse_weights_dominate() {
        // The hot/cold partition only matters because the QKV + MLP weights
        // are the bulk of the model; check they exceed 70% of total bytes.
        for id in ModelId::ALL {
            let fp = ModelConfig::from_id(id).memory_footprint();
            let frac = fp.sparse_bytes() as f64 / fp.total_bytes() as f64;
            assert!(frac > 0.7, "{id}: sparse fraction {frac:.2}");
        }
    }

    #[test]
    fn llama70b_does_not_fit_in_24gb() {
        // The premise of the paper: consumer GPUs cannot hold these models.
        let fp = ModelConfig::from_id(ModelId::Llama2_70B).memory_footprint();
        assert!(fp.total_bytes() > 24 * crate::GIB);
    }

    #[test]
    fn kv_cache_scales_linearly() {
        let fp = ModelConfig::from_id(ModelId::Llama2_13B).memory_footprint();
        assert_eq!(fp.kv_cache_bytes(256, 2), 4 * fp.kv_cache_bytes(128, 1));
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let llama70 = ModelConfig::from_id(ModelId::Llama2_70B).memory_footprint();
        let opt66 = ModelConfig::from_id(ModelId::Opt66B).memory_footprint();
        // LLaMA2-70B has more layers but 8 KV heads; its per-token KV cache
        // should be smaller than OPT-66B's full-MHA cache.
        assert!(llama70.kv_bytes_per_token < opt66.kv_bytes_per_token);
    }
}
