//! Identifiers for neurons (rows/columns of weight matrices).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::layer::Block;

/// Index of a neuron within a single (layer, block) weight matrix.
///
/// The index is local to its block: MLP neuron 0 and attention neuron 0 of
/// the same layer are different neurons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NeuronId(pub u32);

impl NeuronId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NeuronId {
    fn from(v: u32) -> Self {
        NeuronId(v)
    }
}

impl From<usize> for NeuronId {
    fn from(v: usize) -> Self {
        NeuronId(v as u32)
    }
}

impl fmt::Display for NeuronId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Fully-qualified reference to a neuron: layer, block, and local index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NeuronRef {
    /// Transformer layer index.
    pub layer: u32,
    /// Which block of the layer the neuron belongs to.
    pub block: Block,
    /// Local neuron index within the block.
    pub neuron: NeuronId,
}

impl NeuronRef {
    /// Construct a reference from raw parts.
    pub fn new(layer: usize, block: Block, neuron: usize) -> Self {
        NeuronRef {
            layer: layer as u32,
            block,
            neuron: NeuronId(neuron as u32),
        }
    }
}

impl fmt::Display for NeuronRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}/{}/{}", self.layer, self.block, self.neuron)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_id_conversions() {
        let a: NeuronId = 7u32.into();
        let b: NeuronId = 7usize.into();
        assert_eq!(a, b);
        assert_eq!(a.index(), 7);
    }

    #[test]
    fn neuron_ref_display() {
        let r = NeuronRef::new(3, Block::Mlp, 42);
        assert_eq!(r.to_string(), "L3/mlp/n42");
    }

    #[test]
    fn neuron_refs_order_by_layer_then_block() {
        let a = NeuronRef::new(0, Block::Mlp, 100);
        let b = NeuronRef::new(1, Block::Attention, 0);
        assert!(a < b);
    }
}
