//! LLM architecture descriptions for the Hermes NDP-DIMM inference simulator.
//!
//! This crate contains pure data: the transformer architectures evaluated by
//! the Hermes paper (OPT-13B/30B/66B, LLaMA2-7B/13B/70B, Falcon-40B), their
//! per-layer weight shapes, the *neuron* abstraction (a row/column of a
//! weight matrix, following the paper's definition), and byte / FLOP
//! accounting used by every substrate cost model.
//!
//! # Example
//!
//! ```
//! use hermes_model::{ModelConfig, ModelId, Block};
//!
//! let cfg = ModelConfig::from_id(ModelId::Llama2_7B);
//! assert_eq!(cfg.num_layers, 32);
//! // The paper: "LLaMA-7B occupies 32 layers, with each one having 4K
//! // neurons for the self-attention block and 10.5K for the MLP block".
//! assert_eq!(cfg.neurons_per_layer(Block::Attention), 4096);
//! assert_eq!(cfg.neurons_per_layer(Block::Mlp), 11008);
//! ```

pub mod config;
pub mod flops;
pub mod layer;
pub mod memory;
pub mod neuron;

pub use config::{ActivationKind, ModelConfig, ModelId};
pub use layer::{Block, LayerShape};
pub use memory::{MemoryFootprint, KV_BYTES_PER_ELEMENT};
pub use neuron::{NeuronId, NeuronRef};

/// Bytes per FP16 weight element used throughout the simulator.
pub const FP16_BYTES: u64 = 2;

/// One GiB in bytes, used for capacity arithmetic in substrate crates.
pub const GIB: u64 = 1024 * 1024 * 1024;
