//! The `hermes-lint` command-line front end.
//!
//! ```text
//! hermes-lint --workspace [--json] [--root DIR] [--config FILE]
//! hermes-lint PATH…       [--json] [--root DIR] [--config FILE]
//! hermes-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 active deny diagnostics, 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

use hermes_lint::config::Config;
use hermes_lint::{diagnostics, relative_path, rules, walk_workspace, SourceFile};

struct Args {
    workspace: bool,
    json: bool,
    list_rules: bool,
    root: PathBuf,
    config_path: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        list_rules: false,
        root: PathBuf::from("."),
        config_path: None,
        paths: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--config" => {
                args.config_path = Some(PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--config needs a file".to_string())?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "hermes-lint: workspace determinism & safety lints\n\n\
                     usage: hermes-lint (--workspace | PATH…) [--json] [--root DIR] \
                     [--config FILE]\n       hermes-lint --list-rules\n\n\
                     Suppress with `// hermes-lint: allow(ID, reason = \"…\")` (reason \
                     mandatory).\nScoping lives in lint.toml at the workspace root."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (try --help)"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.list_rules && !args.workspace && args.paths.is_empty() {
        return Err("nothing to lint: pass --workspace or explicit paths (try --help)".to_string());
    }
    Ok(args)
}

fn list_rules() {
    println!("hermes-lint rules (suppress with `// hermes-lint: allow(ID, reason = \"…\")`):\n");
    for rule in rules::all() {
        println!(
            "  {:4} [{}] {}",
            rule.id,
            rule.severity.name(),
            rule.summary
        );
        println!("       {}\n", rule.rationale);
    }
    println!(
        "  SUP  [deny] malformed suppression (missing mandatory reason or unparseable \
         allow-list)"
    );
}

fn load_config(args: &Args) -> Result<Config, String> {
    let path = args
        .config_path
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text),
        Err(e) if args.workspace || args.config_path.is_some() => {
            Err(format!("cannot read {}: {e}", path.display()))
        }
        // Explicit-path mode without a config: empty scoping (only SUP
        // diagnostics can fire), still useful for suppression hygiene.
        Err(_) => Ok(Config::default()),
    }
}

fn load_files(args: &Args, config: &Config) -> Result<Vec<SourceFile>, String> {
    let paths: Vec<PathBuf> = if args.workspace {
        walk_workspace(&args.root, config)?
    } else {
        args.paths.clone()
    };
    let mut files = Vec::new();
    for path in paths {
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let rel = relative_path(&args.root, &path);
        files.push(SourceFile::new(rel, src, config));
    }
    Ok(files)
}

fn real_main() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        list_rules();
        return Ok(ExitCode::SUCCESS);
    }
    let config = load_config(&args)?;
    let files = load_files(&args, &config)?;
    let report = hermes_lint::run(&files, &config);
    if args.json {
        print!(
            "{}",
            diagnostics::render_json(&report.active, &report.suppressed, report.checked_files)
        );
    } else {
        for diag in &report.active {
            println!("{diag}");
        }
        println!(
            "hermes-lint: {} file(s) checked, {} active diagnostic(s), {} suppressed",
            report.checked_files,
            report.active.len(),
            report.suppressed.len()
        );
    }
    Ok(if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hermes-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}
