//! Diagnostics: what a rule found, where, and how it is rendered — both the
//! human `path:line:col` form and the machine-readable `--json` form CI
//! uploads as an artifact.

use std::fmt;

/// How a diagnostic affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (exit code 1) unless suppressed.
    Deny,
    /// Reported but never fails the run.
    Warn,
}

impl Severity {
    /// Stable lower-case name used in output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One finding at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`D1`, `S2`, … or `SUP` for a malformed suppression).
    pub rule: &'static str,
    /// Whether the finding fails the run.
    pub severity: Severity,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub column: usize,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// The mandatory reason of the suppression that silenced this
    /// diagnostic; `None` while it is active.
    pub suppressed_reason: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}]: {}",
            self.path,
            self.line,
            self.column,
            self.severity.name(),
            self.rule,
            self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "\n    | {}", self.snippet)?;
        }
        Ok(())
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn diagnostic_json(d: &Diagnostic, indent: &str) -> String {
    let mut fields = vec![
        format!("\"rule\": \"{}\"", escape_json(d.rule)),
        format!("\"severity\": \"{}\"", d.severity.name()),
        format!("\"path\": \"{}\"", escape_json(&d.path)),
        format!("\"line\": {}", d.line),
        format!("\"column\": {}", d.column),
        format!("\"message\": \"{}\"", escape_json(&d.message)),
        format!("\"snippet\": \"{}\"", escape_json(&d.snippet)),
    ];
    if let Some(reason) = &d.suppressed_reason {
        fields.push(format!("\"reason\": \"{}\"", escape_json(reason)));
    }
    let inner = fields
        .iter()
        .map(|f| format!("{indent}  {f}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{indent}{{\n{inner}\n{indent}}}")
}

/// Render the full `--json` report: active diagnostics (those that fail the
/// run), suppressed ones (with their mandatory reasons) and the file count.
pub fn render_json(
    active: &[Diagnostic],
    suppressed: &[Diagnostic],
    checked_files: usize,
) -> String {
    let list = |diags: &[Diagnostic]| -> String {
        if diags.is_empty() {
            "[]".to_string()
        } else {
            let items = diags
                .iter()
                .map(|d| diagnostic_json(d, "    "))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{items}\n  ]")
        }
    };
    format!(
        "{{\n  \"tool\": \"hermes-lint\",\n  \"checked_files\": {},\n  \"active_count\": {},\n  \
         \"suppressed_count\": {},\n  \"diagnostics\": {},\n  \"suppressed\": {}\n}}\n",
        checked_files,
        active.len(),
        suppressed.len(),
        list(active),
        list(suppressed)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "D1",
            severity: Severity::Deny,
            path: "crates/serve/src/simulator.rs".to_string(),
            line: 218,
            column: 9,
            message: "HashMap iteration order is nondeterministic".to_string(),
            snippet: "let mut leaders: HashMap<&[u64], usize> = HashMap::new();".to_string(),
            suppressed_reason: None,
        }
    }

    #[test]
    fn display_is_grep_friendly() {
        let text = diag().to_string();
        assert!(text.starts_with("crates/serve/src/simulator.rs:218:9: deny [D1]:"));
        assert!(text.contains("| let mut leaders"));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(escape_json(r#"a "b" \c"#), r#"a \"b\" \\c"#);
        assert_eq!(escape_json("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }

    #[test]
    fn json_report_carries_counts_and_reasons() {
        let mut suppressed = diag();
        suppressed.suppressed_reason = Some("shadow model only".to_string());
        let json = render_json(&[diag()], &[suppressed], 42);
        assert!(json.contains("\"checked_files\": 42"));
        assert!(json.contains("\"active_count\": 1"));
        assert!(json.contains("\"suppressed_count\": 1"));
        assert!(json.contains("\"reason\": \"shadow model only\""));
        // Exactly two rendered diagnostics.
        assert_eq!(json.matches("\"rule\": \"D1\"").count(), 2);
    }
}
