//! `hermes-lint` — workspace-local determinism & safety static analysis.
//!
//! The repo's verification story rests on bitwise determinism: the event-heap
//! simulator must match the reference oracle token-for-token, cluster runs
//! must be byte-identical across thread counts, and every `ServingReport`
//! must serialize identically across runs. This linter turns the conventions
//! that protect those invariants into machine-checked rules (run
//! `hermes-lint --list-rules` for the registry): no hash-ordered containers
//! in deterministic crates (D1), no wall-clock reads outside bench (D2), no
//! `unwrap`/`expect`/`panic!` in library code (D3), no `as` numeric casts in
//! KV/token accounting (S1), ordered float folds only (S2), and `#[must_use]`
//! on report-returning APIs (H1).
//!
//! # Worked example
//!
//! ```text
//! $ cargo run -p hermes-lint -- --workspace
//! crates/serve/src/simulator.rs:218:26: deny [D1]: `HashMap` iterates in
//! nondeterministic order; use `BTreeMap` or an indexed Vec to keep reports
//! bitwise-reproducible
//!     | let mut leaders: std::collections::HashMap<&[u64], usize> = ...
//! ```
//!
//! The fix is either the suggested rewrite or — for a deliberate exception —
//! an inline suppression with a mandatory reason, on the offending line or
//! the line directly above it:
//!
//! ```text
//! // hermes-lint: allow(D1, reason = "scratch map, drained in sorted order")
//! ```
//!
//! A suppression without a reason is itself a deny-severity diagnostic
//! (`SUP`) and does not silence anything. Scoping lives in the checked-in
//! `lint.toml`; everything (lexer, TOML-subset config parser, JSON writer) is
//! dependency-free by design, so the linter builds before anything else in
//! the workspace and can never be broken by the vendored dependency stubs.

pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

use config::{Config, RuleConfig};
use diagnostics::{Diagnostic, Severity};
use lexer::{Token, TokenKind};
use rules::RuleContext;

/// One inline `// hermes-lint: allow(...)` comment.
#[derive(Debug, Clone)]
struct Suppression {
    /// Rule ids the comment names.
    rule_ids: Vec<String>,
    /// The mandatory reason; `None` makes the suppression inert and emits a
    /// `SUP` diagnostic.
    reason: Option<String>,
    /// 1-based line of the comment itself.
    line: usize,
    /// 1-based line of the code the suppression governs (same line for a
    /// trailing comment, the next code line for a comment on its own line).
    target_line: usize,
    /// Byte offset of the comment, for `SUP` diagnostics.
    offset: usize,
}

/// A lexed source file plus the derived facts rules need: significant-token
/// index, line table, `#[cfg(test)]` spans, suppressions, and its
/// test/binary classification.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// The file contents.
    pub src: String,
    /// The complete (lossless) token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant tokens (everything except
    /// whitespace and comments).
    pub sig: Vec<usize>,
    /// Byte offset of the start of each 1-based line.
    line_starts: Vec<usize>,
    /// Byte spans of `#[cfg(test)] mod … { … }` regions.
    pub test_spans: Vec<(usize, usize)>,
    /// Entirely test code: under a `tests/` directory or listed in
    /// `[workspace] test_files` (a `#[cfg(test)] mod …;` declaration in the
    /// parent module).
    pub is_test: bool,
    /// Binary-adjacent code: `main.rs`, `src/bin/`, `examples/`, `benches/`,
    /// `build.rs` — exempted by `library_only` rules.
    pub is_binlike: bool,
    suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lex and classify one file. `path` must be workspace-relative with
    /// `/` separators.
    pub fn new(path: String, src: String, config: &Config) -> SourceFile {
        let tokens = lexer::lex(&src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut line_starts = vec![0];
        line_starts.extend(src.match_indices('\n').map(|(i, _)| i + 1));
        let is_test = path.starts_with("tests/")
            || path.contains("/tests/")
            || config.test_files.iter().any(|f| f == &path);
        let is_binlike = path.starts_with("examples/")
            || path.contains("/examples/")
            || path.starts_with("benches/")
            || path.contains("/benches/")
            || path.contains("/bin/")
            || path.ends_with("/main.rs")
            || path == "main.rs"
            || path.ends_with("build.rs");
        let mut file = SourceFile {
            path,
            src,
            tokens,
            sig,
            line_starts,
            test_spans: Vec::new(),
            is_test,
            is_binlike,
            suppressions: Vec::new(),
        };
        file.test_spans = find_test_spans(&file);
        file.suppressions = parse_suppressions(&file);
        file
    }

    /// Test constructor with an empty config.
    pub fn for_tests(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path.to_string(), src.to_string(), &Config::default())
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// The `i`-th significant token.
    pub fn sig_tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Kind of the `i`-th significant token.
    pub fn sig_kind(&self, i: usize) -> TokenKind {
        self.sig_tok(i).kind
    }

    /// Text of the `i`-th significant token.
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig_tok(i).text(&self.src)
    }

    /// 1-based (line, column) of a byte offset; columns count characters.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self.line_starts.partition_point(|&start| start <= offset);
        let start = self.line_starts[line - 1];
        let col = self.src[start..offset].chars().count() + 1;
        (line, col)
    }

    /// The trimmed text of a 1-based line.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.src.len(), |&next| next);
        self.src[start..end].trim_end_matches('\n').trim()
    }

    /// `true` if `offset` lies inside a `#[cfg(test)]` region.
    pub fn in_test_span(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| start <= offset && offset < end)
    }
}

/// Byte spans of `#[cfg(test)] mod … { … }` regions, found by scanning the
/// significant token stream (attributes and nested braces honoured; a
/// `#[cfg(test)] mod …;` declaration contributes no span here — the file it
/// names belongs in `[workspace] test_files`).
fn find_test_spans(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let n = file.sig_len();
    let mut i = 0;
    while i + 3 < n {
        if !(file.sig_text(i) == "#"
            && file.sig_text(i + 1) == "["
            && file.sig_text(i + 2) == "cfg"
            && file.sig_text(i + 3) == "(")
        {
            i += 1;
            continue;
        }
        // Find the attribute's closing `]` and check the cfg predicate
        // mentions `test` (covers `cfg(test)` and `cfg(all(test, …))`).
        let Some(close) = match_forward(file, i + 1, "[", "]") else {
            i += 1;
            continue;
        };
        let mentions_test = (i + 4..close)
            .any(|k| file.sig_kind(k) == TokenKind::Ident && file.sig_text(k) == "test");
        if !mentions_test {
            i = close + 1;
            continue;
        }
        // Skip any further attribute groups, then expect `mod name {`.
        let mut k = close + 1;
        while k + 1 < n && file.sig_text(k) == "#" && file.sig_text(k + 1) == "[" {
            match match_forward(file, k + 1, "[", "]") {
                Some(end) => k = end + 1,
                None => break,
            }
        }
        if k + 2 < n
            && file.sig_text(k) == "mod"
            && file.sig_kind(k + 1) == TokenKind::Ident
            && file.sig_text(k + 2) == "{"
        {
            if let Some(end) = match_forward(file, k + 2, "{", "}") {
                spans.push((file.sig_tok(i).start, file.sig_tok(end).end));
                i = k + 3;
                continue;
            }
        }
        i = close + 1;
    }
    spans
}

/// Index of the token matching the opener at significant index `open`.
fn match_forward(file: &SourceFile, open: usize, opener: &str, closer: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < file.sig_len() {
        let t = file.sig_text(i);
        if t == opener {
            depth += 1;
        } else if t == closer {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Parse every `// hermes-lint: allow(…)` comment in the file.
fn parse_suppressions(file: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text(&file.src);
        let Some(body) = text
            .trim_start_matches('/')
            .trim()
            .strip_prefix("hermes-lint:")
        else {
            continue;
        };
        let (line, _) = file.line_col(tok.start);
        let parsed = parse_allow(body.trim());
        // A trailing comment governs its own line; a comment on its own
        // line governs the next line that has significant code.
        let code_before = file.sig.iter().any(|&s| {
            file.tokens[s].start < tok.start && {
                let (l, _) = file.line_col(file.tokens[s].start);
                l == line
            }
        });
        let target_line = if code_before {
            line
        } else {
            file.tokens[idx + 1..]
                .iter()
                .find(|t| {
                    !matches!(
                        t.kind,
                        TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                    )
                })
                .map_or(line + 1, |t| file.line_col(t.start).0)
        };
        let (rule_ids, reason) = parsed.unwrap_or((Vec::new(), None));
        out.push(Suppression {
            rule_ids,
            reason,
            line,
            target_line,
            offset: tok.start,
        });
    }
    out
}

/// Parse `allow(ID, ID, reason = "…")`. Returns `None` on malformed syntax;
/// a missing/empty reason comes back as `reason: None` (both yield `SUP`).
fn parse_allow(body: &str) -> Option<(Vec<String>, Option<String>)> {
    let inner = body.strip_prefix("allow(")?.strip_suffix(')')?;
    let (id_part, reason) = match inner.find("reason") {
        Some(pos) => {
            let tail = inner[pos + "reason".len()..].trim_start();
            let tail = tail.strip_prefix('=')?.trim_start();
            let tail = tail.strip_prefix('"')?;
            let end = tail.rfind('"')?;
            let reason = tail[..end].trim().to_string();
            let reason = if reason.is_empty() {
                None
            } else {
                Some(reason)
            };
            (&inner[..pos], reason)
        }
        None => (inner, None),
    };
    let mut ids = Vec::new();
    for id in id_part.split(',') {
        let id = id.trim();
        if id.is_empty() {
            continue;
        }
        if !id.chars().all(|c| c.is_ascii_alphanumeric()) {
            return None;
        }
        ids.push(id.to_string());
    }
    if ids.is_empty() {
        return None;
    }
    Some((ids, reason))
}

/// `path` is governed by the prefix `scope` ("crates/serve" matches the
/// directory subtree; a full file path matches exactly).
fn path_in(path: &str, scope: &str) -> bool {
    path == scope
        || path
            .strip_prefix(scope)
            .is_some_and(|rest| rest.starts_with('/'))
}

/// Scope test for one rule: inside some `include` prefix, outside every
/// `exclude` prefix.
fn in_scope(path: &str, rc: &RuleConfig) -> bool {
    rc.include.iter().any(|p| path_in(path, p)) && !rc.exclude.iter().any(|p| path_in(path, p))
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Diagnostics that count against the exit code (sorted by location).
    pub active: Vec<Diagnostic>,
    /// Diagnostics silenced by a reasoned suppression.
    pub suppressed: Vec<Diagnostic>,
    /// Number of files checked.
    pub checked_files: usize,
}

impl LintReport {
    /// `true` when any active diagnostic has deny severity.
    pub fn failed(&self) -> bool {
        self.active.iter().any(|d| d.severity == Severity::Deny)
    }
}

/// Run every configured rule over `files`.
pub fn run(files: &[SourceFile], config: &Config) -> LintReport {
    let mut ctx = RuleContext::default();
    for file in files {
        rules::collect_must_use_structs(file, &mut ctx.must_use_structs);
    }
    let mut report = LintReport {
        checked_files: files.len(),
        ..LintReport::default()
    };
    for rule in rules::all() {
        let rc = config.rule(rule.id);
        if rc.include.is_empty() {
            continue;
        }
        for file in files {
            if !in_scope(&file.path, &rc) {
                continue;
            }
            if rc.skip_tests && file.is_test {
                continue;
            }
            if rc.library_only && file.is_binlike {
                continue;
            }
            for finding in (rule.check)(file, &rc, &ctx) {
                if rc.skip_tests && file.in_test_span(finding.offset) {
                    continue;
                }
                let (line, column) = file.line_col(finding.offset);
                let mut diag = Diagnostic {
                    rule: rule.id,
                    severity: rule.severity,
                    path: file.path.clone(),
                    line,
                    column,
                    message: finding.message,
                    snippet: file.line_text(line).to_string(),
                    suppressed_reason: None,
                };
                let reason = file.suppressions.iter().find_map(|s| {
                    (s.target_line == line && s.rule_ids.iter().any(|id| id == rule.id))
                        .then(|| s.reason.clone())
                        .flatten()
                });
                match reason {
                    Some(reason) => {
                        diag.suppressed_reason = Some(reason);
                        report.suppressed.push(diag);
                    }
                    None => report.active.push(diag),
                }
            }
        }
    }
    // Malformed suppressions are themselves deny diagnostics (SUP).
    for file in files {
        for s in &file.suppressions {
            if s.reason.is_some() && !s.rule_ids.is_empty() {
                continue;
            }
            let (line, column) = file.line_col(s.offset);
            report.active.push(Diagnostic {
                rule: "SUP",
                severity: Severity::Deny,
                path: file.path.clone(),
                line,
                column,
                message: "malformed suppression: the reason is mandatory — \
                          `// hermes-lint: allow(ID, reason = \"…\")`"
                    .to_string(),
                snippet: file.line_text(s.line).to_string(),
                suppressed_reason: None,
            });
        }
    }
    let key = |d: &Diagnostic| (d.path.clone(), d.line, d.column, d.rule);
    report.active.sort_by_key(key);
    report.suppressed.sort_by_key(key);
    report
}

/// Recursively collect `.rs` files under `root`'s configured walk roots,
/// skipping `[workspace] exclude` prefixes. Paths come back workspace-
/// relative, `/`-separated, sorted — the walk order is deterministic.
///
/// # Errors
///
/// I/O failures reading a directory, with the offending path named.
pub fn walk_workspace(root: &Path, config: &Config) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for walk_root in &config.roots {
        let dir = root.join(walk_root);
        if dir.is_dir() {
            walk_dir(root, &dir, &config.exclude, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_dir(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let rel = relative_path(root, &path);
        if exclude.iter().any(|p| path_in(&rel, p)) {
            continue;
        }
        if path.is_dir() {
            walk_dir(root, &path, exclude, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (identity if not under `root`).
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_and_snippets() {
        let file = SourceFile::for_tests("x.rs", "let a = 1;\n  let bb = 2;\n");
        assert_eq!(file.line_col(0), (1, 1));
        assert_eq!(file.line_col(11), (2, 1));
        assert_eq!(file.line_col(15), (2, 5)); // 'b' of bb
        assert_eq!(file.line_text(2), "let bb = 2;");
    }

    #[test]
    fn test_spans_cover_cfg_test_mods() {
        let src = "pub fn lib() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n\
                   pub fn after() {}\n";
        let file = SourceFile::for_tests("crates/core/src/x.rs", src);
        assert_eq!(file.test_spans.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(file.in_test_span(unwrap_at));
        assert!(!file.in_test_span(src.find("lib").unwrap()));
        assert!(!file.in_test_span(src.find("after").unwrap()));
    }

    #[test]
    fn cfg_feature_mods_are_not_test_spans() {
        let src = "#[cfg(feature = \"reference\")]\nmod reference { fn f() {} }\n";
        let file = SourceFile::for_tests("x.rs", src);
        assert!(file.test_spans.is_empty());
    }

    #[test]
    fn suppression_parsing_trailing_and_standalone() {
        let src = "let m = HashMap::new(); // hermes-lint: allow(D1, reason = \"scratch\")\n\
                   // hermes-lint: allow(D3, S1, reason = \"validated upstream\")\n\
                   let x = v.unwrap();\n\
                   // hermes-lint: allow(D1)\n\
                   let y = 1;\n";
        let file = SourceFile::for_tests("x.rs", src);
        assert_eq!(file.suppressions.len(), 3);
        assert_eq!(file.suppressions[0].target_line, 1);
        assert_eq!(file.suppressions[0].reason.as_deref(), Some("scratch"));
        assert_eq!(file.suppressions[1].target_line, 3);
        assert_eq!(file.suppressions[1].rule_ids, vec!["D3", "S1"]);
        assert!(file.suppressions[2].reason.is_none()); // malformed: no reason
    }

    fn scoped_config(toml: &str) -> Config {
        Config::parse(toml).unwrap()
    }

    #[test]
    fn engine_applies_scope_suppressions_and_sup() {
        let config = scoped_config("[rules.D1]\ninclude = [\"crates/serve\"]\nskip_tests = true\n");
        let src =
            "use std::collections::HashMap; // hermes-lint: allow(D1, reason = \"import only\")\n\
                   let a: HashMap<u32, u32> = HashMap::new();\n\
                   // hermes-lint: allow(D1)\n\
                   let b = HashSet::new();\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        let files = vec![SourceFile::new(
            "crates/serve/src/x.rs".to_string(),
            src.to_string(),
            &config,
        )];
        let report = run(&files, &config);
        // Active: 2×HashMap on line 2 (reasonless allow on line 3 targets
        // line 4, and is itself a SUP), HashSet on line 4, SUP on line 3.
        // Suppressed: the import on line 1. The cfg(test) HashSet is skipped.
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].line, 1);
        let sup: Vec<_> = report.active.iter().filter(|d| d.rule == "SUP").collect();
        assert_eq!(sup.len(), 1);
        let d1: Vec<_> = report.active.iter().filter(|d| d.rule == "D1").collect();
        assert_eq!(d1.len(), 3);
        assert!(report.failed());
    }

    #[test]
    fn out_of_scope_files_untouched() {
        let config = scoped_config("[rules.D1]\ninclude = [\"crates/serve\"]\n");
        let files = vec![SourceFile::new(
            "crates/model/src/x.rs".to_string(),
            "use std::collections::HashMap;".to_string(),
            &config,
        )];
        assert!(!run(&files, &config).failed());
    }

    #[test]
    fn path_prefix_matching_is_component_wise() {
        assert!(path_in("crates/serve/src/kv.rs", "crates/serve"));
        assert!(path_in("crates/serve", "crates/serve"));
        assert!(!path_in("crates/serve2/src/kv.rs", "crates/serve"));
    }
}
