//! A hand-rolled, lossless Rust lexer.
//!
//! The linter cannot use `syn`/`proc-macro2`/`dylint` (crates.io is
//! unreachable in this build environment), so rules are written against this
//! token stream instead of an AST. The lexer is:
//!
//! - **Lossless**: every byte of the input belongs to exactly one token, so
//!   concatenating the token texts reproduces the source byte-for-byte (the
//!   `lexer_props` proptest pins this). Line/column mapping for diagnostics
//!   falls out of the spans.
//! - **Total**: it never panics, on any input — unterminated strings,
//!   comments and stray quotes degrade to tokens that run to end of input or
//!   to single-byte [`TokenKind::Unknown`] tokens.
//! - **Faithful on the hard cases** that would otherwise produce false
//!   positives: nested block comments, raw strings (`r"…"`, `r#"…"#`, any
//!   hash depth), byte/raw-byte strings, raw identifiers (`r#match`), and
//!   the lifetime-vs-char-literal ambiguity (`'a` vs `'a'` vs `'static`).
//!
//! Rules only ever match [`TokenKind::Ident`], [`TokenKind::Punct`] and
//! literal kinds, so occurrences of e.g. `HashMap` inside strings, comments
//! or raw strings can never trip a rule.

/// The lexical class of one source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace (including newlines).
    Whitespace,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting tracked; unterminated runs to end of input.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Character literal `'x'`, `'\n'`, `'\u{1F600}'`; byte literal `b'x'`.
    Char,
    /// String literal `"…"` (escapes honoured); byte string `b"…"`.
    Str,
    /// Raw (byte) string literal `r"…"`, `r#"…"#`, `br#"…"#`.
    RawStr,
    /// Integer or float literal, including suffixes (`1_000u64`, `0.5e-3`).
    Number,
    /// A single punctuation byte (`.`, `:`, `<`, `#`, …).
    Punct,
    /// Anything that fits no other class (stray quote, control byte, …).
    Unknown,
}

/// One token: a lexical class plus the byte span it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// The scanning cursor: a byte position into `src` with char-level peeking.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }
}

/// Lex `src` into a complete, contiguous token stream.
///
/// The returned spans tile the input exactly: the first token starts at 0,
/// each token starts where the previous one ended, and the last token ends
/// at `src.len()` (an empty input produces an empty stream). Never panics.
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut cur = Cursor { src, pos: 0 };
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let kind = scan_token(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
        });
    }
    tokens
}

/// Scan one token starting at `c`; the cursor is advanced past it.
fn scan_token(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return TokenKind::Whitespace;
    }
    if c == '/' {
        match cur.peek_at(1) {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return TokenKind::LineComment;
            }
            Some('*') => {
                scan_block_comment(cur);
                return TokenKind::BlockComment;
            }
            _ => {
                cur.bump();
                return TokenKind::Punct;
            }
        }
    }
    // Raw strings / raw identifiers / byte literals share prefix letters
    // with plain identifiers, so they are resolved before the ident path.
    if c == 'r' || c == 'b' {
        if let Some(kind) = scan_prefixed_literal(cur) {
            return kind;
        }
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        scan_number(cur);
        return TokenKind::Number;
    }
    match c {
        '\'' => scan_quote(cur),
        '"' => {
            scan_string(cur);
            TokenKind::Str
        }
        _ => {
            cur.bump();
            if c.is_ascii_punctuation() {
                TokenKind::Punct
            } else {
                TokenKind::Unknown
            }
        }
    }
}

/// `/* … */` with nesting; unterminated comments run to end of input.
fn scan_block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

/// Literals introduced by `r` / `b` / `br` prefixes, plus raw identifiers.
/// Returns `None` when the prefix letter is just the start of an ordinary
/// identifier (`radius`, `bytes`, …) and the ident path should take over.
fn scan_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let c = cur.peek()?;
    // b'…' byte char, b"…" byte string, br"…" / br#"…"# raw byte string.
    if c == 'b' {
        match cur.peek_at(1) {
            Some('\'') => {
                cur.bump(); // 'b'
                scan_char_literal(cur);
                return Some(TokenKind::Char);
            }
            Some('"') => {
                cur.bump();
                scan_string(cur);
                return Some(TokenKind::Str);
            }
            Some('r') => {
                if let Some(hashes) = raw_string_hashes(cur, 2) {
                    cur.bump(); // 'b'
                    cur.bump(); // 'r'
                    scan_raw_string(cur, hashes);
                    return Some(TokenKind::RawStr);
                }
                return None;
            }
            _ => return None,
        }
    }
    // r"…" / r#"…"# raw string, or r#ident raw identifier.
    if c == 'r' {
        if let Some(hashes) = raw_string_hashes(cur, 1) {
            cur.bump(); // 'r'
            scan_raw_string(cur, hashes);
            return Some(TokenKind::RawStr);
        }
        if cur.peek_at(1) == Some('#') && cur.peek_at(2).is_some_and(is_ident_start) {
            cur.bump(); // 'r'
            cur.bump(); // '#'
            cur.eat_while(is_ident_continue);
            return Some(TokenKind::Ident);
        }
    }
    None
}

/// If the chars at offset `from` onward read `#…#"` (zero or more hashes then
/// a quote), the count of hashes — i.e. this *is* a raw string opener.
fn raw_string_hashes(cur: &Cursor<'_>, from: usize) -> Option<usize> {
    let mut n = 0;
    loop {
        match cur.peek_at(from + n) {
            Some('#') => n += 1,
            Some('"') => return Some(n),
            _ => return None,
        }
    }
}

/// Body of a raw string after the `r`/`br` prefix: `#…#"` then content until
/// `"` followed by the same number of hashes. Unterminated runs to EOF.
fn scan_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    for _ in 0..hashes {
        cur.bump(); // '#'
    }
    cur.bump(); // opening '"'
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut matched = 0;
            while matched < hashes && cur.peek() == Some('#') {
                cur.bump();
                matched += 1;
            }
            if matched == hashes {
                return;
            }
        }
    }
}

/// `"…"` with `\` escapes; unterminated runs to EOF.
fn scan_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening '"'
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Disambiguate a leading `'`: lifetime/label (`'a`, `'static`) vs char
/// literal (`'a'`, `'\n'`, `'🦀'`). A bare quote that is neither degrades to
/// [`TokenKind::Unknown`].
fn scan_quote(cur: &mut Cursor<'_>) -> TokenKind {
    match cur.peek_at(1) {
        // Escape sequence: unambiguously a char literal.
        Some('\\') => {
            scan_char_literal(cur);
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // `'x'` is a char literal; `'x` followed by anything else is a
            // lifetime (or label). `'static'`-style longer idents cannot be
            // char literals, but scanning the ident first handles both.
            if cur.peek_at(2) == Some('\'') {
                scan_char_literal(cur);
                TokenKind::Char
            } else {
                cur.bump(); // '\''
                cur.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        // `'1'`, `'['`, `' '` … any single non-ident char closed by a quote.
        Some(c) if c != '\'' && cur.peek_at(2) == Some('\'') => {
            scan_char_literal(cur);
            TokenKind::Char
        }
        _ => {
            cur.bump();
            TokenKind::Unknown
        }
    }
}

/// `'…'` / `b'…'` body starting at the opening quote, honouring `\` escapes;
/// unterminated runs to EOF.
fn scan_char_literal(cur: &mut Cursor<'_>) {
    cur.bump(); // opening '\''
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => return,
            _ => {}
        }
    }
}

/// A numeric literal: `0x`/`0o`/`0b` radixes, `_` separators, type suffixes
/// (`1u64`), floats with fraction and signed exponents (`1.5e-3`). `1.max()`
/// and `0..n` are *not* floats — the dot only joins when a digit follows.
fn scan_number(cur: &mut Cursor<'_>) {
    cur.eat_while(is_ident_continue); // digits, radix letters, suffix, `_`
                                      // Optional fraction: only when followed by a digit (so `0..5` and
                                      // `1.max(2)` keep their dots as separate punct tokens).
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump(); // '.'
        cur.eat_while(is_ident_continue);
    }
    // Optional signed exponent: `1e+3`, `2.5E-7` stop the ident scan at the
    // sign, which belongs to the literal when preceded by e/E.
    if matches!(cur.peek(), Some('+') | Some('-')) {
        let prev = cur.src[..cur.pos].chars().next_back();
        if matches!(prev, Some('e') | Some('E')) {
            cur.bump();
            cur.eat_while(is_ident_continue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn significant(src: &str) -> Vec<(TokenKind, &str)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect()
    }

    #[test]
    fn spans_tile_the_source() {
        let src = "fn main() { let x = 'a'; /* c /* nested */ */ \"s\" }";
        let tokens = lex(src);
        let mut pos = 0;
        for t in &tokens {
            assert_eq!(t.start, pos);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            significant("<'a, 'static> 'b' '\\n' 'x"),
            vec![
                (TokenKind::Punct, "<"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Punct, ","),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::Punct, ">"),
                (TokenKind::Char, "'b'"),
                (TokenKind::Char, "'\\n'"),
                (TokenKind::Lifetime, "'x"),
            ]
        );
        // Digit char literal and a loop label before a for-loop.
        assert_eq!(
            significant("'1' 'outer: for"),
            vec![
                (TokenKind::Char, "'1'"),
                (TokenKind::Lifetime, "'outer"),
                (TokenKind::Punct, ":"),
                (TokenKind::Ident, "for"),
            ]
        );
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = r####"r"plain" r#"one "deep""# r##"two "# deep"## b"bytes" br#"raw bytes"#"####;
        let sig = significant(src);
        assert_eq!(
            sig.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::RawStr,
                TokenKind::RawStr,
                TokenKind::RawStr,
                TokenKind::Str,
                TokenKind::RawStr,
            ]
        );
        // A rule scanning idents must not see HashMap inside a raw string.
        let src = r##"let ok = r"HashMap::new()";"##;
        assert!(significant(src)
            .iter()
            .all(|(k, text)| *k != TokenKind::Ident || !text.contains("HashMap")));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert_eq!(
            significant("r#type r#match radius"),
            vec![
                (TokenKind::Ident, "r#type"),
                (TokenKind::Ident, "r#match"),
                (TokenKind::Ident, "radius"),
            ]
        );
    }

    #[test]
    fn nested_block_comments_terminate() {
        let src = "/* a /* b /* c */ */ still comment */ ident";
        assert_eq!(significant(src), vec![(TokenKind::Ident, "ident")]);
        // Unterminated: degrades to one comment to EOF, no panic.
        assert_eq!(significant("/* open /* deeper */"), vec![]);
    }

    #[test]
    fn numbers_keep_dots_and_exponents_straight() {
        assert_eq!(
            significant("0.5 1_000u64 0xFFu8 1e-3 2.5E+7 0..5 1.max(2)"),
            vec![
                (TokenKind::Number, "0.5"),
                (TokenKind::Number, "1_000u64"),
                (TokenKind::Number, "0xFFu8"),
                (TokenKind::Number, "1e-3"),
                (TokenKind::Number, "2.5E+7"),
                (TokenKind::Number, "0"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Number, "5"),
                (TokenKind::Number, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "max"),
                (TokenKind::Punct, "("),
                (TokenKind::Number, "2"),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        for src in ["'", "\"", "r#", "r#\"", "b'", "/*", "\\", "'''", "''"] {
            let tokens = lex(src);
            assert_eq!(tokens.last().map_or(0, |t| t.end), src.len(), "{src:?}");
        }
    }
}
