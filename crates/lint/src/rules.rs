//! The rule registry and per-rule token-stream checks.
//!
//! Every rule scans the *significant* token stream of a file (whitespace and
//! comments removed, string/char/raw-string contents opaque), so a mention of
//! `HashMap` in a doc comment or a format string can never trip a rule. Rules
//! are pattern matchers, not type checkers: they encode repo conventions
//! (determinism, checked casts, error routing) precisely enough that every
//! hit is worth a human look, and the suppression syntax exists for the rare
//! deliberate exception.

use std::collections::BTreeSet;

use crate::config::RuleConfig;
use crate::diagnostics::Severity;
use crate::lexer::TokenKind;
use crate::SourceFile;

/// A raw rule hit: a byte offset into the file plus the message. The engine
/// turns it into a full [`crate::diagnostics::Diagnostic`].
#[derive(Debug)]
pub struct RawFinding {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// Cross-file state shared by rule checks (today: the H1 two-pass set).
#[derive(Debug, Default)]
pub struct RuleContext {
    /// Names of structs whose *declaration* carries `#[must_use]` anywhere in
    /// the checked file set. A `pub fn` returning one of these is `#[must_use]`
    /// by construction (and must NOT also annotate the fn —
    /// `clippy::double_must_use`).
    pub must_use_structs: BTreeSet<String>,
}

/// One named rule: identity, severity, docs and its check function.
pub struct Rule {
    /// Stable id used in output, `lint.toml` and suppressions.
    pub id: &'static str,
    /// Whether an active finding fails the run.
    pub severity: Severity,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// Why the rule exists, tied to the repo invariant it protects.
    pub rationale: &'static str,
    /// The token-stream check.
    pub check: fn(&SourceFile, &RuleConfig, &RuleContext) -> Vec<RawFinding>,
}

/// All scanning rules, in reporting order. (`SUP` — malformed suppression —
/// is emitted by the suppression parser in the engine, not by a scan.)
pub fn all() -> &'static [Rule] {
    &[
        Rule {
            id: "D1",
            severity: Severity::Deny,
            summary: "no HashMap/HashSet in deterministic crates",
            rationale: "Hash iteration order varies per process, which breaks the bitwise \
                        report-equivalence guarantee (heap loop vs. reference oracle, cluster \
                        runs across thread counts). Use BTreeMap/BTreeSet or an indexed Vec.",
            check: check_d1,
        },
        Rule {
            id: "D2",
            severity: Severity::Deny,
            summary: "no wall-clock reads outside bench measurement code",
            rationale: "The simulator owns the virtual clock; an Instant/SystemTime read makes \
                        output depend on host timing. Only crates/bench may measure real time.",
            check: check_d2,
        },
        Rule {
            id: "D3",
            severity: Severity::Deny,
            summary: "no unwrap/expect/panic! in library code",
            rationale: "Library code in crates/core and crates/serve must surface failures as \
                        HermesError so callers (sweeps, the cluster driver) can degrade \
                        gracefully instead of aborting a multi-replica run.",
            check: check_d3,
        },
        Rule {
            id: "S1",
            severity: Severity::Deny,
            summary: "no `as` numeric casts in KV/token accounting",
            rationale: "Silent truncation or precision loss in block/token arithmetic corrupts \
                        the accounting that the equivalence tests certify. Route conversions \
                        through the checked helpers in hermes_core::cast (or try_from).",
            check: check_s1,
        },
        Rule {
            id: "S2",
            severity: Severity::Deny,
            summary: "float accumulation must use the ordered-fold helpers",
            rationale: "Float addition is non-associative; an ad-hoc `.sum::<f64>()`/`.fold(0.0, \
                        ..)` invites order-dependent results when iteration order changes. Fold \
                        through hermes_serve::tallies::{ordered_sum, ordered_mean}.",
            check: check_s2,
        },
        Rule {
            id: "H1",
            severity: Severity::Deny,
            summary: "report/stats returns must be #[must_use]",
            rationale: "A dropped report silently discards the only evidence a simulation ran. \
                        Listed report structs carry #[must_use] at the declaration; pub fns \
                        returning other listed stats types annotate the fn itself.",
            check: check_h1,
        },
    ]
}

/// The rule registry entry for `id`, if any.
pub fn by_id(id: &str) -> Option<&'static Rule> {
    all().iter().find(|r| r.id == id)
}

/// `true` for the primitive numeric type names S1 watches after `as`.
fn is_numeric_type(text: &str) -> bool {
    matches!(
        text,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

fn check_d1(file: &SourceFile, _rc: &RuleConfig, _ctx: &RuleContext) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..file.sig_len() {
        if file.sig_kind(i) != TokenKind::Ident {
            continue;
        }
        let text = file.sig_text(i);
        if text == "HashMap" || text == "HashSet" {
            let ordered = if text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(RawFinding {
                offset: file.sig_tok(i).start,
                message: format!(
                    "`{text}` iterates in nondeterministic order; use `{ordered}` or an \
                     indexed Vec to keep reports bitwise-reproducible"
                ),
            });
        }
    }
    out
}

fn check_d2(file: &SourceFile, _rc: &RuleConfig, _ctx: &RuleContext) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..file.sig_len() {
        if file.sig_kind(i) != TokenKind::Ident {
            continue;
        }
        let text = file.sig_text(i);
        if text == "Instant" || text == "SystemTime" {
            out.push(RawFinding {
                offset: file.sig_tok(i).start,
                message: format!(
                    "`{text}` reads the wall clock; the simulator owns the virtual clock and \
                     real time is only allowed in crates/bench measurement code"
                ),
            });
        }
    }
    out
}

fn check_d3(file: &SourceFile, _rc: &RuleConfig, _ctx: &RuleContext) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..file.sig_len() {
        if file.sig_kind(i) != TokenKind::Ident {
            continue;
        }
        let text = file.sig_text(i);
        // `.unwrap(` / `.expect(` — exact ident match, so `unwrap_or`,
        // `unwrap_or_else` and `expect_err`-free helper names never trip.
        if (text == "unwrap" || text == "expect")
            && i > 0
            && file.sig_text(i - 1) == "."
            && i + 1 < file.sig_len()
            && file.sig_text(i + 1) == "("
        {
            out.push(RawFinding {
                offset: file.sig_tok(i).start,
                message: format!(
                    "`.{text}()` aborts the process; propagate through HermesError (`?`, \
                     `ok_or_else`) or restructure so the state is provably present"
                ),
            });
        }
        // `panic!` — requires the adjacent `!` so `std::panic::catch_unwind`
        // style paths do not trip.
        if text == "panic" && i + 1 < file.sig_len() && file.sig_text(i + 1) == "!" {
            out.push(RawFinding {
                offset: file.sig_tok(i).start,
                message: "`panic!` aborts the process; return a HermesError variant instead"
                    .to_string(),
            });
        }
    }
    out
}

fn check_s1(file: &SourceFile, _rc: &RuleConfig, _ctx: &RuleContext) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..file.sig_len().saturating_sub(1) {
        if file.sig_kind(i) != TokenKind::Ident || file.sig_text(i) != "as" {
            continue;
        }
        if file.sig_kind(i + 1) == TokenKind::Ident && is_numeric_type(file.sig_text(i + 1)) {
            out.push(RawFinding {
                offset: file.sig_tok(i).start,
                message: format!(
                    "`as {}` can silently truncate or lose precision in KV/token accounting; \
                     use the checked helpers in hermes_core::cast (or TryFrom)",
                    file.sig_text(i + 1)
                ),
            });
        }
    }
    out
}

fn check_s2(file: &SourceFile, _rc: &RuleConfig, _ctx: &RuleContext) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..file.sig_len() {
        if file.sig_kind(i) != TokenKind::Ident {
            continue;
        }
        let text = file.sig_text(i);
        // `.sum::<f64>()` / `.product::<f64>()` — tokens: ident :: < f64 >.
        if (text == "sum" || text == "product")
            && i >= 1
            && file.sig_text(i - 1) == "."
            && i + 4 < file.sig_len()
            && file.sig_text(i + 1) == ":"
            && file.sig_text(i + 2) == ":"
            && file.sig_text(i + 3) == "<"
            && matches!(file.sig_text(i + 4), "f64" | "f32")
        {
            out.push(RawFinding {
                offset: file.sig_tok(i).start,
                message: format!(
                    "raw `.{text}::<{}>()` is order-sensitive; accumulate through \
                     hermes_serve::tallies::ordered_sum / ordered_mean",
                    file.sig_text(i + 4)
                ),
            });
        }
        // `.fold(0.0, ..)` / `.fold(-1.5, ..)` / `.fold(0f64, ..)` — a fold
        // whose seed is a float literal is a float accumulation.
        if text == "fold" && i >= 1 && file.sig_text(i - 1) == "." {
            let mut j = i + 1;
            if j < file.sig_len() && file.sig_text(j) == "(" {
                j += 1;
                if j < file.sig_len() && file.sig_text(j) == "-" {
                    j += 1;
                }
                if j < file.sig_len() && file.sig_kind(j) == TokenKind::Number {
                    let n = file.sig_text(j);
                    if n.contains('.') || n.ends_with("f64") || n.ends_with("f32") {
                        out.push(RawFinding {
                            offset: file.sig_tok(i).start,
                            message: "float `.fold(..)` is order-sensitive; accumulate through \
                                      hermes_serve::tallies::ordered_sum / ordered_mean"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
    out
}

/// H1: walks the file once, tracking brace depth and the enclosing `impl`
/// type (to resolve `-> Self`), and flags (a) declarations of listed structs
/// that lack `#[must_use]` and (b) pub fns returning a listed type where
/// neither the fn nor the returned struct's declaration is `#[must_use]`.
fn check_h1(file: &SourceFile, rc: &RuleConfig, ctx: &RuleContext) -> Vec<RawFinding> {
    let structs: BTreeSet<&str> = rc.structs.iter().map(String::as_str).collect();
    let types: BTreeSet<&str> = rc.types.iter().map(String::as_str).collect();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut impl_stack: Vec<(Option<String>, usize)> = Vec::new();
    let mut pending_impl: Option<Option<String>> = None;
    for i in 0..file.sig_len() {
        match file.sig_text(i) {
            "{" => {
                depth += 1;
                if let Some(target) = pending_impl.take() {
                    impl_stack.push((target, depth));
                }
            }
            "}" => {
                if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                    impl_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            "impl" if file.sig_kind(i) == TokenKind::Ident => {
                pending_impl = Some(impl_target(file, i));
            }
            "struct"
                if file.sig_kind(i) == TokenKind::Ident
                    && i + 1 < file.sig_len()
                    && file.sig_kind(i + 1) == TokenKind::Ident
                    && structs.contains(file.sig_text(i + 1))
                    && !has_must_use_attr(file, i) =>
            {
                out.push(RawFinding {
                    offset: file.sig_tok(i + 1).start,
                    message: format!(
                        "report struct `{}` must carry #[must_use] at its declaration",
                        file.sig_text(i + 1)
                    ),
                });
            }
            "fn" if file.sig_kind(i) == TokenKind::Ident => {
                if !is_pub_item(file, i) {
                    continue;
                }
                let Some((ret, name_offset)) = fn_return_type(file, i) else {
                    continue;
                };
                let ret = if ret == "Self" {
                    match impl_stack.last().and_then(|(t, _)| t.clone()) {
                        Some(name) => name,
                        None => continue,
                    }
                } else {
                    ret
                };
                if !types.contains(ret.as_str()) {
                    continue;
                }
                // Satisfied either by the struct-level annotation (which
                // propagates to every return site) or a fn-level attribute.
                if ctx.must_use_structs.contains(&ret) || has_must_use_attr(file, i) {
                    continue;
                }
                out.push(RawFinding {
                    offset: name_offset,
                    message: format!(
                        "pub fn returning `{ret}` must be #[must_use] (on the fn, or via \
                         #[must_use] on the struct declaration — not both, \
                         clippy::double_must_use)"
                    ),
                });
            }
            _ => {}
        }
    }
    out
}

/// Collect the names of structs declared with `#[must_use]` in `file` — the
/// H1 first pass, run over every checked file before any rule executes.
pub fn collect_must_use_structs(file: &SourceFile, into: &mut BTreeSet<String>) {
    for i in 0..file.sig_len().saturating_sub(1) {
        if file.sig_kind(i) == TokenKind::Ident
            && file.sig_text(i) == "struct"
            && file.sig_kind(i + 1) == TokenKind::Ident
            && has_must_use_attr(file, i)
        {
            into.insert(file.sig_text(i + 1).to_string());
        }
    }
}

/// Visibility / qualifier tokens that may sit between an item's attributes
/// and its `fn` / `struct` keyword (`pub(crate) const unsafe …`).
fn is_item_qualifier(file: &SourceFile, i: usize) -> bool {
    matches!(
        file.sig_text(i),
        "pub"
            | "crate"
            | "super"
            | "self"
            | "in"
            | "const"
            | "async"
            | "unsafe"
            | "extern"
            | "default"
            | "("
            | ")"
    ) || file.sig_kind(i) == TokenKind::Str
}

/// `true` if the item whose keyword sits at significant index `item` is
/// `pub` (including `pub(crate)` / `pub(super)` — restricted visibility still
/// exposes the return value to other modules).
fn is_pub_item(file: &SourceFile, item: usize) -> bool {
    let mut i = item;
    while i > 0 && is_item_qualifier(file, i - 1) {
        if file.sig_text(i - 1) == "pub" {
            return true;
        }
        i -= 1;
    }
    false
}

/// Walk back from the item keyword at significant index `item`, over its
/// qualifiers and then its `#[…]` attribute groups; `true` if any attribute
/// mentions `must_use` (`#[must_use]`, `#[must_use = "…"]`).
fn has_must_use_attr(file: &SourceFile, item: usize) -> bool {
    let mut i = item;
    while i > 0 && is_item_qualifier(file, i - 1) {
        i -= 1;
    }
    // Attribute groups directly above: …, #[attr2], #[attr1], <item>.
    while i >= 1 && file.sig_text(i - 1) == "]" {
        // Find the matching `[` going back.
        let mut depth = 0usize;
        let mut j = i - 1;
        loop {
            match file.sig_text(j) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || file.sig_text(j - 1) != "#" {
            return false;
        }
        for k in j..i {
            if file.sig_kind(k) == TokenKind::Ident && file.sig_text(k) == "must_use" {
                return true;
            }
        }
        i = j - 1;
    }
    false
}

/// Skip a balanced `<…>` generic group starting at significant index `open`
/// (which must be `<`); returns the index just past the matching `>`.
/// `>>` lexes as two `>` puncts, so plain counting suffices.
fn skip_angles(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < file.sig_len() {
        match file.sig_text(i) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            "{" | ";" => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// The type an `impl` block (at significant index `i`) targets: the last
/// path segment of the type after `for` (trait impls) or of the sole type
/// (inherent impls). `None` for shapes we cannot name (`impl<T> Trait for
/// Vec<T>` still resolves to `Vec`; only degenerate headers yield `None`).
fn impl_target(file: &SourceFile, i: usize) -> Option<String> {
    let mut j = i + 1;
    if j < file.sig_len() && file.sig_text(j) == "<" {
        j = skip_angles(file, j)?;
    }
    let mut name = None;
    while j < file.sig_len() {
        match file.sig_text(j) {
            "{" | "where" | ";" => break,
            "for" if file.sig_kind(j) == TokenKind::Ident => {
                name = None;
                j += 1;
            }
            "<" => match skip_angles(file, j) {
                Some(next) => j = next,
                None => break,
            },
            _ => {
                if file.sig_kind(j) == TokenKind::Ident {
                    name = Some(file.sig_text(j).to_string());
                }
                j += 1;
            }
        }
    }
    name
}

/// For the fn at significant index `i` ("fn"), the last path segment of a
/// plain by-value return type, plus the byte offset of the fn's name.
/// `None` when there is no return type or it is a reference / `impl Trait` /
/// tuple / generic wrapper (`Result<…>` resolves to `Result`, which callers
/// then skip because it is not a listed report type).
fn fn_return_type(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let name_idx = i + 1;
    if name_idx >= file.sig_len() || file.sig_kind(name_idx) != TokenKind::Ident {
        return None;
    }
    let name_offset = file.sig_tok(name_idx).start;
    let mut j = name_idx + 1;
    if j < file.sig_len() && file.sig_text(j) == "<" {
        j = skip_angles(file, j)?;
    }
    if j >= file.sig_len() || file.sig_text(j) != "(" {
        return None;
    }
    // Match the parameter list.
    let mut depth = 0usize;
    while j < file.sig_len() {
        match file.sig_text(j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j += 1;
    // `-> Type` lexes as Punct("-") Punct(">").
    if j + 1 >= file.sig_len() || file.sig_text(j) != "-" || file.sig_text(j + 1) != ">" {
        return None;
    }
    j += 2;
    if j >= file.sig_len() {
        return None;
    }
    // By-value plain paths only: references, impl Trait, dyn, tuples and
    // slices are out of scope for H1.
    if matches!(file.sig_text(j), "&" | "impl" | "dyn" | "(" | "[") {
        return None;
    }
    let mut name = None;
    while j < file.sig_len() {
        match file.sig_text(j) {
            "<" | "{" | ";" | "where" => break,
            ":" => j += 1,
            _ => {
                if file.sig_kind(j) == TokenKind::Ident {
                    name = Some(file.sig_text(j).to_string());
                } else {
                    break;
                }
                j += 1;
            }
        }
    }
    name.map(|n| (n, name_offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleConfig;
    use crate::SourceFile;

    fn file(src: &str) -> SourceFile {
        SourceFile::for_tests("crates/serve/src/x.rs", src)
    }

    fn run(id: &str, src: &str) -> Vec<RawFinding> {
        run_with(id, src, &RuleConfig::default(), &RuleContext::default())
    }

    fn run_with(id: &str, src: &str, rc: &RuleConfig, ctx: &RuleContext) -> Vec<RawFinding> {
        let rule = by_id(id).unwrap();
        (rule.check)(&file(src), rc, ctx)
    }

    #[test]
    fn d1_ignores_strings_and_comments() {
        assert_eq!(run("D1", "// HashMap\nlet s = \"HashSet\";").len(), 0);
        assert_eq!(
            run(
                "D1",
                "use std::collections::HashMap;\nlet m = HashMap::new();"
            )
            .len(),
            2
        );
    }

    #[test]
    fn d3_matches_only_real_calls() {
        assert_eq!(
            run("D3", "x.unwrap_or(0); x.unwrap_or_else(f); unwrap(x);").len(),
            0
        );
        assert_eq!(
            run("D3", "x.unwrap(); y.expect(\"msg\"); panic!(\"no\");").len(),
            3
        );
        assert_eq!(run("D3", "std::panic::catch_unwind(f)").len(), 0);
    }

    #[test]
    fn s1_flags_numeric_as_only() {
        assert_eq!(run("S1", "let x = y as u64; let z = w as f64;").len(), 2);
        assert_eq!(
            run("S1", "use foo as bar; let b: &dyn Any = &x as &dyn Any;").len(),
            0
        );
    }

    #[test]
    fn s2_flags_float_folds() {
        assert_eq!(run("S2", "v.iter().sum::<f64>()").len(), 1);
        assert_eq!(run("S2", "v.iter().fold(0.0, |a, b| a + b)").len(), 1);
        assert_eq!(
            run(
                "S2",
                "v.iter().sum::<u64>(); v.iter().fold(0, |a, b| a + b)"
            )
            .len(),
            0
        );
    }

    #[test]
    fn h1_struct_annotation_satisfies_fn() {
        let rc = RuleConfig {
            structs: vec!["Report".to_string()],
            types: vec!["Report".to_string()],
            ..RuleConfig::default()
        };
        let mut ctx = RuleContext::default();
        // Unannotated struct declaration + unannotated pub fn: two findings.
        let src = "pub struct Report { x: u64 }\n\
                   impl Report { pub fn build() -> Self { Report { x: 0 } } }";
        assert_eq!(run_with("H1", src, &rc, &ctx).len(), 2);
        // Annotated declaration: both findings clear (fn inherits).
        let src = "#[must_use]\npub struct Report { x: u64 }\n\
                   impl Report { pub fn build() -> Self { Report { x: 0 } } }";
        collect_must_use_structs(&file(src), &mut ctx.must_use_structs);
        assert!(ctx.must_use_structs.contains("Report"));
        assert_eq!(run_with("H1", src, &rc, &ctx).len(), 0);
    }

    #[test]
    fn h1_fn_attr_satisfies_and_result_skipped() {
        let rc = RuleConfig {
            types: vec!["Stats".to_string()],
            ..RuleConfig::default()
        };
        let ctx = RuleContext::default();
        assert_eq!(
            run_with(
                "H1",
                "#[must_use]\npub fn mk() -> Stats { Stats }",
                &rc,
                &ctx
            )
            .len(),
            0
        );
        assert_eq!(
            run_with("H1", "pub fn mk() -> Stats { Stats }", &rc, &ctx).len(),
            1
        );
        // Result/Option wrappers and private fns are out of scope.
        assert_eq!(
            run_with(
                "H1",
                "pub fn mk() -> Result<Stats, E> { Ok(Stats) }",
                &rc,
                &ctx
            )
            .len(),
            0
        );
        assert_eq!(
            run_with("H1", "fn mk() -> Stats { Stats }", &rc, &ctx).len(),
            0
        );
    }

    #[test]
    fn h1_resolves_self_through_trait_impls() {
        let rc = RuleConfig {
            types: vec!["Stats".to_string()],
            ..RuleConfig::default()
        };
        let ctx = RuleContext::default();
        // `impl Merge for Stats` — Self resolves to Stats.
        let src = "impl Merge for Stats { pub fn merged(a: &Self) -> Self { a.clone() } }";
        assert_eq!(run_with("H1", src, &rc, &ctx).len(), 1);
        // Other type: no finding.
        let src = "impl Merge for Other { pub fn merged(a: &Self) -> Self { a.clone() } }";
        assert_eq!(run_with("H1", src, &rc, &ctx).len(), 0);
    }
}
