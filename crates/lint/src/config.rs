//! `lint.toml`: per-rule path scoping for the workspace.
//!
//! The config file is parsed by a small hand-rolled TOML-subset reader
//! (tables, string / boolean / string-array values, `#` comments — exactly
//! what `lint.toml` needs), because this crate is dependency-free by design.
//!
//! Scoping model: every rule carries `include` / `exclude` path-prefix
//! lists (relative to the workspace root, `/`-separated). A file is in
//! scope when its path starts with an `include` entry and no `exclude`
//! entry. On top of that:
//!
//! - `skip_tests = true` exempts `#[cfg(test)] mod … { … }` regions, files
//!   listed in `[workspace] test_files` (modules declared
//!   `#[cfg(test)] mod …;`), and anything under a `tests/` directory.
//! - `library_only = true` additionally exempts binaries (`src/bin/`,
//!   `src/main.rs`), `examples/` and `benches/` — used by rules that only
//!   bind library code (D3).

use std::collections::BTreeMap;

/// Scoping and parameters of one rule.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Path prefixes the rule applies to (empty ⇒ applies nowhere).
    pub include: Vec<String>,
    /// Path prefixes carved back out of `include`.
    pub exclude: Vec<String>,
    /// Skip `#[cfg(test)]` regions, configured test-only files and
    /// `tests/` directories.
    pub skip_tests: bool,
    /// Apply to library code only (additionally skip bins, examples and
    /// benches).
    pub library_only: bool,
    /// H1: struct names that must carry `#[must_use]` at their declaration.
    pub structs: Vec<String>,
    /// H1: type names whose by-value `pub fn` returns must be `#[must_use]`
    /// (satisfied either on the fn or by a `#[must_use]` struct
    /// declaration).
    pub types: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories `--workspace` walks, relative to the root.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the walk entirely (fixtures, vendored
    /// stubs, build output).
    pub exclude: Vec<String>,
    /// Files whose whole content is compiled only under `#[cfg(test)]`
    /// (declared `#[cfg(test)] mod …;` from their parent module).
    pub test_files: Vec<String>,
    /// Per-rule scoping, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// The scoping of `rule`, or an empty (applies-nowhere) default.
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// Parse the TOML subset of `lint.toml`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section: Vec<String> = Vec::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((lineno, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.split('.').map(|s| s.trim().to_string()).collect();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected `key = value`", lineno + 1));
            };
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // Multiline arrays: keep consuming lines until the bracket
            // closes (string values in lint.toml never contain brackets).
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("lint.toml:{}: unterminated array", lineno + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let parsed = Value::parse(&value)
                .map_err(|e| format!("lint.toml:{}: {} (key `{}`)", lineno + 1, e, key))?;
            config.set(&section, &key, parsed, lineno + 1)?;
        }
        Ok(config)
    }

    fn set(
        &mut self,
        section: &[String],
        key: &str,
        value: Value,
        lineno: usize,
    ) -> Result<(), String> {
        let unexpected = |what: &str| Err(format!("lint.toml:{lineno}: unexpected {what} `{key}`"));
        match section {
            [s] if s == "workspace" => match (key, value) {
                ("roots", Value::Strings(v)) => self.roots = v,
                ("exclude", Value::Strings(v)) => self.exclude = v,
                ("test_files", Value::Strings(v)) => self.test_files = v,
                _ => return unexpected("workspace key"),
            },
            [s, id] if s == "rules" => {
                let rule = self.rules.entry(id.clone()).or_default();
                match (key, value) {
                    ("include", Value::Strings(v)) => rule.include = v,
                    ("exclude", Value::Strings(v)) => rule.exclude = v,
                    ("skip_tests", Value::Bool(b)) => rule.skip_tests = b,
                    ("library_only", Value::Bool(b)) => rule.library_only = b,
                    ("structs", Value::Strings(v)) => rule.structs = v,
                    ("types", Value::Strings(v)) => rule.types = v,
                    _ => return unexpected("rule key"),
                }
            }
            _ => {
                return Err(format!(
                    "lint.toml:{lineno}: unknown section [{}]",
                    section.join(".")
                ))
            }
        }
        Ok(())
    }
}

/// A parsed TOML-subset value.
enum Value {
    Bool(bool),
    Strings(Vec<String>),
}

impl Value {
    fn parse(text: &str) -> Result<Value, String> {
        match text {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
            let mut items = Vec::new();
            for item in inner.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue; // trailing comma
                }
                items.push(parse_string(item)?);
            }
            return Ok(Value::Strings(items));
        }
        // A bare string value is a one-element list: every string-valued
        // key in lint.toml is list-shaped.
        Ok(Value::Strings(vec![parse_string(text)?]))
    }
}

fn parse_string(text: &str) -> Result<String, String> {
    text.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{text}`"))
}

/// Strip a `#` comment, respecting (simple, escape-free) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_bools() {
        let toml = r##"
# top comment
[workspace]
roots = ["crates", "src"]
exclude = ["vendor"]   # inline comment
test_files = [
    "crates/serve/src/simulator_tests.rs",
    "crates/serve/src/prefix_props.rs",
]

[rules.D1]
include = ["crates/serve", "crates/core"]
skip_tests = false

[rules.H1]
include = ["crates/core/src"]
skip_tests = true
structs = ["ServingReport"]
types = ["ServingReport", "DistributionStats"]
"##;
        let config = Config::parse(toml).unwrap();
        assert_eq!(config.roots, vec!["crates", "src"]);
        assert_eq!(config.test_files.len(), 2);
        let d1 = config.rule("D1");
        assert_eq!(d1.include, vec!["crates/serve", "crates/core"]);
        assert!(!d1.skip_tests);
        let h1 = config.rule("H1");
        assert!(h1.skip_tests);
        assert_eq!(h1.structs, vec!["ServingReport"]);
        assert_eq!(h1.types.len(), 2);
        // Unknown rule: applies nowhere.
        assert!(config.rule("Z9").include.is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[workspace]\nroots").is_err());
        assert!(Config::parse("[bogus]\nkey = true").is_err());
        assert!(Config::parse("[workspace]\nroots = [\"a\"").is_err());
        assert!(Config::parse("[rules.D1]\ninclude = [unquoted]").is_err());
        assert!(Config::parse("[workspace]\nwhatever = true").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let config = Config::parse("[workspace]\nroots = [\"a#b\"]").unwrap();
        assert_eq!(config.roots, vec!["a#b"]);
    }
}
