//! End-to-end run over the seeded-violation fixtures in `tests/fixtures/`:
//! one file per rule plus a clean file and a suppression demo, linted with
//! the fixtures-local `lint.toml`. Per-rule diagnostic counts are pinned so
//! a rule regression in either direction — a rule that stops firing, or one
//! that starts over-firing — fails loudly. CI runs the same directory
//! through the `hermes-lint` binary as a second, process-level check.

use std::path::Path;

use hermes_lint::config::Config;
use hermes_lint::{relative_path, run, walk_workspace, LintReport, SourceFile};

fn lint_fixtures() -> LintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("fixtures lint.toml");
    let config = Config::parse(&text).expect("fixtures lint.toml parses");
    let paths = walk_workspace(&root, &config).expect("fixture walk");
    let files: Vec<SourceFile> = paths
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).expect("fixture file");
            SourceFile::new(relative_path(&root, p), src, &config)
        })
        .collect();
    assert_eq!(files.len(), 8, "one fixture per rule + clean + sup");
    run(&files, &config)
}

fn count(report: &LintReport, rule: &str, file: &str) -> usize {
    report
        .active
        .iter()
        .filter(|d| d.rule == rule && d.path == file)
        .count()
}

#[test]
fn each_rule_fires_on_its_seeded_fixture() {
    let report = lint_fixtures();
    assert_eq!(count(&report, "D1", "d1.rs"), 4);
    assert_eq!(count(&report, "D2", "d2.rs"), 4);
    assert_eq!(count(&report, "D3", "d3.rs"), 3);
    assert_eq!(count(&report, "S1", "s1.rs"), 3);
    assert_eq!(count(&report, "S2", "s2.rs"), 2);
    assert_eq!(count(&report, "H1", "h1.rs"), 2);
    assert!(report.failed());
}

#[test]
fn the_clean_fixture_is_clean() {
    let report = lint_fixtures();
    assert!(
        !report.active.iter().any(|d| d.path == "clean.rs"),
        "clean.rs must produce no diagnostics"
    );
    assert!(!report.suppressed.iter().any(|d| d.path == "clean.rs"));
}

#[test]
fn suppressions_silence_only_with_a_reason() {
    let report = lint_fixtures();
    // The reasoned allow on the `use` line silences exactly one D1.
    let suppressed: Vec<_> = report
        .suppressed
        .iter()
        .filter(|d| d.path == "sup.rs")
        .collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, "D1");
    assert!(suppressed[0]
        .suppressed_reason
        .as_deref()
        .is_some_and(|r| r.contains("reasoned suppression")));
    // The reasonless allow silences nothing and is itself a SUP diagnostic.
    assert_eq!(count(&report, "SUP", "sup.rs"), 1);
    assert_eq!(count(&report, "D1", "sup.rs"), 2);
}

#[test]
fn total_diagnostic_count_is_pinned() {
    // The headline regression number: any rule or fixture change must
    // consciously update it (CI re-derives the same number through the
    // binary's --json output).
    let report = lint_fixtures();
    assert_eq!(report.active.len(), 21);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.checked_files, 8);
}
