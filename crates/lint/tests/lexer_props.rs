//! Property tests of the hand-rolled lexer: totality (never panics) and
//! lossless span tiling, on arbitrary bytes and on strings drawn from an
//! alphabet of Rust-lexing hazards (quotes, hash fences, comment openers,
//! escapes, multibyte characters).

use proptest::prelude::*;

use hermes_lint::lexer::lex;

/// The tiling invariant: tokens cover `src` exactly — in order, non-empty,
/// no gaps, no overlaps — so concatenating their texts reproduces the
/// source byte-for-byte.
fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut cursor = 0usize;
    let mut rebuilt = String::new();
    for t in &tokens {
        assert_eq!(
            t.start, cursor,
            "gap or overlap at byte {cursor} in {src:?}"
        );
        assert!(t.end > t.start, "empty token at byte {cursor} in {src:?}");
        rebuilt.push_str(t.text(src));
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "tokens stop short in {src:?}");
    assert_eq!(rebuilt, src);
}

/// Characters that drive the lexer's hard paths: string/char/lifetime
/// quoting, raw-string hash fences, comment openers and closers, numeric
/// shapes, escapes, and multibyte code points (span arithmetic is in bytes,
/// so these catch any char-boundary slip).
const HAZARDS: &[char] = &[
    '"', '\'', '#', 'r', 'b', '\\', '/', '*', '\n', '{', '}', '(', ')', '<', '>', '.', ':', '!',
    '=', '_', ' ', '0', '9', 'x', 'e', 'a', '€', 'λ',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_tiles_arbitrary_bytes(raw in prop::collection::vec(0u32..256, 0..200)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        // Lossy decoding maps invalid sequences to U+FFFD; the lexer sees
        // every possible valid string shape, including control bytes.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src);
    }

    #[test]
    fn lexer_tiles_hazard_soup(picks in prop::collection::vec(0usize..28, 0..120)) {
        let src: String = picks.iter().map(|&i| HAZARDS[i]).collect();
        assert_tiles(&src);
    }
}

#[test]
fn hazard_alphabet_matches_strategy_bound() {
    // The `0usize..28` range above must stay in lockstep with the table.
    assert_eq!(HAZARDS.len(), 28);
}
