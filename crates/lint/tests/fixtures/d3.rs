//! D3 seed: panics in library code.
//! Expected: 3 diagnostics (`unwrap`, `expect`, `panic!`); the `unwrap` in
//! the `#[cfg(test)]` module is exempt under `skip_tests`.

pub fn first_plus_last(v: &[u32]) -> u32 {
    let head = v.first().unwrap();
    let tail = v.last().expect("non-empty");
    if head > tail {
        panic!("unsorted");
    }
    *head + *tail
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(1).unwrap();
    }
}
