//! H1 seed: a report type missing `#[must_use]`.
//! Expected: 2 diagnostics (the bare struct declaration, and the `pub fn`
//! returning it without the struct or the fn carrying the attribute).

pub struct FixtureReport {
    pub total: u64,
}

pub fn build() -> FixtureReport {
    FixtureReport { total: 0 }
}
