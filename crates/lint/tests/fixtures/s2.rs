//! S2 seed: float accumulation outside the ordered-fold helpers.
//! Expected: 2 diagnostics (a `.sum::<f64>()` and a float-seeded `.fold`).

pub fn total(values: &[f64]) -> f64 {
    values.iter().sum::<f64>()
}

pub fn total_fold(values: &[f64]) -> f64 {
    values.iter().fold(0.0, |acc, v| acc + v)
}
