//! S1 seed: `as` numeric casts in accounting code.
//! Expected: 3 diagnostics (one `as u64`, two `as f64`).

pub fn blocks(tokens: usize) -> u64 {
    tokens as u64
}

pub fn ratio(used: u64, cap: u64) -> f64 {
    used as f64 / cap as f64
}
