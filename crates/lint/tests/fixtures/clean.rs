//! Clean seed: every rule's trigger appears only in comments, strings, or
//! rule-approved form. Expected: zero diagnostics. Keys in a `HashMap`
//! would iterate nondeterministically; mentioning HashMap, Instant::now(),
//! x.unwrap() or panic! in this doc comment must not trip anything.

use std::collections::BTreeMap;

#[must_use]
pub struct CleanReport {
    pub entries: BTreeMap<u32, u64>,
}

pub fn build(raw: &[(u32, u64)]) -> CleanReport {
    let mut entries = BTreeMap::new();
    for &(k, v) in raw {
        entries.insert(k, v);
    }
    CleanReport { entries }
}

pub fn describe() -> &'static str {
    // Strings never trip rules either: the lexer knows this is data.
    "HashMap::new() Instant::now() x.unwrap() panic! tokens as u64 sum::<f64>()"
}

/// An explicit left-to-right fold, the S2-approved accumulation shape.
pub fn total(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    for v in values {
        acc += v;
    }
    acc
}

/// Checked widening, the S1-approved cast shape.
pub fn widen(x: u32) -> u64 {
    u64::from(x)
}
