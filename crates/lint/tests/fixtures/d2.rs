//! D2 seed: wall-clock reads outside bench code.
//! Expected: 4 diagnostics (two `Instant` mentions, two `SystemTime`).

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
