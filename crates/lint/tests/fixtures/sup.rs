//! Suppression seed.
//! Expected: 1 suppressed D1 (the reasoned allow on the `use` line), 1 SUP
//! diagnostic for the reasonless allow, and 2 active D1 diagnostics — the
//! reasonless allow silences nothing.

use std::collections::HashMap; // hermes-lint: allow(D1, reason = "fixture: demonstrates a reasoned suppression")

// hermes-lint: allow(D1)
pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}
