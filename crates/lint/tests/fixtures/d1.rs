//! D1 seed: hash-ordered containers in deterministic code.
//! Expected: 4 diagnostics (three `HashMap` mentions, one `HashSet`).

use std::collections::HashMap;

pub fn count() -> usize {
    let map: HashMap<u32, u32> = HashMap::new();
    let set = std::collections::HashSet::<u8>::new();
    map.len() + set.len()
}
