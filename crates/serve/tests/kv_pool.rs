//! Property tests of the paged KV-cache allocator ([`hermes_serve::KvPool`]).
//!
//! Random allocate/grow/release interleavings across many slots, checked
//! after every operation against the allocator's core invariants:
//!
//! - **No double allocation** — a block id is owned by at most one page
//!   table at a time; conservation (`used_blocks == Σ held`) can only hold
//!   across reuse if no id ever serves two tables.
//! - **Alloc/free conservation** — `used_blocks` always equals the sum of
//!   held blocks and the peak is a monotone high-water mark within any
//!   bounded capacity.
//! - **Bounded internal fragmentation** — a sequence holding the blocks
//!   for a token context wastes less than one block: `held * block_tokens
//!   - tokens < block_tokens`.
//! - **Swap round-trip identity** — releasing a page table and immediately
//!   re-allocating the same block count (a swap-out followed by a swap-in)
//!   restores the exact held/used counts.
//!
//! The vendored `proptest` stub samples plain integer ranges, so each op
//! is decoded from one sampled `u64`.

use proptest::prelude::*;

use hermes_serve::KvPool;

const SLOTS: usize = 6;

/// Check every structural invariant of the pool against the shadow model
/// (`held`: blocks per slot, `tokens`: the context each slot was sized
/// for).
fn check_invariants(pool: &KvPool, held: &[u64], tokens: &[usize]) {
    let total_held: u64 = held.iter().sum();
    assert_eq!(pool.used_blocks(), total_held, "alloc/free conservation");
    if let Some(cap) = pool.capacity_blocks() {
        assert!(pool.used_blocks() <= cap, "capacity respected");
        assert!(pool.peak_blocks() <= cap, "peak within capacity");
    }
    assert!(
        pool.peak_blocks() >= pool.used_blocks(),
        "peak is a high-water mark"
    );
    for (slot, &blocks) in held.iter().enumerate() {
        assert_eq!(pool.held(slot), blocks, "per-slot held count");
        if blocks > 0 {
            // Internal fragmentation bound: strictly less than one block
            // of slack per sequence.
            let slack = blocks * pool.block_tokens() as u64 - tokens[slot] as u64;
            assert!(
                slack < pool.block_tokens() as u64,
                "slot {slot} wastes {slack} tokens (block_tokens {})",
                pool.block_tokens()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_interleavings_uphold_the_pool_invariants(
        block_tokens in 1usize..17,
        capacity_sel in 0u64..64,
        ops in proptest::collection::vec(0u64..1_000_000, 1..80),
    ) {
        // capacity_sel < 8 means unbounded; otherwise a tight bound.
        let capacity = (capacity_sel >= 8).then_some(capacity_sel);
        let block_bytes = block_tokens as u64 * 512;
        let mut pool = KvPool::new(block_tokens, block_bytes, capacity, SLOTS);
        // Shadow model: blocks held per slot and the context each was
        // sized for.
        let mut held = [0u64; SLOTS];
        let mut tokens = vec![0usize; SLOTS];

        for op in ops {
            let slot = (op / 4) as usize % SLOTS;
            match op % 4 {
                // Admit a context into an empty slot, if the pool has room.
                0 => {
                    if held[slot] != 0 {
                        continue;
                    }
                    let t = 1 + (op / 64) as usize % 96;
                    let need = pool.blocks_for_tokens(t);
                    prop_assert_eq!(need, t.div_ceil(block_tokens) as u64);
                    if pool.fits(need) {
                        pool.allocate(slot, need);
                        held[slot] = need;
                        tokens[slot] = t;
                    }
                }
                // Grow by one block: a decoded token crossed a boundary.
                1 => {
                    if held[slot] == 0 || !pool.fits(1) {
                        continue;
                    }
                    pool.grow(slot);
                    held[slot] += 1;
                    // The new block stores this step's token; model the
                    // first token landing in it.
                    tokens[slot] = (held[slot] - 1) as usize * block_tokens + 1;
                }
                // Release everything (eviction or completion).
                2 => {
                    let freed = pool.release(slot);
                    prop_assert_eq!(freed, held[slot], "release returns what was held");
                    held[slot] = 0;
                    tokens[slot] = 0;
                }
                // Swap round trip: release then re-allocate the same count.
                _ => {
                    if held[slot] == 0 {
                        continue;
                    }
                    let before_used = pool.used_blocks();
                    let blocks = pool.held(slot);
                    let freed = pool.release(slot);
                    prop_assert_eq!(freed, blocks);
                    prop_assert!(pool.fits(blocks), "a swap-in of freed pages always fits");
                    pool.allocate(slot, blocks);
                    // Round-trip identity: the slot and the pool end up
                    // exactly where they started.
                    prop_assert_eq!(pool.held(slot), blocks);
                    prop_assert_eq!(pool.used_blocks(), before_used);
                }
            }
            check_invariants(&pool, &held, &tokens);
        }
    }

    /// Conservation across free-list reuse: releasing one slot and handing
    /// its blocks to another leaves the total unchanged and both per-slot
    /// counts exact — only possible if no block id serves two tables.
    #[test]
    fn no_block_is_double_allocated(
        block_tokens in 1usize..9,
        seeds in proptest::collection::vec(0u64..1_000, 1..12),
    ) {
        let mut pool = KvPool::new(block_tokens, 64, Some(24), SLOTS);
        let mut held = [0u64; SLOTS];
        for seed in seeds {
            let slot = (seed as usize) % SLOTS;
            let blocks = 1 + seed / 8 % 7;
            if pool.fits(blocks) {
                pool.allocate(slot, blocks);
                held[slot] += blocks;
            }
        }
        let total: u64 = held.iter().sum();
        prop_assert_eq!(pool.used_blocks(), total);
        // Release one slot and re-allocate elsewhere: the reused ids must
        // leave the totals exact.
        let freed = pool.release(0);
        prop_assert_eq!(freed, held[0]);
        held[0] = 0;
        if freed > 0 {
            pool.allocate(1, freed);
            held[1] += freed;
        }
        let total: u64 = held.iter().sum();
        prop_assert_eq!(pool.used_blocks(), total);
        for (slot, &blocks) in held.iter().enumerate() {
            prop_assert_eq!(pool.held(slot), blocks, "slot {}", slot);
        }
    }
}
