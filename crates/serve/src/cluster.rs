//! Multi-replica cluster serving: N [`ReplicaSim`]s advanced on one shared
//! virtual clock behind a routing policy.
//!
//! The paper's affordability argument — cheap NDP-DIMM boxes absorbing
//! traffic that would otherwise need more GPUs — only becomes quantifiable
//! at fleet scale. This module models that fleet: each replica is its own
//! machine ([`ReplicaSpec`]: system kind, hardware config, scheduler
//! policies — so a fleet can mix TensorRT GPU boxes with Hermes NDP boxes),
//! requests are sampled once from a fleet-wide scenario and dispatched at
//! arrival time by a [`RoutingPolicy`], and scripted [`ReplicaEvent`]s
//! drain, fail and recover replicas mid-run with deterministic re-dispatch
//! of the work they hand back (restart with recompute, through the same
//! preemption machinery single-replica eviction uses).
//!
//! The driver is deterministic end to end: replicas advance in index order
//! to each timeline point, ties between events and arrivals resolve events
//! first, and re-dispatched requests are routed in request-id order — equal
//! inputs produce bitwise-identical [`ClusterReport`]s, and a one-replica
//! cluster reproduces [`simulate`](crate::simulator::simulate) bitwise.

use hermes_core::{ClusterReport, HermesError, ReplicaReport, SystemConfig, SystemKind};

use crate::arrival::sample_arrival_times;
use crate::replica::{CarriedRequest, ReplicaSim};
use crate::request::{RequestRecord, ServingRequest};
use crate::simulator::{request_ranks, ServingSimulation, LENGTH_SEED_SALT, PREFIX_SEED_SALT};

/// How the cluster picks a replica for each arriving (or re-dispatched)
/// request. All policies consider only *routable* replicas — drained and
/// failed machines receive nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Cycle through the replicas in order, skipping unroutable ones.
    RoundRobin,
    /// The replica with the fewest outstanding (dispatched, not completed)
    /// requests; ties go to the lowest index.
    LeastOutstanding,
    /// The replica whose KV memory is least pressured
    /// ([`ReplicaSim::kv_pressure`]: resident plus queued worst-case bytes
    /// over the budget); ties go to the fewest outstanding, then the lowest
    /// index. Steers KV-heavy load away from memory-tight boxes.
    KvPressure,
    /// The replica whose prefix cache already holds the longest run of the
    /// request's prompt prefix ([`ReplicaSim::prefix_match`]); ties go to
    /// the fewest outstanding, then the lowest index. Keeps same-prefix
    /// requests on the machine whose cache is warm.
    PrefixAffinity,
}

impl RoutingPolicy {
    /// Stable display name (used in reports and bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastOutstanding => "least-outstanding",
            RoutingPolicy::KvPressure => "kv-pressure",
            RoutingPolicy::PrefixAffinity => "prefix-affinity",
        }
    }
}

/// One machine in the fleet: a system kind on a hardware config, scheduling
/// under its own policies — heterogeneous fleets mix GPU and NDP boxes with
/// different admission caps.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Display label (e.g. `"gpu-0"`, `"ndp-2"`), carried into the
    /// per-replica section of the [`ClusterReport`].
    pub label: String,
    /// Which system this box runs.
    pub kind: SystemKind,
    /// The box's hardware configuration.
    pub config: SystemConfig,
    /// The box's scheduler: batching policy, admission caps, prefill,
    /// preemption and prefix-cache mode (plus the engine-planning
    /// template). The sampling fields — arrival, request count, seeds,
    /// length/class/prompt specs and the scheduling policy — are
    /// fleet-wide concerns and are overridden from the cluster scenario.
    pub sim: ServingSimulation,
}

impl ReplicaSpec {
    /// A labelled replica of `kind` on `config` scheduling under `sim`.
    pub fn new(
        label: impl Into<String>,
        kind: SystemKind,
        config: SystemConfig,
        sim: ServingSimulation,
    ) -> Self {
        ReplicaSpec {
            label: label.into(),
            kind,
            config,
            sim,
        }
    }
}

/// A scripted lifecycle event on one replica, applied at a fixed virtual
/// time. Events at equal times apply in their listed order, before any
/// arrival at the same instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicaEvent {
    /// Stop routing new work to the replica at time `at`. In-flight and
    /// already-queued admitted work finishes locally; requests that never
    /// started (queued but never admitted) are handed back to the router
    /// and re-dispatched at `at`.
    Drain { replica: usize, at: f64 },
    /// Kill the replica at time `at`: *everything* in flight — queued,
    /// prefilling, decoding, swapped-out — is handed back and re-dispatched
    /// (restart with recompute; decode progress re-prefills elsewhere, swap
    /// tier and prefix cache contents are lost), and the machine's pool and
    /// cache restart cold.
    Fail { replica: usize, at: f64 },
    /// Make the replica routable again at time `at` (after a drain or
    /// fail); its clock restarts no earlier than `at`.
    Recover { replica: usize, at: f64 },
}

impl ReplicaEvent {
    fn replica(&self) -> usize {
        match *self {
            ReplicaEvent::Drain { replica, .. }
            | ReplicaEvent::Fail { replica, .. }
            | ReplicaEvent::Recover { replica, .. } => replica,
        }
    }

    fn at(&self) -> f64 {
        match *self {
            ReplicaEvent::Drain { at, .. }
            | ReplicaEvent::Fail { at, .. }
            | ReplicaEvent::Recover { at, .. } => at,
        }
    }
}

/// One multi-replica serving scenario: a fleet of [`ReplicaSpec`]s, a
/// fleet-wide workload scenario the requests are sampled from, a routing
/// policy and an optional script of replica lifecycle events.
#[derive(Debug, Clone)]
pub struct ClusterSimulation {
    /// The fleet-wide scenario: template workload, arrival process, request
    /// count, sampling seed, length/class/prompt specs and the scheduling
    /// policy that ranks requests on every replica's ready queue. Its
    /// per-machine knobs (batching, admission, prefill, preemption, prefix
    /// cache) are **ignored** — each replica brings its own via
    /// [`ReplicaSpec::sim`].
    pub scenario: ServingSimulation,
    /// The machines serving the load.
    pub replicas: Vec<ReplicaSpec>,
    /// How arriving requests pick a replica.
    pub routing: RoutingPolicy,
    /// Scripted drain/fail/recover events.
    pub events: Vec<ReplicaEvent>,
}

impl ClusterSimulation {
    /// A fleet of `replicas` serving `scenario` under `routing`, with no
    /// lifecycle events.
    pub fn new(
        scenario: ServingSimulation,
        replicas: Vec<ReplicaSpec>,
        routing: RoutingPolicy,
    ) -> Self {
        ClusterSimulation {
            scenario,
            replicas,
            routing,
            events: Vec::new(),
        }
    }

    /// A homogeneous fleet: `n` replicas of `kind` on `config`, each
    /// scheduling under the scenario's own policy knobs.
    pub fn uniform(
        scenario: ServingSimulation,
        kind: SystemKind,
        config: &SystemConfig,
        n: usize,
        routing: RoutingPolicy,
    ) -> Self {
        let replicas = (0..n)
            .map(|i| {
                ReplicaSpec::new(
                    format!("replica-{i}"),
                    kind,
                    config.clone(),
                    scenario.clone(),
                )
            })
            .collect();
        ClusterSimulation::new(scenario, replicas, routing)
    }

    /// Same scenario with a scripted event list.
    pub fn with_events(mut self, events: Vec<ReplicaEvent>) -> Self {
        self.events = events;
        self
    }
}

/// Everything one cluster simulation produced: the fleet report plus the
/// lifecycle records of every request, in request-id order (a re-dispatched
/// request's record lives on the replica that completed it, with its
/// original arrival stamp).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Fleet-wide and per-replica serving metrics.
    pub report: ClusterReport,
    /// Lifecycle timestamps of every request.
    pub records: Vec<RequestRecord>,
}

/// One timeline point of the merged event/arrival sequence.
enum Point {
    /// Index into the sorted event list.
    Event(usize),
    /// Index into the sampled request list.
    Arrival(usize),
}

/// The fleet driver: N resumable replicas, one shared virtual timeline.
///
/// Requests and scripted events are merged into a single time-ordered
/// sequence; at each point every replica is advanced to that time (in index
/// order) before the point is applied, so a replica's boundary at time `t`
/// always sees every request routed to it strictly before `t` — the
/// property that makes a one-replica cluster reproduce
/// [`simulate`](crate::simulator::simulate) bitwise.
pub struct ClusterSimulator {
    replicas: Vec<ReplicaSim>,
    labels: Vec<String>,
    routing: RoutingPolicy,
    /// Whether each replica currently accepts new work.
    routable: Vec<bool>,
    /// Round-robin cursor.
    rr_next: usize,
    /// Requests dispatched to each replica (first dispatches plus
    /// re-dispatches).
    routed: Vec<usize>,
    /// Of those, requests that arrived via drain/fail re-dispatch.
    redispatched: Vec<usize>,
    /// The sampled requests, ordered by arrival.
    requests: Vec<ServingRequest>,
    /// Fleet-wide scheduling ranks, parallel to `requests`.
    ranks: Vec<f64>,
    /// Lifecycle events, stably sorted by time.
    events: Vec<ReplicaEvent>,
}

impl ClusterSimulator {
    /// Sample the scenario and plan every replica, failing upfront on a
    /// misconfigured fleet.
    ///
    /// # Errors
    ///
    /// [`HermesError::InvalidConfig`] for an empty fleet or an event naming
    /// a replica that does not exist, plus every validation error of
    /// [`ReplicaSim::new`] (applied per replica, against the *global*
    /// request set — any replica can receive any request through failover).
    pub fn new(sim: &ClusterSimulation) -> Result<Self, HermesError> {
        if sim.replicas.is_empty() {
            return Err(HermesError::InvalidConfig(
                "a cluster needs at least one replica".into(),
            ));
        }
        for (i, event) in sim.events.iter().enumerate() {
            if event.replica() >= sim.replicas.len() {
                return Err(HermesError::InvalidConfig(format!(
                    "event {i} ({event:?}) names replica {} but the fleet has {}",
                    event.replica(),
                    sim.replicas.len()
                )));
            }
        }
        let scenario = &sim.scenario;
        let times = sample_arrival_times(
            &scenario.arrival,
            scenario.num_requests,
            scenario.arrival_seed,
        )?;
        let requests = ServingRequest::sample(
            &scenario.template,
            &times,
            &scenario.lengths,
            &scenario.classes,
            &scenario.prompts,
            scenario.arrival_seed ^ LENGTH_SEED_SALT,
            scenario.arrival_seed ^ PREFIX_SEED_SALT,
        )?;
        // Ranks are fleet-wide: computed once over the whole sampled set,
        // so a request keeps its rank (e.g. its prefix-affinity group
        // leader) wherever it is dispatched or re-dispatched.
        let ranks = request_ranks(scenario.scheduling, &requests);
        let mut replicas = Vec::with_capacity(sim.replicas.len());
        for spec in &sim.replicas {
            // The replica schedules under its own policy knobs but reports
            // against the fleet scenario's arrival spec (so a one-replica
            // fleet reproduces `simulate` bitwise, offered-rate included).
            let mut rsim = spec.sim.clone();
            rsim.arrival = scenario.arrival.clone();
            rsim.num_requests = scenario.num_requests;
            rsim.arrival_seed = scenario.arrival_seed;
            rsim.lengths = scenario.lengths.clone();
            rsim.classes = scenario.classes.clone();
            rsim.prompts = scenario.prompts.clone();
            rsim.scheduling = scenario.scheduling;
            let replica = ReplicaSim::new(spec.kind, &spec.config, rsim)?;
            replica.validate_requests(&requests)?;
            replicas.push(replica);
        }
        let mut events = sim.events.clone();
        // Stable: events at one instant keep their listed order.
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        let n = sim.replicas.len();
        Ok(ClusterSimulator {
            replicas,
            labels: sim.replicas.iter().map(|s| s.label.clone()).collect(),
            routing: sim.routing,
            routable: vec![true; n],
            rr_next: 0,
            routed: vec![0; n],
            redispatched: vec![0; n],
            requests,
            ranks,
            events,
        })
    }

    /// Pick a replica for `request` under the routing policy. `None` when
    /// every replica is unroutable.
    fn route(&mut self, request: &ServingRequest) -> Option<usize> {
        let n = self.replicas.len();
        match self.routing {
            RoutingPolicy::RoundRobin => {
                for offset in 0..n {
                    let idx = (self.rr_next + offset) % n;
                    if self.routable[idx] {
                        self.rr_next = (idx + 1) % n;
                        return Some(idx);
                    }
                }
                None
            }
            RoutingPolicy::LeastOutstanding => self.pick_min(|_, r| r.outstanding() as f64),
            RoutingPolicy::KvPressure => self.pick_min(|_, r| r.kv_pressure()),
            RoutingPolicy::PrefixAffinity => {
                // Longest resident prefix wins: minimize the *negated*
                // match length.
                self.pick_min(|_, r| -(r.prefix_match(&request.prefix) as f64))
            }
        }
    }

    /// The routable replica minimizing `score`, ties broken by fewest
    /// outstanding requests, then lowest index.
    fn pick_min(&self, score: impl Fn(usize, &ReplicaSim) -> f64) -> Option<usize> {
        let mut best: Option<(f64, usize, usize)> = None;
        for (idx, replica) in self.replicas.iter().enumerate() {
            if !self.routable[idx] {
                continue;
            }
            let key = (score(idx, replica), replica.outstanding(), idx);
            let better = match &best {
                None => true,
                Some((s, o, i)) => {
                    (key.0.total_cmp(s).then(key.1.cmp(o)).then(key.2.cmp(i))).is_lt()
                }
            };
            if better {
                best = Some(key);
            }
        }
        best.map(|(_, _, idx)| idx)
    }

    /// Dispatch one first-time arrival.
    fn dispatch(&mut self, arrival_idx: usize) -> Result<(), HermesError> {
        let request = self.requests[arrival_idx].clone();
        let rank = self.ranks[arrival_idx];
        let Some(target) = self.route(&request) else {
            return Err(HermesError::InvalidConfig(format!(
                "no routable replica for request {} at t={}: every replica is drained or failed",
                request.id, request.arrival
            )));
        };
        self.routed[target] += 1;
        self.replicas[target].inject(request, rank);
        Ok(())
    }

    /// Re-dispatch the requests a drain/fail handed back, in request-id
    /// order, as fresh arrivals at the event time.
    fn redispatch(&mut self, carried: Vec<CarriedRequest>, at: f64) -> Result<(), HermesError> {
        for c in carried {
            let Some(target) = self.route(&c.request) else {
                return Err(HermesError::InvalidConfig(format!(
                    "no routable replica to re-dispatch request {} at t={at}: every replica \
                     is drained or failed",
                    c.record.id
                )));
            };
            self.routed[target] += 1;
            self.redispatched[target] += 1;
            self.replicas[target].inject_carried(c, at);
        }
        Ok(())
    }

    /// Run the fleet to completion and fold the [`ClusterOutcome`].
    ///
    /// # Errors
    ///
    /// Propagates per-replica simulation errors (unsatisfiable admission
    /// caps) and routing dead-ends (no routable replica left for an
    /// arrival).
    pub fn run(mut self) -> Result<ClusterOutcome, HermesError> {
        // Merge events and arrivals into one time-ordered pass; at equal
        // times events apply first (a request arriving the instant a
        // replica fails must not be routed to it).
        let mut points: Vec<(f64, Point)> =
            Vec::with_capacity(self.events.len() + self.requests.len());
        let mut ei = 0;
        let mut ai = 0;
        while ei < self.events.len() || ai < self.requests.len() {
            let take_event = match (self.events.get(ei), self.requests.get(ai)) {
                (Some(e), Some(r)) => e.at() <= r.arrival,
                (Some(_), None) => true,
                _ => false,
            };
            if take_event {
                points.push((self.events[ei].at(), Point::Event(ei)));
                ei += 1;
            } else {
                points.push((self.requests[ai].arrival, Point::Arrival(ai)));
                ai += 1;
            }
        }
        for (t, point) in points {
            // Every replica reaches this instant before the point applies:
            // a boundary at time `t` has then seen every earlier dispatch,
            // and nothing later.
            for replica in self.replicas.iter_mut() {
                replica.advance_to(t)?;
            }
            match point {
                Point::Arrival(idx) => self.dispatch(idx)?,
                Point::Event(idx) => match self.events[idx] {
                    ReplicaEvent::Drain { replica, at } => {
                        self.routable[replica] = false;
                        let carried = self.replicas[replica].extract_pending();
                        self.redispatch(carried, at)?;
                    }
                    ReplicaEvent::Fail { replica, at } => {
                        self.routable[replica] = false;
                        let carried = self.replicas[replica].extract_all();
                        self.redispatch(carried, at)?;
                    }
                    ReplicaEvent::Recover { replica, at } => {
                        self.routable[replica] = true;
                        self.replicas[replica].restart_at(at);
                    }
                },
            }
        }
        for replica in self.replicas.iter_mut() {
            replica.run_to_completion()?;
        }
        let replica_reports: Vec<ReplicaReport> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(idx, replica)| ReplicaReport {
                label: self.labels[idx].clone(),
                routed: self.routed[idx],
                redispatched: self.redispatched[idx],
                report: replica.report(),
            })
            .collect();
        let report = ClusterReport::from_replicas(self.routing.name().to_string(), replica_reports);
        let mut records: Vec<RequestRecord> = self
            .replicas
            .iter()
            .flat_map(|r| r.surviving_records())
            .collect();
        records.sort_by_key(|r| r.id);
        Ok(ClusterOutcome { report, records })
    }
}

/// Simulate a multi-replica cluster scenario end to end: sample the
/// fleet-wide workload, dispatch every request under the routing policy,
/// apply the scripted replica events, and run every machine dry.
///
/// Equal inputs produce bitwise-identical outcomes, and a one-replica
/// cluster with no events reproduces
/// [`simulate`](crate::simulator::simulate) bitwise (per-replica report and
/// records alike).
///
/// # Errors
///
/// Everything [`ClusterSimulator::new`] and [`ClusterSimulator::run`]
/// return.
pub fn simulate_cluster(sim: &ClusterSimulation) -> Result<ClusterOutcome, HermesError> {
    ClusterSimulator::new(sim)?.run()
}
