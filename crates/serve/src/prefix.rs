//! Radix prefix cache: KV reuse across requests over the paged pool.
//!
//! Production engines observe that many requests share a prompt prefix — a
//! system prompt, few-shot examples, a long document queried repeatedly —
//! and the KV cache computed for that prefix is identical across them. A
//! prefix cache keeps those KV blocks resident *after* the request that
//! produced them completes, so a later request whose prompt starts with the
//! same tokens maps the cached blocks copy-free and prefills only its
//! unmatched suffix (the vLLM "automatic prefix caching" / SGLang RadixAttention
//! idea).
//!
//! [`PrefixCache`] is the structure both simulation loops share:
//!
//! - A **radix tree** over token ids. Each node owns an edge of tokens that
//!   is a whole number of KV blocks, plus the block ids backing it (taken
//!   from the same [`KvPool`](crate::KvPool) the sequences allocate from,
//!   so cache residency and sequence growth compete for the same capacity).
//! - **Leases** pin a root-to-node path while a request is running: every
//!   node on the path carries a reference count, and a referenced node is
//!   never evicted. Releasing the lease (request completion or eviction
//!   preemption) unpins the path but leaves the nodes resident.
//! - **Eviction** reclaims unreferenced leaves only, least-popular first
//!   (fewest hits, then least-recently used, then lowest node id — the same
//!   popularity ordering `hermes-sparsity` uses for hot-neuron residency),
//!   cascading upward as parents become unreferenced leaves. The cache
//!   returns blocks only under capacity pressure, never eagerly.
//!
//! All lengths the cache traffics in are block-aligned: a prompt's
//! *cacheable* prefix is its declared shared prefix rounded down to a whole
//! number of blocks, and edge splits happen at block boundaries only, so a
//! node's blocks are always fully covered by its edge.

use std::collections::BTreeMap;

use hermes_core::cast::u64_from_usize;

/// A pinned root-to-node path in the cache; held while a request that
/// matched (or inserted) cached content is in flight.
pub(crate) type PrefixLease = usize;

/// One radix-tree node: an edge of block-aligned tokens and the KV blocks
/// backing it.
#[derive(Debug, Clone)]
struct Node {
    /// Arena index of the parent (`usize::MAX` for the root).
    parent: usize,
    /// Edge label: the tokens this node extends its parent's path by.
    /// Always a whole number of blocks; empty only for the root.
    tokens: Vec<u64>,
    /// Pool block ids backing `tokens` (`tokens.len() / block_tokens` ids).
    block_ids: Vec<u64>,
    /// Children keyed by the first token of their edge (a radix tree has at
    /// most one child per distinct next token). `BTreeMap` keeps iteration
    /// deterministic.
    children: BTreeMap<u64, usize>,
    /// Number of leases whose pinned path passes through this node.
    refs: usize,
    /// Times this node was on a matched path (popularity).
    hits: u64,
    /// Lookup serial of the most recent match through this node.
    last_use: u64,
    /// Whether this arena slot is occupied (freed slots are recycled).
    live: bool,
}

/// What a (side-effect-free) cache consultation would yield for a prefix:
/// used by admission to decide feasibility *before* mutating anything.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrefixPlan {
    /// Tokens of the prefix already resident (block-aligned).
    pub matched: usize,
    /// Blocks that eviction could reclaim without touching the matched
    /// path: every unreferenced node not on it.
    pub freeable_blocks: u64,
    /// Whether the unmatched remainder can be inserted as a new child. The
    /// only obstruction is an existing sibling edge sharing a sub-block
    /// run of tokens with the remainder — a split point that is not
    /// block-aligned, which the cache refuses to create.
    pub can_insert: bool,
}

/// Cumulative counters the cache keeps; folded into the report's
/// `PrefixCacheReport` by `build_report`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PrefixStats {
    /// Cache consultations at admission (re-admissions count again).
    pub lookups: usize,
    /// Lookups that matched at least one block.
    pub hits: usize,
    /// Σ matched tokens over all lookups (prefill work skipped).
    pub reused_tokens: usize,
    /// New nodes created.
    pub insertions: usize,
    /// Cumulative blocks surrendered back to the pool under pressure.
    pub evicted_blocks: u64,
}

/// The radix prefix cache shared by the heap loop and the reference oracle.
#[derive(Debug, Clone)]
pub(crate) struct PrefixCache {
    /// Tokens per KV block; all cached lengths are multiples of this.
    block_tokens: usize,
    /// Node arena; slot 0 is the root (empty edge, never evicted).
    nodes: Vec<Node>,
    /// Recycled arena slots.
    free_nodes: Vec<usize>,
    /// Lease slab: lease id → deepest pinned node.
    leases: Vec<Option<usize>>,
    /// Recycled lease ids.
    free_leases: Vec<usize>,
    /// Blocks currently resident across all nodes.
    resident_blocks: u64,
    /// Tokens currently resident across all nodes.
    resident_tokens: u64,
    stats: PrefixStats,
}

impl PrefixCache {
    pub(crate) fn new(block_tokens: usize) -> Self {
        assert!(block_tokens >= 1, "blocks must hold at least one token");
        PrefixCache {
            block_tokens,
            nodes: vec![Node {
                parent: usize::MAX,
                tokens: Vec::new(),
                block_ids: Vec::new(),
                children: BTreeMap::new(),
                refs: 0,
                hits: 0,
                last_use: 0,
                live: true,
            }],
            free_nodes: Vec::new(),
            leases: Vec::new(),
            free_leases: Vec::new(),
            resident_blocks: 0,
            resident_tokens: 0,
            stats: PrefixStats::default(),
        }
    }

    /// `len` rounded down to a whole number of blocks — the portion of a
    /// declared prefix the cache can hold.
    pub(crate) fn cacheable(&self, len: usize) -> usize {
        len / self.block_tokens * self.block_tokens
    }

    /// Blocks currently resident in the cache.
    pub(crate) fn resident_blocks(&self) -> u64 {
        self.resident_blocks
    }

    /// Tokens currently resident in the cache.
    pub(crate) fn resident_tokens(&self) -> u64 {
        self.resident_tokens
    }

    pub(crate) fn stats(&self) -> PrefixStats {
        self.stats
    }

    /// Walk the tree matching `tokens` (must be block-aligned in length),
    /// without mutating anything. Returns the match length, the blocks
    /// eviction could free without touching the matched path, and whether
    /// the remainder is insertable.
    pub(crate) fn plan(&self, tokens: &[u64]) -> PrefixPlan {
        debug_assert!(tokens.len().is_multiple_of(self.block_tokens));
        let mut path = vec![0usize];
        let mut cur = 0usize;
        let mut i = 0usize;
        let mut can_insert = true;
        while i < tokens.len() {
            let Some(&child) = self.nodes[cur].children.get(&tokens[i]) else {
                break;
            };
            let edge = &self.nodes[child].tokens;
            let m = common_len(&tokens[i..], edge);
            if m == edge.len() {
                path.push(child);
                cur = child;
                i += m;
                continue;
            }
            // Partial edge match. Only the block-aligned head is usable;
            // `acquire` would split there. The whole child is treated as
            // on-path (not freeable) — conservative, since after the split
            // the head would be pinned.
            path.push(child);
            let usable = self.cacheable(m);
            i += usable;
            // A non-aligned divergence point means the remainder collides
            // with the (post-split) sibling edge and cannot be inserted.
            can_insert = usable == m;
            break;
        }
        let on_path = |id: usize| path.contains(&id);
        let freeable_blocks = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(id, n)| *id != 0 && n.live && n.refs == 0 && !on_path(*id))
            .map(|(_, n)| u64_from_usize(n.block_ids.len()))
            .sum();
        PrefixPlan {
            matched: i,
            freeable_blocks,
            can_insert,
        }
    }

    /// Match `tokens` (block-aligned length), pin the matched path with a
    /// new lease, and record the lookup in the popularity counters.
    /// Returns the lease and the matched token count; a zero-length match
    /// still returns a (root-pinned) lease so `insert` can extend it.
    pub(crate) fn acquire(&mut self, tokens: &[u64]) -> (PrefixLease, usize) {
        debug_assert!(tokens.len().is_multiple_of(self.block_tokens));
        self.stats.lookups += 1;
        let now = u64_from_usize(self.stats.lookups);
        let mut cur = 0usize;
        let mut i = 0usize;
        while i < tokens.len() {
            let Some(&child) = self.nodes[cur].children.get(&tokens[i]) else {
                break;
            };
            let m = common_len(&tokens[i..], &self.nodes[child].tokens);
            if m == self.nodes[child].tokens.len() {
                cur = child;
                i += m;
                continue;
            }
            let usable = self.cacheable(m);
            if usable > 0 {
                cur = self.split(child, usable);
                i += usable;
            }
            break;
        }
        // Pin and credit the path bottom-up.
        let mut node = cur;
        loop {
            let n = &mut self.nodes[node];
            n.refs += 1;
            n.hits += 1;
            n.last_use = now;
            if node == 0 {
                break;
            }
            node = n.parent;
        }
        if i > 0 {
            self.stats.hits += 1;
            self.stats.reused_tokens += i;
        }
        let lease = match self.free_leases.pop() {
            Some(id) => {
                self.leases[id] = Some(cur);
                id
            }
            None => {
                self.leases.push(Some(cur));
                self.leases.len() - 1
            }
        };
        (lease, i)
    }

    /// Split `node`'s edge at block-aligned offset `at` (`0 < at < len`):
    /// a new head node takes the first `at` tokens and `node` keeps the
    /// tail, so existing leases pinned at `node` stay valid. Returns the
    /// head's arena index.
    fn split(&mut self, node: usize, at: usize) -> usize {
        debug_assert!(at.is_multiple_of(self.block_tokens));
        debug_assert!(at > 0 && at < self.nodes[node].tokens.len());
        let tail_tokens = self.nodes[node].tokens.split_off(at);
        let tail_blocks = self.nodes[node].block_ids.split_off(at / self.block_tokens);
        let head = Node {
            parent: self.nodes[node].parent,
            tokens: std::mem::take(&mut self.nodes[node].tokens),
            block_ids: std::mem::take(&mut self.nodes[node].block_ids),
            children: BTreeMap::from([(tail_tokens[0], node)]),
            // Every lease through `node` covers the full original edge, so
            // the head inherits the same pin count — and the same
            // popularity, since the head *is* the older half of the edge.
            refs: self.nodes[node].refs,
            hits: self.nodes[node].hits,
            last_use: self.nodes[node].last_use,
            live: true,
        };
        let head_id = self.alloc_node(head);
        let parent = self.nodes[node].parent;
        let first = self.nodes[head_id].tokens[0];
        // hermes-lint: allow(D3, reason = "split is only called on an existing child edge, so the parent's entry for `first` is a structural invariant")
        *self.nodes[parent].children.get_mut(&first).unwrap() = head_id;
        self.nodes[node].parent = head_id;
        self.nodes[node].tokens = tail_tokens;
        self.nodes[node].block_ids = tail_blocks;
        head_id
    }

    /// Extend `lease`'s pinned path with a new node holding `suffix`
    /// (block-aligned, non-empty) backed by `block_ids` taken from the
    /// pool with [`KvPool::acquire_blocks`](crate::KvPool::acquire_blocks).
    /// The lease moves to the new node. Callable only when the matching
    /// [`PrefixPlan::can_insert`] was true.
    pub(crate) fn insert(&mut self, lease: PrefixLease, suffix: &[u64], block_ids: Vec<u64>) {
        debug_assert!(!suffix.is_empty());
        debug_assert!(suffix.len() == block_ids.len() * self.block_tokens);
        // hermes-lint: allow(D3, reason = "lease liveness is a caller contract; inserting on a released lease is a scheduler bug worth a loud crash")
        let parent = self.leases[lease].expect("insert on a released lease");
        debug_assert!(
            !self.nodes[parent].children.contains_key(&suffix[0]),
            "insert collides with an existing edge (can_insert was false)"
        );
        self.resident_blocks += u64_from_usize(block_ids.len());
        self.resident_tokens += u64_from_usize(suffix.len());
        let now = u64_from_usize(self.stats.lookups);
        let node = self.alloc_node(Node {
            parent,
            tokens: suffix.to_vec(),
            block_ids,
            children: BTreeMap::new(),
            // The lease repoints here, keeping the path pin balanced: the
            // ancestors were already pinned by `acquire`.
            refs: 1,
            hits: 1,
            last_use: now,
            live: true,
        });
        self.nodes[parent].children.insert(suffix[0], node);
        self.leases[lease] = Some(node);
        self.stats.insertions += 1;
    }

    /// Unpin `lease`'s path. The nodes stay resident until evicted.
    pub(crate) fn release(&mut self, lease: PrefixLease) {
        // hermes-lint: allow(D3, reason = "double release of a lease is a scheduler bug worth a loud crash")
        let mut node = self.leases[lease].take().expect("double release");
        self.free_leases.push(lease);
        loop {
            self.nodes[node].refs -= 1;
            if node == 0 {
                break;
            }
            node = self.nodes[node].parent;
        }
    }

    /// Evict least-popular unreferenced leaves (cascading upward) until at
    /// least `shortfall` blocks are freed or nothing evictable remains.
    /// Returns the freed block ids for the caller to surrender to the pool.
    pub(crate) fn evict_for(&mut self, shortfall: u64) -> Vec<u64> {
        let mut freed = Vec::new();
        while u64_from_usize(freed.len()) < shortfall {
            let Some(victim) = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(id, n)| *id != 0 && n.live && n.refs == 0 && n.children.is_empty())
                .min_by_key(|(id, n)| (n.hits, n.last_use, *id))
                .map(|(id, _)| id)
            else {
                break;
            };
            let parent = self.nodes[victim].parent;
            let first = self.nodes[victim].tokens[0];
            self.nodes[parent].children.remove(&first);
            let node = &mut self.nodes[victim];
            node.live = false;
            self.resident_blocks -= u64_from_usize(node.block_ids.len());
            self.resident_tokens -= u64_from_usize(node.tokens.len());
            self.stats.evicted_blocks += u64_from_usize(node.block_ids.len());
            freed.append(&mut node.block_ids);
            node.tokens.clear();
            node.children.clear();
            self.free_nodes.push(victim);
        }
        freed
    }

    fn alloc_node(&mut self, node: Node) -> usize {
        match self.free_nodes.pop() {
            Some(id) => {
                self.nodes[id] = node;
                id
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }
}

/// Length of the common prefix of two token runs.
fn common_len(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-tokens-per-block cache with one resident 8-token prefix.
    fn seeded() -> (PrefixCache, Vec<u64>) {
        let mut cache = PrefixCache::new(4);
        let tokens: Vec<u64> = (100..108).collect();
        let (lease, matched) = cache.acquire(&tokens);
        assert_eq!(matched, 0);
        cache.insert(lease, &tokens, vec![0, 1]);
        cache.release(lease);
        (cache, tokens)
    }

    #[test]
    fn full_prefix_match_after_insert() {
        let (mut cache, tokens) = seeded();
        assert_eq!(cache.resident_blocks(), 2);
        assert_eq!(cache.resident_tokens(), 8);
        let plan = cache.plan(&tokens);
        assert_eq!(plan.matched, 8);
        // The matched path itself is never counted as reclaimable…
        assert_eq!(plan.freeable_blocks, 0);
        // …but a disjoint lookup sees the whole resident prefix as freeable.
        let unrelated: Vec<u64> = (900..908).collect();
        assert_eq!(cache.plan(&unrelated).freeable_blocks, 2);
        let (lease, matched) = cache.acquire(&tokens);
        assert_eq!(matched, 8);
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits, stats.reused_tokens), (2, 1, 8));
        cache.release(lease);
    }

    #[test]
    fn diverging_prefix_splits_at_block_boundary() {
        let (mut cache, tokens) = seeded();
        // Shares the first block (4 tokens), diverges after.
        let other: Vec<u64> = tokens[..4].iter().copied().chain(200..204).collect();
        let plan = cache.plan(&other);
        assert_eq!(plan.matched, 4);
        assert!(plan.can_insert);
        let (lease, matched) = cache.acquire(&other);
        assert_eq!(matched, 4);
        cache.insert(lease, &other[4..], vec![2]);
        assert_eq!(cache.resident_blocks(), 3);
        assert_eq!(cache.resident_tokens(), 12);
        cache.release(lease);
        // Both full prefixes still match end to end.
        assert_eq!(cache.plan(&tokens).matched, 8);
        assert_eq!(cache.plan(&other).matched, 8);
    }

    #[test]
    fn sub_block_divergence_blocks_insertion() {
        let (cache, tokens) = seeded();
        // Shares 2 tokens — less than a block — so nothing is usable and
        // the remainder would collide with the existing edge.
        let other: Vec<u64> = tokens[..2].iter().copied().chain(300..306).collect();
        let plan = cache.plan(&other);
        assert_eq!(plan.matched, 0);
        assert!(!plan.can_insert);
    }

    #[test]
    fn referenced_nodes_are_never_evicted() {
        let (mut cache, tokens) = seeded();
        let (lease, _) = cache.acquire(&tokens);
        assert!(cache.evict_for(2).is_empty());
        cache.release(lease);
        let freed = cache.evict_for(2);
        assert_eq!(freed.len(), 2);
        assert_eq!(cache.resident_blocks(), 0);
        assert_eq!(cache.plan(&tokens).matched, 0);
    }

    #[test]
    fn eviction_prefers_least_popular_then_lru() {
        let mut cache = PrefixCache::new(4);
        let hot: Vec<u64> = (0..4).collect();
        let cold: Vec<u64> = (10..14).collect();
        for t in [&hot, &cold] {
            let (lease, _) = cache.acquire(t);
            cache.insert(lease, t, vec![0]);
            cache.release(lease);
        }
        // Touch the hot prefix twice more.
        for _ in 0..2 {
            let (lease, m) = cache.acquire(&hot);
            assert_eq!(m, 4);
            cache.release(lease);
        }
        cache.evict_for(1);
        assert_eq!(cache.plan(&hot).matched, 4);
        assert_eq!(cache.plan(&cold).matched, 0);
        assert_eq!(cache.stats().evicted_blocks, 1);
    }

    #[test]
    fn eviction_cascades_to_unreferenced_parents() {
        let (mut cache, tokens) = seeded();
        let longer: Vec<u64> = tokens.iter().copied().chain(400..404).collect();
        let (lease, matched) = cache.acquire(&longer);
        assert_eq!(matched, 8);
        cache.insert(lease, &longer[8..], vec![2]);
        cache.release(lease);
        // Three blocks across a two-node chain; freeing all of them must
        // evict the leaf and then its parent.
        let freed = cache.evict_for(3);
        assert_eq!(freed.len(), 3);
        assert_eq!(cache.resident_blocks(), 0);
        assert_eq!(cache.resident_tokens(), 0);
    }

    #[test]
    fn split_keeps_existing_lease_pinned_through_the_head() {
        let (mut cache, tokens) = seeded();
        let (long_lease, _) = cache.acquire(&tokens);
        // This acquire splits the 8-token edge at 4; the prior lease must
        // still pin both halves.
        let shared: Vec<u64> = tokens[..4].iter().copied().chain(500..504).collect();
        let (lease, matched) = cache.acquire(&shared);
        assert_eq!(matched, 4);
        cache.release(lease);
        assert!(cache.evict_for(2).is_empty());
        cache.release(long_lease);
        assert_eq!(cache.evict_for(2).len(), 2);
    }
}
