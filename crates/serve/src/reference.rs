//! The retained sort-based reference scheduler: the pre-heap simulator loop,
//! kept verbatim as a differential-testing oracle.
//!
//! [`simulate_reference`] re-sorts the whole ready queue at every token
//! boundary, rebuilds the [`BatchState`] from a linear scan of the active
//! sequences, and walks every active sequence per step — O(batch + queue
//! log queue) per boundary. The production [`simulate`](crate::simulate)
//! replaces all of that with indexed priority queues and incremental group
//! accounting, and the `simulator_equivalence` differential suite asserts
//! the two produce bitwise-identical [`ServingOutcome`]s across every
//! policy combination. This module is compiled only under the `reference`
//! cargo feature; it is not part of the production build.
//!
//! Paged KV accounting is mirrored here with deliberately naive counters
//! (per-request held-block tallies instead of the production
//! [`KvPool`](crate::KvPool) free-list allocator): simulated outcomes
//! depend only on block *counts*, so the oracle stays independent of the
//! allocator implementation while still pinning every admission decision,
//! growth eviction and swap charge bitwise. The prefix cache itself
//! ([`PrefixCache`]) *is* shared with the production loop — its radix
//! structure and eviction order are part of the semantics under test — but
//! its blocks are charged against the naive counters here, with placeholder
//! block ids (the simulation depends only on counts, never on identities).

use hermes_core::{
    BatchState, HermesError, LatencyBreakdown, PrefillChunk, SystemConfig, SystemKind,
};

use crate::arrival::sample_arrival_times;
use crate::prefix::{PrefixCache, PrefixLease};
use crate::request::{RequestRecord, ServingRequest};
use crate::scheduler::{
    request_kv_bytes, token_kv_bytes, BatchingPolicy, KvAccounting, PreemptionPolicy,
    PrefillPolicy, PrefixCacheMode,
};
use crate::simulator::{
    request_ranks, validate_paged_capacity, worst_case_bounds, ServingOutcome, ServingSimulation,
    LENGTH_SEED_SALT, PREFIX_SEED_SALT,
};
use crate::tallies::{build_report, KvTallies, PrefixTallies, SwapTallies};

/// A sequence currently holding a batch slot and generating tokens.
struct ActiveSequence {
    /// Index into the request/record vectors.
    idx: usize,
    /// Current context length (prompt + tokens generated so far).
    context: usize,
    /// Tokens still to generate.
    remaining: usize,
    /// KV bytes reserved by this sequence (unused under paged accounting,
    /// where the held-block tallies carry the charge instead).
    kv_bytes: u64,
}

/// A sequence admitted under chunked prefill whose prompt is still being
/// processed.
struct PrefillingSequence {
    idx: usize,
    target: usize,
    done: usize,
    started: bool,
}

/// Sort the ready queue: primary rank first, arrival order within a rank —
/// the full per-boundary re-sort the heap-based scheduler replaced.
fn sort_ready(ready: &mut [usize], ranks: &[f64]) {
    ready.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]).then(a.cmp(&b)));
}

/// Simulate `kind` on `config` under `sim` through the retained sort-based
/// scheduler. Semantically identical to [`simulate`](crate::simulate) —
/// the differential suite holds the two to bitwise-equal outcomes — but
/// asymptotically slower, so only useful as an oracle.
///
/// # Errors
///
/// Exactly the errors of [`simulate`](crate::simulate).
pub fn simulate_reference(
    kind: SystemKind,
    config: &SystemConfig,
    sim: &ServingSimulation,
) -> Result<ServingOutcome, HermesError> {
    sim.validate()?;
    let times = sample_arrival_times(&sim.arrival, sim.num_requests, sim.arrival_seed)?;
    let requests = ServingRequest::sample(
        &sim.template,
        &times,
        &sim.lengths,
        &sim.classes,
        &sim.prompts,
        sim.arrival_seed ^ LENGTH_SEED_SALT,
        sim.arrival_seed ^ PREFIX_SEED_SALT,
    )?;
    let engine = kind.engine(config);
    let mut plan = engine.plan(&sim.template)?;
    for bound in worst_case_bounds(&sim.template, &requests) {
        engine.plan(&bound)?;
    }

    let kv_bytes_per_request: Vec<u64> = requests
        .iter()
        .map(|r| request_kv_bytes(&sim.template, r.prompt_len, r.gen_len))
        .collect();
    // Naive paged-accounting state: per-request held-block counts and a
    // used/peak tally, deliberately not sharing the production KvPool.
    let token_bytes = token_kv_bytes(&sim.template);
    let paged = match sim.admission.accounting {
        KvAccounting::Paged { block_tokens } => Some(block_tokens),
        KvAccounting::Reserve => None,
    };
    let block_bytes = paged.map_or(0, |bt| bt as u64 * token_bytes);
    let capacity_blocks = match paged {
        Some(_) => sim.admission.kv_memory_bytes.map(|b| b / block_bytes),
        None => None,
    };
    if let Some(bt) = paged {
        validate_paged_capacity(bt, capacity_blocks, &requests, sim)?;
    }
    let blocks_for = |bt: usize, tokens: usize| tokens.div_ceil(bt) as u64;
    // The production radix cache, charged against the naive counters with
    // placeholder block ids: its structure and eviction order are the
    // semantics under test, block identities never influence an outcome.
    let mut cache: Option<PrefixCache> = match sim.prefix_cache {
        PrefixCacheMode::Disabled => None,
        PrefixCacheMode::Lru => Some(PrefixCache::new(
            paged.expect("prefix cache validated to require paged accounting"),
        )),
    };
    let ranks: Vec<f64> = request_ranks(sim.scheduling, &requests);

    let mut records: Vec<RequestRecord> = requests
        .iter()
        .map(|r| RequestRecord {
            id: r.id,
            arrival: r.arrival,
            admitted: 0.0,
            first_token: 0.0,
            completed: 0.0,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
            class: r.class,
            preemptions: 0,
            reused_prefix_tokens: 0,
        })
        .collect();

    let mut clock = 0.0f64;
    let mut next_arrival = 0usize;
    let mut ready: Vec<usize> = Vec::new();
    let mut active: Vec<ActiveSequence> = Vec::new();
    let mut prefilling: Vec<PrefillingSequence> = Vec::new();
    let mut active_kv_bytes = 0u64;
    let mut generated: Vec<usize> = vec![0; requests.len()];
    let mut ever_admitted: Vec<bool> = vec![false; requests.len()];
    let mut breakdown = LatencyBreakdown::default();
    let mut imbalance_sum = 0.0;
    let mut imbalance_samples = 0usize;
    let mut generated_tokens = 0usize;
    let mut completed = 0usize;
    let mut swapped: Vec<Option<u64>> = vec![None; requests.len()];
    let mut swap = SwapTallies::default();
    let mut blocks_held: Vec<u64> = vec![0; requests.len()];
    let mut used_blocks = 0u64;
    let mut peak_blocks = 0u64;
    let mut kv_block_steps: u64 = 0;
    let mut kv_used_token_steps: u64 = 0;
    let mut kv_steps: u64 = 0;
    let mut prefill_target_tokens: usize = 0;
    // Prefix-cache bookkeeping, mirroring the heap loop: the covered run
    // each request stores in cache blocks (capacity), the reused part of
    // it whose prefill is skipped (an inserter covers its inserted run but
    // still computes it), the lease pinning the path, and the prefill
    // tokens actually recomputed (the reused-token complement).
    let mut covered: Vec<usize> = vec![0; requests.len()];
    let mut reused: Vec<usize> = vec![0; requests.len()];
    let mut lease: Vec<Option<PrefixLease>> = vec![None; requests.len()];
    let mut recomputed_prefill_tokens: usize = 0;

    // Shared eviction bookkeeping (admission scan and paged growth), the
    // sort-based mirror of the heap loop's `evict!`: same charge order, so
    // swap costs accumulate onto the clock bitwise-identically.
    macro_rules! evict_ref {
        ($victim_idx:expr) => {{
            let victim_idx: usize = $victim_idx;
            let pos = active
                .iter()
                .position(|a| a.idx == victim_idx)
                .expect("victim is active");
            let victim = active.remove(pos);
            records[victim.idx].preemptions += 1;
            let held_bytes = match paged {
                Some(_) => {
                    let freed = blocks_held[victim.idx];
                    blocks_held[victim.idx] = 0;
                    used_blocks -= freed;
                    freed * block_bytes
                }
                None => {
                    active_kv_bytes -= victim.kv_bytes;
                    victim.context as u64 * token_bytes
                }
            };
            if sim.preemption == PreemptionPolicy::SwapOut {
                // Only the victim's own pages travel; its covered prefix
                // stays resident, pinned by the lease it keeps.
                let cost = plan.cost.swap_cost(held_bytes);
                clock += cost;
                breakdown.communication += cost;
                swap.seconds += cost;
                swap.swap_outs += 1;
                swap.swapped_out_bytes += held_bytes;
                swapped[victim.idx] = Some(held_bytes);
            } else {
                // Restart-with-recompute drops the victim's cache claim.
                if let (Some(cache), Some(l)) = (cache.as_mut(), lease[victim.idx].take()) {
                    cache.release(l);
                }
                covered[victim.idx] = 0;
                reused[victim.idx] = 0;
            }
            ready.push(victim.idx);
        }};
    }

    loop {
        // 1. Pull every request that has arrived by now into the queue.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= clock {
            ready.push(next_arrival);
            next_arrival += 1;
        }

        // 2. Admit from the queue at this token boundary, in scheduling
        // order; evict strictly lower-ranked active sequences when the
        // best-ranked waiter does not fit and preemption is on.
        let may_admit = match sim.policy {
            BatchingPolicy::Continuous => true,
            BatchingPolicy::Static => active.is_empty() && prefilling.is_empty(),
        };
        let mut admitted: Vec<usize> = Vec::new();
        if may_admit {
            sort_ready(&mut ready, &ranks);
            while let Some(&idx) = ready.first() {
                let kv = kv_bytes_per_request[idx];
                let seats = active.len() + prefilling.len() + admitted.len();
                if sim.prefix_cache != PrefixCacheMode::Disabled {
                    // Cache-aware paged admission, mirroring the heap
                    // loop's protocol on the naive counters: the matched
                    // run maps copy-free, the insertable remainder's blocks
                    // are funded by this request, unpinned cache blocks off
                    // the matched path count as reclaimable capacity, and a
                    // resuming swap-out victim keeps the lease it never
                    // released.
                    let request = &requests[idx];
                    let ctx1 = request.prompt_len + generated[idx] + 1;
                    let bt = paged.expect("cache requires paged accounting");
                    let resumed = swapped[idx].is_some();
                    let c = cache.as_ref().expect("cache mode");
                    let cap = capacity_blocks.unwrap_or(u64::MAX);
                    let (lookup_len, cplan) = if resumed {
                        (0, c.plan(&[]))
                    } else {
                        let cacheable = c.cacheable(request.prefix.len());
                        (cacheable, c.plan(&request.prefix[..cacheable]))
                    };
                    let do_insert = !resumed && cplan.can_insert && cplan.matched < lookup_len;
                    let target_covered = if resumed {
                        covered[idx]
                    } else if do_insert {
                        lookup_len
                    } else {
                        cplan.matched
                    };
                    let insert_blocks = if do_insert {
                        ((lookup_len - cplan.matched) / bt) as u64
                    } else {
                        0
                    };
                    let own = blocks_for(bt, ctx1 - target_covered);
                    let extra = own + insert_blocks;
                    if sim.admission.admits(seats, 0, 0)
                        && used_blocks + extra <= cap.saturating_add(cplan.freeable_blocks)
                    {
                        ready.remove(0);
                        if !resumed {
                            let (l, matched) = cache
                                .as_mut()
                                .expect("cache mode")
                                .acquire(&request.prefix[..lookup_len]);
                            debug_assert_eq!(matched, cplan.matched, "plan and acquire must agree");
                            lease[idx] = Some(l);
                            // Only the *matched* run skips prefill; an
                            // inserted run is cache-resident but this
                            // request still computes it.
                            reused[idx] = matched;
                            if !ever_admitted[idx] {
                                records[idx].reused_prefix_tokens = matched;
                            }
                        }
                        let shortfall = (used_blocks + extra).saturating_sub(cap);
                        if shortfall > 0 {
                            let freed = cache.as_mut().expect("cache mode").evict_for(shortfall);
                            used_blocks -= freed.len() as u64;
                        }
                        if do_insert {
                            used_blocks += insert_blocks;
                            peak_blocks = peak_blocks.max(used_blocks);
                            cache.as_mut().expect("cache mode").insert(
                                lease[idx].expect("lease acquired above"),
                                &request.prefix[cplan.matched..lookup_len],
                                vec![0; insert_blocks as usize],
                            );
                        }
                        blocks_held[idx] += own;
                        used_blocks += own;
                        peak_blocks = peak_blocks.max(used_blocks);
                        covered[idx] = target_covered;
                        admitted.push(idx);
                        continue;
                    }
                    if sim.preemption != PreemptionPolicy::None {
                        // Victim coverage is conservatively unreclaimable —
                        // only the victims' own pages and the unpinned
                        // cache blocks count, exactly as in the heap loop.
                        let rank = ranks[idx];
                        let mut victims: Vec<usize> = (0..active.len())
                            .filter(|&pos| ranks[active[pos].idx] > rank)
                            .collect();
                        victims.sort_by(|&a, &b| {
                            let ra = ranks[active[a].idx];
                            let rb = ranks[active[b].idx];
                            rb.total_cmp(&ra).then(active[b].idx.cmp(&active[a].idx))
                        });
                        let mut take = 0usize;
                        let mut freed = 0u64;
                        let mut feasible = false;
                        for &pos in &victims {
                            freed += blocks_held[active[pos].idx];
                            take += 1;
                            if sim.admission.admits(seats - take, 0, 0)
                                && used_blocks + extra
                                    <= cap
                                        .saturating_add(cplan.freeable_blocks)
                                        .saturating_add(freed)
                            {
                                feasible = true;
                                break;
                            }
                        }
                        if feasible {
                            let evicted: Vec<usize> = victims
                                .into_iter()
                                .take(take)
                                .map(|pos| active[pos].idx)
                                .collect();
                            for victim_idx in evicted {
                                evict_ref!(victim_idx);
                            }
                            sort_ready(&mut ready, &ranks);
                            // Retry: the released leases and pages are
                            // re-planned from scratch.
                            continue;
                        }
                    }
                    break;
                }
                // Context blocks plus one write slot for the next decoded
                // token, so an admitted sequence always makes progress
                // before it can need to grow (the livelock guard the heap
                // loop's admission documents).
                let need_blocks =
                    paged.map(|bt| blocks_for(bt, requests[idx].prompt_len + generated[idx] + 1));
                let fits = match need_blocks {
                    Some(need) => {
                        sim.admission.admits(seats, 0, 0)
                            && used_blocks + need <= capacity_blocks.unwrap_or(u64::MAX)
                    }
                    None => sim.admission.admits(seats, active_kv_bytes, kv),
                };
                if fits {
                    ready.remove(0);
                    match need_blocks {
                        Some(need) => {
                            blocks_held[idx] += need;
                            used_blocks += need;
                            peak_blocks = peak_blocks.max(used_blocks);
                        }
                        None => active_kv_bytes += kv,
                    }
                    admitted.push(idx);
                    continue;
                }
                if sim.preemption != PreemptionPolicy::None {
                    let rank = ranks[idx];
                    let mut victims: Vec<usize> = (0..active.len())
                        .filter(|&pos| ranks[active[pos].idx] > rank)
                        .collect();
                    victims.sort_by(|&a, &b| {
                        let ra = ranks[active[a].idx];
                        let rb = ranks[active[b].idx];
                        rb.total_cmp(&ra).then(active[b].idx.cmp(&active[a].idx))
                    });
                    let mut take = 0usize;
                    let mut feasible = false;
                    match need_blocks {
                        Some(need) => {
                            let cap = capacity_blocks.unwrap_or(u64::MAX);
                            let mut freed = 0u64;
                            for &pos in &victims {
                                freed += blocks_held[active[pos].idx];
                                take += 1;
                                if sim.admission.admits(seats - take, 0, 0)
                                    && used_blocks - freed + need <= cap
                                {
                                    feasible = true;
                                    break;
                                }
                            }
                        }
                        None => {
                            let mut freed_kv = 0u64;
                            for &pos in &victims {
                                freed_kv += active[pos].kv_bytes;
                                take += 1;
                                if sim.admission.admits(
                                    seats - take,
                                    active_kv_bytes - freed_kv,
                                    kv,
                                ) {
                                    feasible = true;
                                    break;
                                }
                            }
                        }
                    }
                    if feasible {
                        // Evict in candidate (worst-ranked-first) order —
                        // the order the heap loop charges swap costs in —
                        // resolving each victim's position at removal time.
                        let evicted: Vec<usize> = victims
                            .into_iter()
                            .take(take)
                            .map(|pos| active[pos].idx)
                            .collect();
                        for victim_idx in evicted {
                            evict_ref!(victim_idx);
                        }
                        sort_ready(&mut ready, &ranks);
                        continue;
                    }
                }
                break;
            }
        }

        // 2.5 Swapped-out victims among this boundary's admissions page
        // their KV back in and rejoin the decode batch directly — no
        // recompute, no prefill.
        let admitted: Vec<usize> = admitted
            .into_iter()
            .filter(|&idx| {
                let Some(bytes) = swapped[idx].take() else {
                    return true;
                };
                let cost = plan.cost.swap_cost(bytes);
                clock += cost;
                breakdown.communication += cost;
                swap.seconds += cost;
                swap.swap_ins += 1;
                swap.swapped_in_bytes += bytes;
                let request = &requests[idx];
                active.push(ActiveSequence {
                    idx,
                    context: request.prompt_len + generated[idx],
                    remaining: request.gen_len - generated[idx],
                    kv_bytes: kv_bytes_per_request[idx],
                });
                false
            })
            .collect();

        // 3. Hand the newly admitted requests to the prefill policy.
        match sim.prefill {
            PrefillPolicy::StallTheWorld => {
                if !admitted.is_empty() {
                    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
                    for &idx in &admitted {
                        let p = requests[idx].prompt_len + generated[idx] - reused[idx];
                        match groups.iter_mut().find(|(len, _)| *len == p) {
                            Some((_, members)) => members.push(idx),
                            None => groups.push((p, vec![idx])),
                        }
                    }
                    for (prefill_len, members) in groups {
                        for &idx in &members {
                            if !ever_admitted[idx] {
                                records[idx].admitted = clock;
                                ever_admitted[idx] = true;
                            }
                        }
                        recomputed_prefill_tokens += prefill_len * members.len();
                        if prefill_len > 0 {
                            let cost = plan.cost.prefill_cost(prefill_len, members.len());
                            breakdown.prefill += cost;
                            clock += cost;
                        }
                    }
                    for idx in admitted {
                        let request = &requests[idx];
                        active.push(ActiveSequence {
                            idx,
                            context: request.prompt_len + generated[idx],
                            remaining: request.gen_len - generated[idx],
                            kv_bytes: kv_bytes_per_request[idx],
                        });
                    }
                }
            }
            PrefillPolicy::Chunked { .. } => {
                for idx in admitted {
                    let target = requests[idx].prompt_len + generated[idx] - reused[idx];
                    recomputed_prefill_tokens += target;
                    if target == 0 {
                        // Fully covered: nothing to prefill, join the
                        // decode batch at this very boundary.
                        if !ever_admitted[idx] {
                            records[idx].admitted = clock;
                            ever_admitted[idx] = true;
                        }
                        let request = &requests[idx];
                        active.push(ActiveSequence {
                            idx,
                            context: request.prompt_len + generated[idx],
                            remaining: request.gen_len - generated[idx],
                            kv_bytes: kv_bytes_per_request[idx],
                        });
                        continue;
                    }
                    prefill_target_tokens += target;
                    prefilling.push(PrefillingSequence {
                        idx,
                        target,
                        done: 0,
                        started: false,
                    });
                }
            }
        }

        // 4. Schedule this boundary's prefill chunks.
        let mut chunks: Vec<PrefillChunk> = Vec::new();
        if let PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        } = sim.prefill
        {
            let mut budget_left = budget;
            for seq in prefilling.iter_mut() {
                if budget_left == 0 {
                    break;
                }
                let take = chunk_tokens.min(seq.target - seq.done).min(budget_left);
                if !seq.started {
                    if !ever_admitted[seq.idx] {
                        records[seq.idx].admitted = clock;
                        ever_admitted[seq.idx] = true;
                    }
                    seq.started = true;
                }
                chunks.push(PrefillChunk {
                    prompt_len: seq.target,
                    tokens: take,
                });
                seq.done += take;
                budget_left -= take;
            }
        }

        // 5. Nothing running and no prefill scheduled: jump or finish.
        if active.is_empty() && chunks.is_empty() {
            if !ready.is_empty() {
                return Err(HermesError::InvalidConfig(format!(
                    "admission caps can never admit request {} (max_batch {:?}, kv budget {:?})",
                    ready[0], sim.admission.max_batch, sim.admission.kv_memory_bytes
                )));
            }
            if next_arrival < requests.len() {
                clock = clock.max(requests[next_arrival].arrival);
                continue;
            }
            break;
        }

        // 5.5 Paged growth: sequences whose held blocks no longer cover
        // their context plus this step's token take one more block before
        // the step is priced, in scheduling-rank order, evicting the worst
        // strictly lower-ranked victim (or themselves) when the pool is
        // full.
        if let Some(bt) = paged {
            let mut growers: Vec<usize> = active
                .iter()
                .filter(|a| blocks_held[a.idx] < blocks_for(bt, a.context + 1 - covered[a.idx]))
                .map(|a| a.idx)
                .collect();
            growers.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]).then(a.cmp(&b)));
            for grower in growers {
                if !active.iter().any(|a| a.idx == grower) {
                    continue;
                }
                let cap = capacity_blocks.unwrap_or(u64::MAX);
                if used_blocks < cap {
                    blocks_held[grower] += 1;
                    used_blocks += 1;
                    peak_blocks = peak_blocks.max(used_blocks);
                    continue;
                }
                // Unpinned cache blocks are reclaimed before any sequence
                // is preempted for a grower's block.
                if let Some(cache) = cache.as_mut() {
                    let shortfall = (used_blocks + 1).saturating_sub(cap);
                    let freed = cache.evict_for(shortfall);
                    used_blocks -= freed.len() as u64;
                    if used_blocks < cap {
                        blocks_held[grower] += 1;
                        used_blocks += 1;
                        peak_blocks = peak_blocks.max(used_blocks);
                        continue;
                    }
                }
                let rank_g = ranks[grower];
                let victim = active
                    .iter()
                    .filter(|a| ranks[a.idx] > rank_g)
                    .max_by(|a, b| {
                        ranks[a.idx]
                            .total_cmp(&ranks[b.idx])
                            .then(a.idx.cmp(&b.idx))
                    })
                    .map(|a| a.idx);
                match victim {
                    Some(victim_idx) => {
                        evict_ref!(victim_idx);
                        blocks_held[grower] += 1;
                        used_blocks += 1;
                        peak_blocks = peak_blocks.max(used_blocks);
                    }
                    None => evict_ref!(grower),
                }
            }
            kv_steps += 1;
            kv_block_steps += used_blocks;
            let active_tokens: u64 = active.iter().map(|a| a.context as u64).sum();
            let covered_tokens: u64 = active.iter().map(|a| covered[a.idx] as u64).sum();
            kv_used_token_steps += active_tokens - covered_tokens
                + prefill_target_tokens as u64
                + cache.as_ref().map_or(0, |c| c.resident_tokens());
        }

        // 6. One shared step over the current batch composition.
        let batch = BatchState::new(active.iter().map(|a| a.context).collect());
        let outcome = if chunks.is_empty() {
            plan.cost.decode_cost(&batch)
        } else {
            plan.cost.chunked_step_cost(&chunks, &batch)
        };
        breakdown = breakdown.merged(&outcome.latency);
        imbalance_sum += outcome.imbalance_sum;
        imbalance_samples += outcome.imbalance_samples;
        clock += outcome.latency.total();
        generated_tokens += active.len();
        for seq in &mut active {
            if generated[seq.idx] == 0 {
                records[seq.idx].first_token = clock;
            }
            seq.context += 1;
            seq.remaining -= 1;
            generated[seq.idx] += 1;
            if seq.remaining == 0 {
                records[seq.idx].completed = clock;
                completed += 1;
                match paged {
                    Some(_) => {
                        used_blocks -= blocks_held[seq.idx];
                        blocks_held[seq.idx] = 0;
                    }
                    None => active_kv_bytes -= seq.kv_bytes,
                }
                // The covered run outlives the request: releasing the
                // lease leaves the prefix resident for later arrivals.
                if let (Some(cache), Some(l)) = (cache.as_mut(), lease[seq.idx].take()) {
                    cache.release(l);
                }
            }
        }
        active.retain(|seq| seq.remaining > 0);

        // 7. Prompts that completed this step join the decode batch at the
        // next token boundary.
        let mut i = 0;
        while i < prefilling.len() {
            if prefilling[i].done == prefilling[i].target {
                let seq = prefilling.remove(i);
                prefill_target_tokens -= seq.target;
                let request = &requests[seq.idx];
                active.push(ActiveSequence {
                    idx: seq.idx,
                    context: seq.target + reused[seq.idx],
                    remaining: request.gen_len - generated[seq.idx],
                    kv_bytes: kv_bytes_per_request[seq.idx],
                });
            } else {
                i += 1;
            }
        }
    }

    let kv_tallies = paged.map(|bt| KvTallies {
        block_tokens: bt,
        block_bytes,
        capacity_blocks,
        peak_blocks,
        block_steps: kv_block_steps,
        used_token_steps: kv_used_token_steps,
        steps: kv_steps,
    });
    let prefix_tallies = cache.as_ref().map(|cache| PrefixTallies {
        stats: cache.stats(),
        resident_blocks: cache.resident_blocks(),
        resident_tokens: cache.resident_tokens(),
        recomputed_prefill_tokens,
    });
    let report = build_report(
        sim,
        &plan.spec,
        &times,
        &records,
        clock,
        completed,
        generated_tokens,
        breakdown,
        imbalance_sum,
        imbalance_samples,
        kv_tallies,
        swap,
        prefix_tallies,
    );
    Ok(ServingOutcome { report, records })
}
