//! The retained sort-based reference scheduler: the pre-heap simulator loop,
//! kept verbatim as a differential-testing oracle.
//!
//! [`simulate_reference`] re-sorts the whole ready queue at every token
//! boundary, rebuilds the [`BatchState`] from a linear scan of the active
//! sequences, and walks every active sequence per step — O(batch + queue
//! log queue) per boundary. The production [`simulate`](crate::simulate)
//! replaces all of that with indexed priority queues and incremental group
//! accounting, and the `simulator_equivalence` differential suite asserts
//! the two produce bitwise-identical [`ServingOutcome`]s across every
//! policy combination. This module is compiled only under the `reference`
//! cargo feature; it is not part of the production build.

use hermes_core::{
    BatchState, HermesError, LatencyBreakdown, PrefillChunk, SystemConfig, SystemKind,
};

use crate::arrival::sample_arrival_times;
use crate::request::{RequestRecord, ServingRequest};
use crate::scheduler::{
    request_kv_bytes, BatchingPolicy, PreemptionPolicy, PrefillPolicy, SchedulingPolicy,
};
use crate::simulator::{
    build_report, primary_rank, worst_case_bounds, ServingOutcome, ServingSimulation,
    LENGTH_SEED_SALT,
};

/// A sequence currently holding a batch slot and generating tokens.
struct ActiveSequence {
    /// Index into the request/record vectors.
    idx: usize,
    /// Current context length (prompt + tokens generated so far).
    context: usize,
    /// Tokens still to generate.
    remaining: usize,
    /// KV bytes reserved by this sequence.
    kv_bytes: u64,
}

/// A sequence admitted under chunked prefill whose prompt is still being
/// processed.
struct PrefillingSequence {
    idx: usize,
    target: usize,
    done: usize,
    started: bool,
}

/// Sort the ready queue: primary rank first, arrival order within a rank —
/// the full per-boundary re-sort the heap-based scheduler replaced.
fn sort_ready(ready: &mut [usize], scheduling: SchedulingPolicy, requests: &[ServingRequest]) {
    ready.sort_by(|&a, &b| {
        let ra = primary_rank(scheduling, &requests[a]);
        let rb = primary_rank(scheduling, &requests[b]);
        ra.total_cmp(&rb).then(a.cmp(&b))
    });
}

/// Simulate `kind` on `config` under `sim` through the retained sort-based
/// scheduler. Semantically identical to [`simulate`](crate::simulate) —
/// the differential suite holds the two to bitwise-equal outcomes — but
/// asymptotically slower, so only useful as an oracle.
///
/// # Errors
///
/// Exactly the errors of [`simulate`](crate::simulate).
pub fn simulate_reference(
    kind: SystemKind,
    config: &SystemConfig,
    sim: &ServingSimulation,
) -> Result<ServingOutcome, HermesError> {
    sim.admission.validate()?;
    sim.prefill.validate()?;
    let times = sample_arrival_times(&sim.arrival, sim.num_requests, sim.arrival_seed)?;
    let requests = ServingRequest::sample(
        &sim.template,
        &times,
        &sim.lengths,
        &sim.classes,
        sim.arrival_seed ^ LENGTH_SEED_SALT,
    )?;
    let engine = kind.engine(config);
    let mut plan = engine.plan(&sim.template)?;
    for bound in worst_case_bounds(&sim.template, &requests) {
        engine.plan(&bound)?;
    }

    let kv_bytes_per_request: Vec<u64> = requests
        .iter()
        .map(|r| request_kv_bytes(&sim.template, r.prompt_len, r.gen_len))
        .collect();
    let mut records: Vec<RequestRecord> = requests
        .iter()
        .map(|r| RequestRecord {
            id: r.id,
            arrival: r.arrival,
            admitted: 0.0,
            first_token: 0.0,
            completed: 0.0,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
            class: r.class,
            preemptions: 0,
        })
        .collect();

    let mut clock = 0.0f64;
    let mut next_arrival = 0usize;
    let mut ready: Vec<usize> = Vec::new();
    let mut active: Vec<ActiveSequence> = Vec::new();
    let mut prefilling: Vec<PrefillingSequence> = Vec::new();
    let mut active_kv_bytes = 0u64;
    let mut generated: Vec<usize> = vec![0; requests.len()];
    let mut ever_admitted: Vec<bool> = vec![false; requests.len()];
    let mut breakdown = LatencyBreakdown::default();
    let mut imbalance_sum = 0.0;
    let mut imbalance_samples = 0usize;
    let mut generated_tokens = 0usize;
    let mut completed = 0usize;

    loop {
        // 1. Pull every request that has arrived by now into the queue.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= clock {
            ready.push(next_arrival);
            next_arrival += 1;
        }

        // 2. Admit from the queue at this token boundary, in scheduling
        // order; evict strictly lower-ranked active sequences when the
        // best-ranked waiter does not fit and preemption is on.
        let may_admit = match sim.policy {
            BatchingPolicy::Continuous => true,
            BatchingPolicy::Static => active.is_empty() && prefilling.is_empty(),
        };
        let mut admitted: Vec<usize> = Vec::new();
        if may_admit {
            sort_ready(&mut ready, sim.scheduling, &requests);
            while let Some(&idx) = ready.first() {
                let kv = kv_bytes_per_request[idx];
                if sim.admission.admits(
                    active.len() + prefilling.len() + admitted.len(),
                    active_kv_bytes,
                    kv,
                ) {
                    ready.remove(0);
                    active_kv_bytes += kv;
                    admitted.push(idx);
                    continue;
                }
                if sim.preemption == PreemptionPolicy::EvictAndRefill {
                    let rank = primary_rank(sim.scheduling, &requests[idx]);
                    let mut victims: Vec<usize> = (0..active.len())
                        .filter(|&pos| {
                            primary_rank(sim.scheduling, &requests[active[pos].idx]) > rank
                        })
                        .collect();
                    victims.sort_by(|&a, &b| {
                        let ra = primary_rank(sim.scheduling, &requests[active[a].idx]);
                        let rb = primary_rank(sim.scheduling, &requests[active[b].idx]);
                        rb.total_cmp(&ra).then(active[b].idx.cmp(&active[a].idx))
                    });
                    let mut freed_kv = 0u64;
                    let mut take = 0usize;
                    let mut feasible = false;
                    for &pos in &victims {
                        freed_kv += active[pos].kv_bytes;
                        take += 1;
                        if sim.admission.admits(
                            active.len() + prefilling.len() + admitted.len() - take,
                            active_kv_bytes - freed_kv,
                            kv,
                        ) {
                            feasible = true;
                            break;
                        }
                    }
                    if feasible {
                        let mut evicted: Vec<usize> = victims.into_iter().take(take).collect();
                        evicted.sort_unstable_by(|a, b| b.cmp(a));
                        for pos in evicted {
                            let victim = active.remove(pos);
                            active_kv_bytes -= victim.kv_bytes;
                            records[victim.idx].preemptions += 1;
                            ready.push(victim.idx);
                        }
                        sort_ready(&mut ready, sim.scheduling, &requests);
                        continue;
                    }
                }
                break;
            }
        }

        // 3. Hand the newly admitted requests to the prefill policy.
        match sim.prefill {
            PrefillPolicy::StallTheWorld => {
                if !admitted.is_empty() {
                    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
                    for &idx in &admitted {
                        let p = requests[idx].prompt_len + generated[idx];
                        match groups.iter_mut().find(|(len, _)| *len == p) {
                            Some((_, members)) => members.push(idx),
                            None => groups.push((p, vec![idx])),
                        }
                    }
                    for (prefill_len, members) in groups {
                        for &idx in &members {
                            if !ever_admitted[idx] {
                                records[idx].admitted = clock;
                                ever_admitted[idx] = true;
                            }
                        }
                        let cost = plan.cost.prefill_cost(prefill_len, members.len());
                        breakdown.prefill += cost;
                        clock += cost;
                    }
                    for idx in admitted {
                        let request = &requests[idx];
                        active.push(ActiveSequence {
                            idx,
                            context: request.prompt_len + generated[idx],
                            remaining: request.gen_len - generated[idx],
                            kv_bytes: kv_bytes_per_request[idx],
                        });
                    }
                }
            }
            PrefillPolicy::Chunked { .. } => {
                for idx in admitted {
                    prefilling.push(PrefillingSequence {
                        idx,
                        target: requests[idx].prompt_len + generated[idx],
                        done: 0,
                        started: false,
                    });
                }
            }
        }

        // 4. Schedule this boundary's prefill chunks.
        let mut chunks: Vec<PrefillChunk> = Vec::new();
        if let PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        } = sim.prefill
        {
            let mut budget_left = budget;
            for seq in prefilling.iter_mut() {
                if budget_left == 0 {
                    break;
                }
                let take = chunk_tokens.min(seq.target - seq.done).min(budget_left);
                if !seq.started {
                    if !ever_admitted[seq.idx] {
                        records[seq.idx].admitted = clock;
                        ever_admitted[seq.idx] = true;
                    }
                    seq.started = true;
                }
                chunks.push(PrefillChunk {
                    prompt_len: seq.target,
                    tokens: take,
                });
                seq.done += take;
                budget_left -= take;
            }
        }

        // 5. Nothing running and no prefill scheduled: jump or finish.
        if active.is_empty() && chunks.is_empty() {
            if !ready.is_empty() {
                return Err(HermesError::InvalidConfig(format!(
                    "admission caps can never admit request {} (max_batch {:?}, kv budget {:?})",
                    ready[0], sim.admission.max_batch, sim.admission.kv_memory_bytes
                )));
            }
            if next_arrival < requests.len() {
                clock = clock.max(requests[next_arrival].arrival);
                continue;
            }
            break;
        }

        // 6. One shared step over the current batch composition.
        let batch = BatchState::new(active.iter().map(|a| a.context).collect());
        let outcome = if chunks.is_empty() {
            plan.cost.decode_cost(&batch)
        } else {
            plan.cost.chunked_step_cost(&chunks, &batch)
        };
        breakdown = breakdown.merged(&outcome.latency);
        imbalance_sum += outcome.imbalance_sum;
        imbalance_samples += outcome.imbalance_samples;
        clock += outcome.latency.total();
        generated_tokens += active.len();
        for seq in &mut active {
            if generated[seq.idx] == 0 {
                records[seq.idx].first_token = clock;
            }
            seq.context += 1;
            seq.remaining -= 1;
            generated[seq.idx] += 1;
            if seq.remaining == 0 {
                records[seq.idx].completed = clock;
                completed += 1;
                active_kv_bytes -= seq.kv_bytes;
            }
        }
        active.retain(|seq| seq.remaining > 0);

        // 7. Prompts that completed this step join the decode batch at the
        // next token boundary.
        let mut i = 0;
        while i < prefilling.len() {
            if prefilling[i].done == prefilling[i].target {
                let seq = prefilling.remove(i);
                let request = &requests[seq.idx];
                active.push(ActiveSequence {
                    idx: seq.idx,
                    context: seq.target,
                    remaining: request.gen_len - generated[seq.idx],
                    kv_bytes: kv_bytes_per_request[seq.idx],
                });
            } else {
                i += 1;
            }
        }
    }

    let report = build_report(
        sim,
        &plan.spec,
        &times,
        &records,
        clock,
        completed,
        generated_tokens,
        breakdown,
        imbalance_sum,
        imbalance_samples,
    );
    Ok(ServingOutcome { report, records })
}
